//! The memory-controller write path with pluggable DBI encoding.
//!
//! [`MemoryController`] ties the substrate together: it splits each write
//! access into per-group bursts, runs the configured DBI encoder on every
//! group (each group carrying its own lane history), drives the bus, hands
//! the encoded words to the DRAM device and charges both the interface
//! energy (Eq. 4, via `dbi-phy`) and the encoder's own energy (Table I, via
//! `dbi-hw`) to the running totals.

use crate::bus::DqBus;
use crate::config::ChannelConfig;
use crate::device::DramDevice;
use crate::error::{MemError, Result};
use core::fmt;
use dbi_core::{Burst, CostBreakdown, DbiEncoder, Scheme};
use dbi_phy::InterfaceEnergyModel;

/// Summary of one write access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessReport {
    /// Activity added on the wires by this access.
    pub activity: CostBreakdown,
    /// Interface energy of this access in joules.
    pub interface_energy_j: f64,
    /// Encoding energy of this access in joules.
    pub encoding_energy_j: f64,
}

impl AccessReport {
    /// Total energy (interface + encoder) of the access, in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.interface_energy_j + self.encoding_energy_j
    }
}

/// Running totals over the lifetime of a controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyTotals {
    /// Number of write accesses performed.
    pub accesses: u64,
    /// Number of per-group bursts driven.
    pub bursts: u64,
    /// Total wire activity.
    pub activity: CostBreakdown,
    /// Total interface energy in joules.
    pub interface_energy_j: f64,
    /// Total encoder energy in joules.
    pub encoding_energy_j: f64,
}

impl EnergyTotals {
    /// Total energy (interface + encoder) in joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.interface_energy_j + self.encoding_energy_j
    }

    /// Mean total energy per burst in picojoules (0 when nothing was
    /// driven).
    #[must_use]
    pub fn mean_energy_per_burst_pj(&self) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            self.total_energy_j() / self.bursts as f64 * 1e12
        }
    }
}

impl fmt::Display for EnergyTotals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} bursts, {:.3} nJ interface, {:.3} nJ encoding",
            self.accesses,
            self.bursts,
            self.interface_energy_j * 1e9,
            self.encoding_energy_j * 1e9
        )
    }
}

/// A write-path memory controller with a pluggable DBI encoder.
///
/// ```
/// # fn main() -> Result<(), dbi_mem::MemError> {
/// use dbi_core::Scheme;
/// use dbi_mem::{ChannelConfig, MemoryController};
///
/// let mut controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::OptFixed);
/// let data = vec![0u8; controller.config().access_bytes()];
/// controller.write(0x0, &data)?;
/// assert_eq!(controller.device().read_byte(0x0), 0);
/// assert!(controller.totals().interface_energy_j > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct MemoryController {
    config: ChannelConfig,
    scheme: Scheme,
    /// Prebuilt from `scheme` so parametric encoders (and their cost
    /// tables) are constructed once per controller, not once per burst.
    encoder: Box<dyn DbiEncoder + Send + Sync>,
    energy_model: InterfaceEnergyModel,
    encoding_energy_per_burst_j: f64,
    bus: DqBus,
    device: DramDevice,
    totals: EnergyTotals,
}

impl fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryController")
            .field("config", &self.config)
            .field("scheme", &self.scheme)
            .field("bus", &self.bus)
            .field("totals", &self.totals)
            .finish_non_exhaustive()
    }
}

impl MemoryController {
    /// Creates a controller for the given channel using the given DBI
    /// scheme, with no encoder-energy overhead charged (use
    /// [`MemoryController::with_encoding_energy`] to account for it).
    #[must_use]
    pub fn new(config: ChannelConfig, scheme: Scheme) -> Self {
        let energy_model = config.energy_model();
        let bus = DqBus::new(config.lane_groups());
        MemoryController {
            config,
            scheme,
            encoder: scheme.boxed(),
            energy_model,
            encoding_energy_per_burst_j: 0.0,
            bus,
            device: DramDevice::new(),
            totals: EnergyTotals::default(),
        }
    }

    /// Sets the energy charged per encoded burst (e.g. from the Table I
    /// synthesis report of the scheme's hardware implementation). Negative
    /// or non-finite values are treated as zero.
    #[must_use]
    pub fn with_encoding_energy(mut self, joules_per_burst: f64) -> Self {
        self.encoding_energy_per_burst_j = if joules_per_burst.is_finite() && joules_per_burst > 0.0
        {
            joules_per_burst
        } else {
            0.0
        };
        self
    }

    /// The channel configuration.
    #[must_use]
    pub const fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The DBI scheme in use.
    #[must_use]
    pub const fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The DRAM device behind the channel (for read-back verification).
    #[must_use]
    pub const fn device(&self) -> &DramDevice {
        &self.device
    }

    /// The running energy totals.
    #[must_use]
    pub const fn totals(&self) -> &EnergyTotals {
        &self.totals
    }

    /// Writes one access worth of data (`config().access_bytes()` bytes)
    /// starting at `address`.
    ///
    /// The data is interleaved across lane groups the way a real channel
    /// does it: byte *k* of beat *t* goes to group *k mod groups*, so one
    /// group carries every `groups`-th byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is not exactly one
    /// access in size.
    pub fn write(&mut self, address: u64, data: &[u8]) -> Result<AccessReport> {
        let expected = self.config.access_bytes();
        if data.len() != expected {
            return Err(MemError::BadAccessSize {
                got: data.len(),
                expected,
            });
        }
        let groups = self.config.lane_groups();
        let burst_len = self.config.burst_len();
        let mut activity = CostBreakdown::ZERO;
        let mut encoding_energy = 0.0;
        for group in 0..groups {
            // Gather this group's bytes: one byte per beat.
            let bytes: Vec<u8> = (0..burst_len)
                .map(|beat| data[beat * groups + group])
                .collect();
            let burst = Burst::new(bytes).expect("burst length is validated by the config");
            let (encoded, breakdown) = self.bus.drive(group, &burst, &self.encoder);
            // Each group's burst occupies a contiguous slice of the array:
            // group g of the access at `address` lands at
            // `address + g·burst_len .. address + (g+1)·burst_len`.
            self.device
                .receive_burst(address + (group * burst_len) as u64, &encoded);
            activity += breakdown;
            encoding_energy += self.encoding_energy_per_burst_j;
        }

        let interface_energy = self.energy_model.burst_energy_j(&activity);
        let report = AccessReport {
            activity,
            interface_energy_j: interface_energy,
            encoding_energy_j: encoding_energy,
        };
        self.totals.accesses += 1;
        self.totals.bursts += groups as u64;
        self.totals.activity += activity;
        self.totals.interface_energy_j += interface_energy;
        self.totals.encoding_energy_j += encoding_energy;
        Ok(report)
    }

    /// Writes a whole buffer as consecutive accesses starting at `address`.
    /// The buffer length must be a multiple of the access size.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when the buffer is not a multiple
    /// of the access size.
    pub fn write_buffer(&mut self, address: u64, data: &[u8]) -> Result<Vec<AccessReport>> {
        let step = self.config.access_bytes();
        if data.is_empty() || !data.len().is_multiple_of(step) {
            return Err(MemError::BadAccessSize {
                got: data.len(),
                expected: step,
            });
        }
        data.chunks_exact(step)
            .enumerate()
            .map(|(i, chunk)| self.write(address + (i * step) as u64, chunk))
            .collect()
    }

    /// Verifies that the device holds exactly the data previously written at
    /// `address` by [`MemoryController::write`] (what the integration tests
    /// use to show every scheme is lossless end to end).
    ///
    /// The comparison undoes the group interleaving: byte `k` of the access
    /// was carried by group `k mod groups` during beat `k / groups` and is
    /// stored at `address + (k mod groups)·burst_len + k / groups`.
    #[must_use]
    pub fn verify(&self, address: u64, expected: &[u8]) -> bool {
        let groups = self.config.lane_groups();
        let burst_len = self.config.burst_len();
        expected.iter().enumerate().all(|(index, &byte)| {
            let beat = index / groups;
            let group = index % groups;
            let cell = address + (group * burst_len + beat) as u64;
            self.device.read_byte(cell) == byte
        })
    }
}

impl fmt::Display for MemoryController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} with {}: {}", self.config, self.scheme, self.totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_rejects_wrong_sizes() {
        let mut controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::Dc);
        assert!(matches!(
            controller.write(0, &[0u8; 31]),
            Err(MemError::BadAccessSize {
                got: 31,
                expected: 32
            })
        ));
        assert!(controller.write_buffer(0, &[0u8; 33]).is_err());
        assert!(controller.write_buffer(0, &[]).is_err());
    }

    #[test]
    fn totals_accumulate() {
        let mut controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::OptFixed)
            .with_encoding_energy(1.66e-12);
        let data = vec![0x5Au8; 32];
        let report = controller.write(0, &data).unwrap();
        assert!(report.interface_energy_j > 0.0);
        assert!(report.encoding_energy_j > 0.0);
        assert!(report.total_energy_j() > report.interface_energy_j);
        controller.write(32, &data).unwrap();
        let totals = controller.totals();
        assert_eq!(totals.accesses, 2);
        assert_eq!(totals.bursts, 8);
        assert!(totals.total_energy_j() > 0.0);
        assert!(totals.mean_energy_per_burst_pj() > 0.0);
        assert!(controller.to_string().contains("GDDR5X"));
    }

    #[test]
    fn encoding_energy_is_ignored_when_invalid() {
        let controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::Dc)
            .with_encoding_energy(f64::NAN);
        assert_eq!(controller.encoding_energy_per_burst_j, 0.0);
        let controller =
            MemoryController::new(ChannelConfig::gddr5x(), Scheme::Dc).with_encoding_energy(-1.0);
        assert_eq!(controller.encoding_energy_per_burst_j, 0.0);
    }

    #[test]
    fn opt_uses_no_more_interface_energy_than_dc_or_ac() {
        let pattern: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        let energy = |scheme: Scheme| {
            let mut c = MemoryController::new(ChannelConfig::ddr4_3200(), scheme);
            c.write(0, &pattern).unwrap();
            c.totals().interface_energy_j
        };
        let opt = energy(Scheme::OptFixed);
        assert!(opt <= energy(Scheme::Dc) + 1e-18);
        assert!(opt <= energy(Scheme::Ac) + 1e-18);
    }

    #[test]
    fn every_scheme_is_lossless_end_to_end() {
        let data: Vec<u8> = (0..32u32).map(|i| (i * 73 + 5) as u8).collect();
        for scheme in Scheme::paper_set().iter().copied() {
            let mut controller = MemoryController::new(ChannelConfig::gddr5x(), scheme);
            controller.write(0x4000, &data).unwrap();
            assert!(
                controller.verify(0x4000, &data),
                "scheme {scheme} corrupted data"
            );
            assert!(!controller.verify(0x4000, &[0xEE; 32]));
            assert_eq!(controller.scheme(), scheme);
        }
    }

    #[test]
    fn write_buffer_splits_into_accesses() {
        let mut controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::OptFixed);
        let data: Vec<u8> = (0..96u32).map(|i| i as u8).collect();
        let reports = controller.write_buffer(0, &data).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(controller.totals().accesses, 3);
        assert!(controller.verify(0, &data[..32]));
        assert!(controller.verify(32, &data[32..64]));
        assert!(controller.verify(64, &data[64..]));
    }

    #[test]
    fn empty_totals_report_zero_mean() {
        let totals = EnergyTotals::default();
        assert_eq!(totals.mean_energy_per_burst_pj(), 0.0);
        assert!(totals.to_string().contains("0 accesses"));
    }
}
