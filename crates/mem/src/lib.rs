//! # dbi-mem
//!
//! A GDDR5/GDDR5X/DDR4 write-channel substrate for evaluating data bus
//! inversion schemes at the system level.
//!
//! The paper measures encoding schemes on isolated bursts; a real memory
//! controller drives many lane groups whose wire state persists across
//! bursts, pays the encoder's own energy on every burst and must never
//! corrupt the stored data. This crate provides that surrounding machinery:
//!
//! * [`ChannelConfig`] — channel geometry, electrical interface, load and
//!   data rate (GDDR5, GDDR5X and DDR4 presets),
//! * [`DqBus`] — per-group lane state and activity accounting,
//! * [`DramDevice`] — the DBI-decoding receiver with a sparse backing store,
//! * [`MemoryController`] — the write path tying it all together with a
//!   pluggable [`dbi_core::Scheme`] and full energy accounting,
//! * [`BusSession`] — the streaming encode hot path: whole write streams
//!   in one call, per-group bus state carried across bursts, with the
//!   independent DBI groups optionally encoded in parallel (one rayon
//!   task per group, bit-identical to the serial result).
//!
//! ```
//! # fn main() -> Result<(), dbi_mem::MemError> {
//! use dbi_core::Scheme;
//! use dbi_mem::{ChannelConfig, MemoryController};
//!
//! let mut controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::OptFixed);
//! let data: Vec<u8> = (0..32).collect();
//! controller.write(0x1000, &data)?;
//! assert!(controller.verify(0x1000, &data));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod config;
pub mod controller;
pub mod device;
pub mod error;
pub mod read_path;
pub mod session;

pub use bus::DqBus;
pub use config::{ChannelConfig, MemoryKind};
pub use controller::{AccessReport, EnergyTotals, MemoryController};
pub use device::DramDevice;
pub use error::{MemError, Result};
pub use read_path::ReadPath;
pub use session::{BusSession, ChannelActivity};

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::Scheme;

    #[test]
    fn the_optimal_scheme_saves_channel_energy_on_random_traffic() {
        // A small end-to-end sanity check of the whole substrate: writing
        // the same pseudo-random buffer through a GDDR5X channel costs less
        // interface energy with OPT(Fixed) than with RAW.
        let mut data = vec![0u8; 32 * 64];
        let mut seed = 0x2468_ACE0u32;
        for byte in &mut data {
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *byte = (seed >> 24) as u8;
        }
        let energy = |scheme: Scheme| {
            let mut controller = MemoryController::new(ChannelConfig::gddr5x(), scheme);
            controller.write_buffer(0, &data).unwrap();
            assert!(controller.verify(0, &data[..32]));
            controller.totals().interface_energy_j
        };
        assert!(energy(Scheme::OptFixed) < energy(Scheme::Raw));
    }
}
