//! Read-path DBI: the paper's forward-looking extension.
//!
//! Today's DRAMs already generate DBI on read data, but only with the
//! simple DC/AC rules implemented inside the device. The paper's
//! conclusion notes that the optimal encoding "could be integrated into
//! future memories to also reduce read interface energy". This module
//! models that scenario: the DRAM device encodes read bursts with a
//! configurable scheme before driving them back to the controller, the
//! controller decodes them, and the same energy accounting applies to the
//! read direction.
//!
//! It is an **extension** of the paper's evaluation (which covers writes);
//! EXPERIMENTS.md labels the derived numbers accordingly.

use crate::bus::DqBus;
use crate::config::ChannelConfig;
use crate::controller::EnergyTotals;
use crate::device::DramDevice;
use crate::error::{MemError, Result};
use core::fmt;
use dbi_core::{Burst, CostBreakdown, DbiEncoder, Scheme};
use dbi_phy::InterfaceEnergyModel;

/// A read-direction channel: the DRAM encodes, the controller decodes.
///
/// The device side owns the bus state of the read direction (the DQ bus is
/// bidirectional but half-duplex; modelling the two directions with
/// separate state is conservative and keeps the accounting simple).
///
/// ```
/// # fn main() -> Result<(), dbi_mem::MemError> {
/// use dbi_core::Scheme;
/// use dbi_mem::{ChannelConfig, MemoryController, ReadPath};
///
/// // Fill the device through the write path first.
/// let mut controller = MemoryController::new(ChannelConfig::gddr5x(), Scheme::OptFixed);
/// let data: Vec<u8> = (0..32).collect();
/// controller.write(0, &data)?;
///
/// // Then read it back through a DBI-encoding read path.
/// let mut reads = ReadPath::new(ChannelConfig::gddr5x(), Scheme::OptFixed);
/// let restored = reads.read(controller.device(), 0)?;
/// assert_eq!(restored, data);
/// # Ok(())
/// # }
/// ```
pub struct ReadPath {
    config: ChannelConfig,
    scheme: Scheme,
    /// Prebuilt from `scheme` so parametric encoders (and their cost
    /// tables) are constructed once per path, not once per burst.
    encoder: Box<dyn DbiEncoder + Send + Sync>,
    energy_model: InterfaceEnergyModel,
    encoding_energy_per_burst_j: f64,
    bus: DqBus,
    totals: EnergyTotals,
}

impl fmt::Debug for ReadPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadPath")
            .field("config", &self.config)
            .field("scheme", &self.scheme)
            .field("bus", &self.bus)
            .field("totals", &self.totals)
            .finish_non_exhaustive()
    }
}

impl ReadPath {
    /// Creates a read path for the given channel, encoding read data on the
    /// device side with the given scheme.
    #[must_use]
    pub fn new(config: ChannelConfig, scheme: Scheme) -> Self {
        let energy_model = config.energy_model();
        let bus = DqBus::new(config.lane_groups());
        ReadPath {
            config,
            scheme,
            encoder: scheme.boxed(),
            energy_model,
            encoding_energy_per_burst_j: 0.0,
            bus,
            totals: EnergyTotals::default(),
        }
    }

    /// Sets the energy charged per encoded read burst (the encoder now sits
    /// inside the DRAM). Negative or non-finite values are treated as zero.
    #[must_use]
    pub fn with_encoding_energy(mut self, joules_per_burst: f64) -> Self {
        self.encoding_energy_per_burst_j = if joules_per_burst.is_finite() && joules_per_burst > 0.0
        {
            joules_per_burst
        } else {
            0.0
        };
        self
    }

    /// The scheme the device uses on read data.
    #[must_use]
    pub const fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The accumulated read-direction energy totals.
    #[must_use]
    pub const fn totals(&self) -> &EnergyTotals {
        &self.totals
    }

    /// Reads one access (`config().access_bytes()` bytes) starting at
    /// `address` from the device, driving the encoded bursts over the bus
    /// and returning the controller-side decoded data in the original
    /// (pre-interleaving) byte order.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice, but kept fallible for parity with
    /// the write path; returns [`MemError::BadAccessSize`] only if the
    /// configuration reports a zero-sized access, which the constructors
    /// prevent.
    pub fn read(&mut self, device: &DramDevice, address: u64) -> Result<Vec<u8>> {
        let groups = self.config.lane_groups();
        let burst_len = self.config.burst_len();
        let expected = self.config.access_bytes();
        if expected == 0 {
            return Err(MemError::BadAccessSize { got: 0, expected });
        }
        let mut activity = CostBreakdown::ZERO;
        let mut encoding_energy = 0.0;
        let mut data = vec![0u8; expected];
        for group in 0..groups {
            // The device reads the stored burst of this group...
            let stored = device.read_range(address + (group * burst_len) as u64, burst_len);
            let burst = Burst::new(stored).expect("burst length is validated by the config");
            // ...encodes it with the read-direction scheme and drives it.
            let (encoded, breakdown) = self.bus.drive(group, &burst, &self.encoder);
            activity += breakdown;
            encoding_energy += self.encoding_energy_per_burst_j;
            // The controller decodes the lane words and undoes the
            // write-path interleaving.
            let decoded = encoded.decode();
            for (beat, byte) in decoded.iter().enumerate() {
                data[beat * groups + group] = byte;
            }
        }

        let interface_energy = self.energy_model.burst_energy_j(&activity);
        self.totals.accesses += 1;
        self.totals.bursts += groups as u64;
        self.totals.activity += activity;
        self.totals.interface_energy_j += interface_energy;
        self.totals.encoding_energy_j += encoding_energy;
        Ok(data)
    }
}

impl fmt::Display for ReadPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read path {} with {}: {}",
            self.config, self.scheme, self.totals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MemoryController;

    fn written_controller(scheme: Scheme, data: &[u8]) -> MemoryController {
        let mut controller = MemoryController::new(ChannelConfig::gddr5x(), scheme);
        controller.write_buffer(0, data).unwrap();
        controller
    }

    fn test_data(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 97 + 13) as u8).collect()
    }

    #[test]
    fn reads_return_exactly_what_was_written() {
        let data = test_data(96);
        let controller = written_controller(Scheme::OptFixed, &data);
        for read_scheme in Scheme::paper_set().iter().copied() {
            let mut reads = ReadPath::new(ChannelConfig::gddr5x(), read_scheme);
            for access in 0..3 {
                let restored = reads.read(controller.device(), access as u64 * 32).unwrap();
                assert_eq!(
                    restored,
                    &data[access * 32..(access + 1) * 32],
                    "read scheme {read_scheme}"
                );
            }
            assert_eq!(reads.scheme(), read_scheme);
            assert_eq!(reads.totals().accesses, 3);
        }
    }

    #[test]
    fn optimal_read_encoding_saves_interface_energy() {
        let data = test_data(32 * 32);
        let controller = written_controller(Scheme::Raw, &data);
        let energy = |scheme: Scheme| {
            let mut reads = ReadPath::new(ChannelConfig::gddr5x(), scheme);
            for access in 0..32u64 {
                reads.read(controller.device(), access * 32).unwrap();
            }
            reads.totals().interface_energy_j
        };
        let opt = energy(Scheme::OptFixed);
        assert!(opt < energy(Scheme::Raw));
        assert!(opt <= energy(Scheme::Dc) + 1e-18);
        assert!(opt <= energy(Scheme::Ac) + 1e-18);
    }

    #[test]
    fn encoding_energy_is_charged_per_read_burst() {
        let data = test_data(32);
        let controller = written_controller(Scheme::Dc, &data);
        let mut reads =
            ReadPath::new(ChannelConfig::gddr5x(), Scheme::OptFixed).with_encoding_energy(2e-12);
        reads.read(controller.device(), 0).unwrap();
        let totals = reads.totals();
        assert_eq!(totals.bursts, 4);
        assert!((totals.encoding_energy_j - 4.0 * 2e-12).abs() < 1e-20);
        assert!(totals.total_energy_j() > totals.interface_energy_j);
        assert!(reads.to_string().contains("read path"));
    }

    #[test]
    fn invalid_encoding_energy_is_ignored() {
        let reads = ReadPath::new(ChannelConfig::gddr5x(), Scheme::Dc)
            .with_encoding_energy(f64::NEG_INFINITY);
        assert_eq!(reads.encoding_energy_per_burst_j, 0.0);
    }
}
