//! Error types for the `dbi-mem` crate.

use core::fmt;

/// Errors returned by the memory-channel model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The payload length of a write does not match the channel's access
    /// granularity (lane groups × burst length).
    BadAccessSize {
        /// Bytes supplied by the caller.
        got: usize,
        /// Bytes required per access.
        expected: usize,
    },
    /// A channel was configured with a bus width that is not a multiple of
    /// eight data lanes.
    BadBusWidth(u32),
    /// A channel was configured with a zero burst length.
    ZeroBurstLength,
    /// A decode (or transmit) stream call was handed a different number of
    /// inversion masks than the stream holds bursts.
    BadMaskCount {
        /// Masks supplied by the caller.
        got: usize,
        /// Bursts in the stream (accesses × lane groups).
        expected: usize,
    },
    /// An inversion mask in a decode (or transmit) stream references beats
    /// beyond the session's burst length.
    BadMask {
        /// Position of the offending mask in transmission order.
        index: usize,
        /// The session's burst length in beats.
        burst_len: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::BadAccessSize { got, expected } => {
                write!(f, "access payload of {got} bytes does not match the channel granularity of {expected} bytes")
            }
            MemError::BadBusWidth(width) => {
                write!(
                    f,
                    "bus width {width} is not a positive multiple of 8 data lanes"
                )
            }
            MemError::ZeroBurstLength => write!(f, "burst length must be at least 1"),
            MemError::BadMaskCount { got, expected } => {
                write!(
                    f,
                    "mask count {got} does not match the {expected} bursts in the stream \
                     (one mask per burst in transmission order)"
                )
            }
            MemError::BadMask { index, burst_len } => {
                write!(
                    f,
                    "inversion mask {index} references beats beyond the {burst_len}-beat burst"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Convenience alias used throughout the crate.
pub type Result<T, E = MemError> = core::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MemError::BadAccessSize {
            got: 3,
            expected: 32
        }
        .to_string()
        .contains("32"));
        assert!(MemError::BadBusWidth(12).to_string().contains("12"));
        assert!(MemError::ZeroBurstLength
            .to_string()
            .contains("burst length"));
        assert!(MemError::BadMaskCount {
            got: 3,
            expected: 8
        }
        .to_string()
        .contains("3"));
        assert!(MemError::BadMask {
            index: 2,
            burst_len: 8
        }
        .to_string()
        .contains("mask 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<MemError>();
    }
}
