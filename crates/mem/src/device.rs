//! The DRAM-side view: DBI decoding and a sparse backing store.
//!
//! DBI is transparent to the memory array — the device undoes the inversion
//! signalled on the DBI lane before writing the cells. [`DramDevice`]
//! models exactly that: it receives the encoded lane words the controller
//! drove, decodes them and stores the payload, so end-to-end tests can
//! verify that no encoding scheme ever corrupts data.

use core::fmt;
use dbi_core::EncodedBurst;
use std::collections::BTreeMap;

/// A sparse byte-addressable DRAM device behind one channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramDevice {
    cells: BTreeMap<u64, u8>,
    writes: u64,
}

impl DramDevice {
    /// Creates an empty device (all cells read back as zero, as after
    /// initialisation).
    #[must_use]
    pub fn new() -> Self {
        DramDevice::default()
    }

    /// Receives one encoded burst for one lane group and commits the decoded
    /// payload starting at `address`.
    pub fn receive_burst(&mut self, address: u64, encoded: &EncodedBurst) {
        let decoded = encoded.decode();
        for (offset, byte) in decoded.iter().enumerate() {
            self.cells.insert(address + offset as u64, byte);
        }
        self.writes += 1;
    }

    /// Reads one byte back from the array (zero if never written).
    #[must_use]
    pub fn read_byte(&self, address: u64) -> u8 {
        self.cells.get(&address).copied().unwrap_or(0)
    }

    /// Reads `len` bytes starting at `address`.
    #[must_use]
    pub fn read_range(&self, address: u64, len: usize) -> Vec<u8> {
        (0..len as u64)
            .map(|offset| self.read_byte(address + offset))
            .collect()
    }

    /// Number of bursts the device has committed.
    #[must_use]
    pub const fn bursts_received(&self) -> u64 {
        self.writes
    }

    /// Number of distinct byte cells that have been written.
    #[must_use]
    pub fn cells_written(&self) -> usize {
        self.cells.len()
    }
}

impl fmt::Display for DramDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dram device: {} cells written, {} bursts",
            self.cells.len(),
            self.writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::{Burst, BusState, DbiEncoder, Scheme};

    #[test]
    fn decodes_and_stores_payload() {
        let mut device = DramDevice::new();
        let burst = Burst::from_array([1, 2, 3, 4, 5, 6, 7, 8]);
        let encoded = Scheme::OptFixed.encode(&burst, &BusState::idle());
        device.receive_burst(0x1000, &encoded);
        assert_eq!(device.read_range(0x1000, 8), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(device.bursts_received(), 1);
        assert_eq!(device.cells_written(), 8);
        assert!(device.to_string().contains("8 cells"));
    }

    #[test]
    fn unwritten_cells_read_zero() {
        let device = DramDevice::new();
        assert_eq!(device.read_byte(42), 0);
        assert_eq!(device.read_range(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn overwrites_take_effect() {
        let mut device = DramDevice::new();
        let idle = BusState::idle();
        device.receive_burst(0, &Scheme::Dc.encode(&Burst::from_array([0xAA; 8]), &idle));
        device.receive_burst(0, &Scheme::Ac.encode(&Burst::from_array([0x55; 8]), &idle));
        assert_eq!(device.read_byte(0), 0x55);
        assert_eq!(device.cells_written(), 8);
        assert_eq!(device.bursts_received(), 2);
    }
}
