//! Multi-group streaming encode sessions.
//!
//! A x32 channel is four independent 8-lane DBI groups, a x64 channel
//! eight; each group carries its own lane state across bursts and takes its
//! own inversion decisions ([`crate::bus`]). [`BusSession`] exploits that
//! independence for throughput: it encodes a whole write stream in one
//! call, with the per-group byte streams either walked sequentially
//! ([`BusSession::encode_stream`]) or fanned out across threads via rayon
//! ([`BusSession::encode_stream_parallel`]) — one task per group, each
//! carrying its group's [`BusState`], which makes the parallel result
//! bit-identical to the sequential one.
//!
//! Unlike [`crate::controller::MemoryController`], a session performs *no*
//! storage and *no* energy bookkeeping: it is the pure encode hot path,
//! reporting wire activity per group. Per-burst work is allocation-free:
//! the gather buffer is moved into each [`Burst`] and recovered afterwards,
//! so a stream call's allocation count is a small per-call constant (the
//! result vector; plus one thread and gather buffer per group on the
//! parallel path) regardless of how many bursts it encodes — asserted by a
//! counting-allocator test in `tests/session_alloc.rs`.
//!
//! ```
//! use dbi_core::Scheme;
//! use dbi_mem::{BusSession, ChannelConfig};
//!
//! let config = ChannelConfig::gddr5x();
//! let data = vec![0x5Au8; config.access_bytes() * 16];
//! let mut session = BusSession::new(&config, Scheme::OptFixed);
//! let serial = session.encode_stream(&data).unwrap();
//! session.reset();
//! let parallel = session.encode_stream_parallel(&data).unwrap();
//! assert_eq!(serial, parallel);
//! ```

use crate::config::ChannelConfig;
use crate::error::{MemError, Result};
use core::fmt;
use dbi_core::{
    Burst, BurstSlab, BusState, CostBreakdown, CostWeights, DbiDecoder, DbiEncoder, EncodePlan,
    InversionMask, LaneWord, Scheme,
};
use std::sync::Arc;

/// Aggregate wire activity of one encoded stream, per lane group and in
/// total.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChannelActivity {
    /// Number of per-group bursts encoded.
    pub bursts: u64,
    /// Activity of each lane group, in group order.
    pub per_group: Vec<CostBreakdown>,
}

impl ChannelActivity {
    /// Total activity across all groups.
    #[must_use]
    pub fn total(&self) -> CostBreakdown {
        self.per_group.iter().copied().sum()
    }

    /// Weighted integer cost of the whole stream.
    #[must_use]
    pub fn cost(&self, weights: &CostWeights) -> u64 {
        self.total().weighted(weights)
    }
}

impl fmt::Display for ChannelActivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bursts over {} groups, {}",
            self.bursts,
            self.per_group.len(),
            self.total()
        )
    }
}

/// A streaming encode session over the independent DBI groups of one
/// channel.
///
/// The session owns one [`BusState`] per group (carried across calls, so a
/// stream may be fed in arbitrary slices) and a shared [`EncodePlan`] —
/// parametric schemes therefore pay their construction (e.g. the OPT cost
/// tables) at most once per process (plans come from the plan cache), not
/// per burst or per session. The plan can be replaced at any burst
/// boundary with [`BusSession::swap_plan`]; the carried lane states are
/// preserved, so a session can follow an operating-point change
/// mid-stream exactly as reconfigurable DBI hardware would.
pub struct BusSession {
    plan: Arc<EncodePlan>,
    groups: Vec<BusState>,
    burst_len: usize,
    scratch: Vec<u8>,
}

impl fmt::Debug for BusSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BusSession")
            .field("scheme", &self.scheme())
            .field("groups", &self.groups)
            .field("burst_len", &self.burst_len)
            .finish_non_exhaustive()
    }
}

impl BusSession {
    /// Creates a session for the channel's geometry (lane groups × burst
    /// length), all groups idle.
    #[must_use]
    pub fn new(config: &ChannelConfig, scheme: Scheme) -> Self {
        Self::with_geometry(config.lane_groups(), config.burst_len(), scheme)
    }

    /// Creates a session with an explicit geometry.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `burst_len` is zero, or if `burst_len` exceeds
    /// the 32-byte inversion-mask limit.
    #[must_use]
    pub fn with_geometry(groups: usize, burst_len: usize, scheme: Scheme) -> Self {
        Self::with_plan_geometry(groups, burst_len, scheme.plan())
    }

    /// Creates a session for the channel's geometry around an existing
    /// plan (e.g. one produced by a phy energy model or a shared
    /// [`dbi_core::PlanCache`]).
    #[must_use]
    pub fn with_plan(config: &ChannelConfig, plan: Arc<EncodePlan>) -> Self {
        Self::with_plan_geometry(config.lane_groups(), config.burst_len(), plan)
    }

    /// Creates a session with an explicit geometry around an existing
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `burst_len` is zero, or if `burst_len` exceeds
    /// the 32-byte inversion-mask limit.
    #[must_use]
    pub fn with_plan_geometry(groups: usize, burst_len: usize, plan: Arc<EncodePlan>) -> Self {
        assert!(groups > 0, "a session needs at least one lane group");
        assert!(
            (1..=32).contains(&burst_len),
            "burst length must be within the inversion-mask limit of 32 bytes"
        );
        BusSession {
            plan,
            groups: vec![BusState::idle(); groups],
            burst_len,
            scratch: Vec::with_capacity(burst_len),
        }
    }

    /// The scheme this session encodes with.
    #[must_use]
    pub fn scheme(&self) -> Scheme {
        self.plan.scheme()
    }

    /// The plan this session encodes with.
    #[must_use]
    pub const fn plan(&self) -> &Arc<EncodePlan> {
        &self.plan
    }

    /// Replaces the encode plan at a burst boundary, returning the
    /// previous one. The carried [`BusState`] of every group is
    /// **preserved**: the wires do not care which coefficients chose the
    /// last inversion, so the next burst continues from the true lane
    /// levels under the new plan — exactly the mid-session
    /// operating-point change the service layer exposes.
    pub fn swap_plan(&mut self, plan: Arc<EncodePlan>) -> Arc<EncodePlan> {
        core::mem::replace(&mut self.plan, plan)
    }

    /// Number of independent DBI groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Burst length in unit intervals.
    #[must_use]
    pub const fn burst_len(&self) -> usize {
        self.burst_len
    }

    /// The carried lane state of one group.
    #[must_use]
    pub fn group_state(&self, group: usize) -> Option<BusState> {
        self.groups.get(group).copied()
    }

    /// Overwrites the carried lane state of one group — how a **receiver**
    /// session is synchronised to the transmitter's known state before
    /// replaying a stream slice (the service's verify mode does exactly
    /// this before decoding each request's output).
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn set_group_state(&mut self, group: usize, state: BusState) {
        self.groups[group] = state;
    }

    /// Returns every group to the idle (all lanes high) boundary condition.
    pub fn reset(&mut self) {
        for state in &mut self.groups {
            *state = BusState::idle();
        }
    }

    /// Bytes per full-bus access: groups × burst length.
    #[must_use]
    pub fn access_bytes(&self) -> usize {
        self.groups.len() * self.burst_len
    }

    /// Encodes one burst on one group, carrying that group's state, and
    /// returns the activity it added. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn drive_burst(&mut self, group: usize, burst: &Burst) -> CostBreakdown {
        let state = self.groups[group];
        let mask = self.plan.encode_mask(burst, &state);
        let breakdown = mask.breakdown(burst, &state);
        self.groups[group] = mask.final_state(burst, &state);
        breakdown
    }

    /// Encodes a whole beat-interleaved write stream sequentially: byte `k`
    /// of each access travels on group `k mod groups` during beat
    /// `k / groups`, exactly as [`crate::controller::MemoryController`]
    /// splits its accesses.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is empty or not a
    /// multiple of [`BusSession::access_bytes`].
    pub fn encode_stream(&mut self, data: &[u8]) -> Result<ChannelActivity> {
        let mut per_group = Vec::new();
        let bursts = self.encode_stream_into(data, &mut per_group, None)?;
        Ok(ChannelActivity { bursts, per_group })
    }

    /// [`BusSession::encode_stream`] into caller-owned storage: the
    /// steady-state form for services that must not allocate per request.
    ///
    /// `per_group` is cleared and refilled with one [`CostBreakdown`] per
    /// lane group; when `masks` is supplied it is cleared and receives the
    /// per-burst inversion decisions in transmission order (group-major
    /// within each access: access 0 group 0, access 0 group 1, ...). Both
    /// buffers reuse their existing capacity, so a warmed-up caller pays no
    /// heap allocation at all. Returns the number of bursts encoded.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is empty or not a
    /// multiple of [`BusSession::access_bytes`]; the output buffers are
    /// left cleared but otherwise untouched.
    pub fn encode_stream_into(
        &mut self,
        data: &[u8],
        per_group: &mut Vec<CostBreakdown>,
        mut masks: Option<&mut Vec<InversionMask>>,
    ) -> Result<u64> {
        per_group.clear();
        if let Some(masks) = masks.as_deref_mut() {
            masks.clear();
        }
        self.check_stream(data)?;
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        let accesses = data.len() / self.access_bytes();
        per_group.resize(groups, CostBreakdown::ZERO);

        let mut scratch = core::mem::take(&mut self.scratch);
        for access in 0..accesses {
            let base = access * groups * burst_len;
            for (group, activity) in per_group.iter_mut().enumerate() {
                scratch.clear();
                scratch.extend((0..burst_len).map(|beat| data[base + beat * groups + group]));
                // Move the gather buffer into the burst and recover it
                // afterwards: no allocation per burst.
                let burst = Burst::new(scratch).expect("burst length is positive");
                let state = self.groups[group];
                let mask = self.plan.encode_mask(&burst, &state);
                *activity += mask.breakdown(&burst, &state);
                self.groups[group] = mask.final_state(&burst, &state);
                if let Some(masks) = masks.as_deref_mut() {
                    masks.push(mask);
                }
                scratch = burst.into_bytes();
            }
        }
        self.scratch = scratch;
        Ok((accesses * groups) as u64)
    }

    /// The batched (slab) form of [`BusSession::encode_stream`]: the
    /// stream is de-interleaved group by group into an internal
    /// [`BurstSlab`] and each group's whole burst chain is encoded in
    /// **one** [`DbiEncoder::encode_slab_into`] call — one dispatch per
    /// group instead of one per burst, with the optimal schemes running
    /// their carried-state LUT kernel over the contiguous slab.
    /// Bit-identical to [`BusSession::encode_stream`] (differential-tested
    /// below and in the service layer).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is empty or not a
    /// multiple of [`BusSession::access_bytes`].
    pub fn encode_stream_slab(&mut self, data: &[u8]) -> Result<ChannelActivity> {
        let mut slab = BurstSlab::new(self.burst_len);
        let mut per_group = Vec::new();
        let bursts = self.encode_stream_slab_into(data, &mut per_group, None, &mut slab)?;
        Ok(ChannelActivity { bursts, per_group })
    }

    /// [`BusSession::encode_stream_slab`] into caller-owned storage — the
    /// steady-state form the service workers use. Semantics of
    /// `per_group` and `masks` match [`BusSession::encode_stream_into`]
    /// exactly (masks in transmission order, group-major within each
    /// access); `slab` is the reusable workspace, reset to this session's
    /// burst length and refilled per group, so a warmed-up caller pays no
    /// heap allocation at all.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is empty or not a
    /// multiple of [`BusSession::access_bytes`]; the output buffers are
    /// left cleared but otherwise untouched.
    pub fn encode_stream_slab_into(
        &mut self,
        data: &[u8],
        per_group: &mut Vec<CostBreakdown>,
        mut masks: Option<&mut Vec<InversionMask>>,
        slab: &mut BurstSlab,
    ) -> Result<u64> {
        per_group.clear();
        if let Some(masks) = masks.as_deref_mut() {
            masks.clear();
        }
        self.check_stream(data)?;
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        let accesses = data.len() / self.access_bytes();

        // The session's contract includes per-group activity, so the slab
        // must price whatever the caller last used it for.
        slab.set_pricing(true);
        // One chain-major fill — group `g` owns slab rows
        // `g·accesses .. (g+1)·accesses` — and then ONE lanes dispatch
        // encodes every group's chain, letting the SIMD kernels run the
        // groups as parallel lanes of a single recurrence. The fill and
        // the result gather are the same primitives a *packed* caller
        // (the service, packing several sessions into one dispatch) uses;
        // here the session's chains are simply the whole slab.
        slab.reset(burst_len);
        self.append_chains_to_slab(data, slab)?;
        let plan = Arc::clone(&self.plan);
        plan.encode_lanes_into(slab, &mut self.groups);
        self.gather_packed_results(slab, groups, 0, per_group, masks);
        Ok((accesses * groups) as u64)
    }

    /// Appends this session's lane-group **chains** for `data` onto
    /// `slab`, chain-major — group `g`'s bursts in stream order, groups in
    /// ascending order — without resetting the slab. This is the packing
    /// half of the cross-session dispatch protocol: a caller serving
    /// several sessions appends each session's chains in turn, gathers
    /// every session's carried states with
    /// [`BusSession::export_states_into`], runs **one**
    /// `encode_lanes_into` over the shared slab, then hands results and
    /// states back per session
    /// ([`BusSession::gather_packed_results`] /
    /// [`BusSession::import_states`]). Chains are independent recurrences,
    /// so the packed dispatch is bit-identical to per-session dispatches.
    ///
    /// Returns the number of bursts appended.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is empty or not a
    /// multiple of [`BusSession::access_bytes`]; the slab is untouched.
    ///
    /// # Panics
    ///
    /// Panics when the slab's burst length differs from the session's
    /// (the caller primes the shared slab's geometry once per pass).
    pub fn append_chains_to_slab(&self, data: &[u8], slab: &mut BurstSlab) -> Result<u64> {
        self.check_stream(data)?;
        assert_eq!(
            slab.burst_len(),
            self.burst_len,
            "shared slab primed for a different burst length"
        );
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        let accesses = data.len() / self.access_bytes();
        for group in 0..groups {
            for access in 0..accesses {
                let base = access * groups * burst_len;
                slab.push_with(|out| {
                    out.extend((0..burst_len).map(|beat| data[base + beat * groups + group]));
                });
            }
        }
        Ok((accesses * groups) as u64)
    }

    /// Carves this session's share of a **packed** dispatch back out of
    /// the shared slab: per-group activity sums and — when requested — the
    /// mask stream in transmission order (group-major within each access),
    /// exactly as [`BusSession::encode_stream_slab_into`] reports them.
    /// `chains_total` is the slab's total chain count across every packed
    /// session and `chain_base` the index of this session's first chain,
    /// as established by the [`BusSession::append_chains_to_slab`] order.
    /// `per_group` and `masks` are cleared and refilled, reusing capacity.
    ///
    /// # Panics
    ///
    /// Panics when the chain range does not lie inside the slab's chain
    /// grid (see [`BurstSlab::chain_view`]).
    pub fn gather_packed_results(
        &self,
        slab: &BurstSlab,
        chains_total: usize,
        chain_base: usize,
        per_group: &mut Vec<CostBreakdown>,
        masks: Option<&mut Vec<InversionMask>>,
    ) {
        let groups = self.groups.len();
        per_group.clear();
        per_group.resize(groups, CostBreakdown::ZERO);
        let mut accesses = 0;
        for (group, activity) in per_group.iter_mut().enumerate() {
            let view = slab.chain_view(chain_base + group, chains_total);
            accesses = view.burst_count();
            *activity = view.total();
        }
        if let Some(masks) = masks {
            masks.clear();
            masks.resize(accesses * groups, InversionMask::NONE);
            // Scatter each group's chain column back into transmission
            // order.
            for group in 0..groups {
                let view = slab.chain_view(chain_base + group, chains_total);
                for (access, &mask) in view.masks().iter().enumerate() {
                    masks[access * groups + group] = mask;
                }
            }
        }
    }

    /// Appends this session's carried per-group [`BusState`]s onto `out`
    /// — the handoff a packed caller uses to assemble the chain-state
    /// array of a multi-session `encode_lanes_into` dispatch (states in
    /// the same order as the chains appended by
    /// [`BusSession::append_chains_to_slab`]).
    pub fn export_states_into(&self, out: &mut Vec<BusState>) {
        out.extend_from_slice(&self.groups);
    }

    /// Installs the post-dispatch carried states handed back by a packed
    /// caller, one per lane group — the inverse of
    /// [`BusSession::export_states_into`].
    ///
    /// # Panics
    ///
    /// Panics when `states` does not hold exactly one state per group.
    pub fn import_states(&mut self, states: &[BusState]) {
        assert_eq!(
            states.len(),
            self.groups.len(),
            "state handoff must cover every lane group"
        );
        self.groups.copy_from_slice(states);
    }

    /// Produces the **wire image** of an encoded stream: the payload bytes
    /// with each burst's inversion decisions applied — exactly the DQ lane
    /// levels a transmitter drives, in the same beat-interleaved layout as
    /// the payload. `masks` is the mask stream in transmission order
    /// (group-major within each access), as produced by
    /// [`BusSession::encode_stream_into`]. Pure: carried state is neither
    /// read nor advanced (the wires' *levels* are fully determined by
    /// payload + masks). `wire` is cleared and refilled, reusing capacity.
    ///
    /// Feeding the result to [`BusSession::decode_stream_into`] recovers
    /// `payload` bit-identically — masked complementation is an
    /// involution (see
    /// [`InversionMask::apply_in_place`](dbi_core::InversionMask::apply_in_place)).
    ///
    /// # Errors
    ///
    /// [`MemError::BadAccessSize`] for a misaligned payload,
    /// [`MemError::BadMaskCount`] when `masks` does not hold one mask per
    /// burst, or [`MemError::BadMask`] when a mask references beats beyond
    /// the burst length. `wire` is left cleared on error.
    pub fn transmit_stream_into(
        &self,
        payload: &[u8],
        masks: &[InversionMask],
        wire: &mut Vec<u8>,
    ) -> Result<()> {
        wire.clear();
        self.check_decode_stream(payload, masks)?;
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        wire.extend_from_slice(payload);
        for access in 0..payload.len() / self.access_bytes() {
            let base = access * groups * burst_len;
            for group in 0..groups {
                let mask = masks[access * groups + group];
                for beat in 0..burst_len {
                    if mask.is_inverted(beat) {
                        wire[base + beat * groups + group] ^= 0xFF;
                    }
                }
            }
        }
        Ok(())
    }

    /// Decodes a beat-interleaved **wire** stream back into the original
    /// payload — the receiver half of [`BusSession::encode_stream_into`].
    ///
    /// `wire` holds the DQ lane levels in the interleaved layout the
    /// channel drives, and `masks` the DBI-lane decisions in transmission
    /// order. `out` is cleared and refilled with the recovered payload
    /// bytes (same layout as the wire), and `per_group` with one
    /// [`CostBreakdown`] per lane group holding the wire activity **as
    /// observed by the receiver** — re-priced from the received lane
    /// levels, an independent path from the encode-side accounting, so
    /// transmitter and receiver cross-check each other.
    ///
    /// The session's carried [`BusState`]s advance as the *receiver's*
    /// lane states: after decoding the stream a transmitter produced, a
    /// receiver session started from the same states holds bit-identical
    /// ones (tested below; the service's verify mode asserts it per
    /// request). All buffers reuse capacity; a warmed-up caller performs
    /// no heap allocation. Returns the number of bursts decoded.
    ///
    /// # Errors
    ///
    /// [`MemError::BadAccessSize`], [`MemError::BadMaskCount`] or
    /// [`MemError::BadMask`], as for
    /// [`BusSession::transmit_stream_into`]; carried states are untouched
    /// and the output buffers left cleared on error.
    pub fn decode_stream_into(
        &mut self,
        wire: &[u8],
        masks: &[InversionMask],
        per_group: &mut Vec<CostBreakdown>,
        out: &mut Vec<u8>,
    ) -> Result<u64> {
        per_group.clear();
        out.clear();
        self.check_decode_stream(wire, masks)?;
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        let accesses = wire.len() / self.access_bytes();
        per_group.resize(groups, CostBreakdown::ZERO);
        out.resize(wire.len(), 0);

        for (group, activity) in per_group.iter_mut().enumerate() {
            let mut prev = self.groups[group].last();
            let mut zeros = 0u64;
            let mut transitions = 0u64;
            for access in 0..accesses {
                let base = access * groups * burst_len;
                let mask = masks[access * groups + group];
                for beat in 0..burst_len {
                    let index = base + beat * groups + group;
                    let word = LaneWord::from_wire(wire[index], mask.is_inverted(beat));
                    zeros += u64::from(word.zeros());
                    transitions += u64::from(word.transitions_from(prev));
                    prev = word;
                    out[index] = word.decode();
                }
            }
            *activity = CostBreakdown::new(zeros, transitions);
            self.groups[group] = BusState::new(prev);
        }
        Ok((accesses * groups) as u64)
    }

    /// The convenient form of [`BusSession::decode_stream_into`]: returns
    /// the recovered payload and the receiver-side activity.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BusSession::decode_stream_into`].
    pub fn decode_stream(
        &mut self,
        wire: &[u8],
        masks: &[InversionMask],
    ) -> Result<(ChannelActivity, Vec<u8>)> {
        let mut per_group = Vec::new();
        let mut out = Vec::new();
        let bursts = self.decode_stream_into(wire, masks, &mut per_group, &mut out)?;
        Ok((ChannelActivity { bursts, per_group }, out))
    }

    /// The batched (slab) form of [`BusSession::decode_stream_into`]: each
    /// group's whole burst chain is de-interleaved into `slab` and decoded
    /// in **one** [`DbiDecoder::decode_slab_into`] call — one kernel pass
    /// per group instead of one mask application per burst. Bit-identical
    /// to [`BusSession::decode_stream_into`] (differential-tested below),
    /// including the carried receiver states and the wire-side pricing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BusSession::decode_stream_into`].
    pub fn decode_stream_slab_into(
        &mut self,
        wire: &[u8],
        masks: &[InversionMask],
        per_group: &mut Vec<CostBreakdown>,
        out: &mut Vec<u8>,
        slab: &mut BurstSlab,
    ) -> Result<u64> {
        per_group.clear();
        out.clear();
        self.check_decode_stream(wire, masks)?;
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        let accesses = wire.len() / self.access_bytes();
        per_group.resize(groups, CostBreakdown::ZERO);
        out.resize(wire.len(), 0);

        slab.set_pricing(true);
        // Mirror of the encode path: one chain-major fill, one lanes
        // dispatch, so the SWAR decode kernel re-prices every group's
        // whole chain instead of walking beat-by-beat lane words.
        slab.reset(burst_len);
        for group in 0..groups {
            for access in 0..accesses {
                let base = access * groups * burst_len;
                slab.push_with(|bytes| {
                    bytes.extend((0..burst_len).map(|beat| wire[base + beat * groups + group]));
                });
            }
        }
        slab.load_masks_from(ChainMajorMasks::new(masks, groups, accesses))
            .expect("mask stream was validated against the stream geometry");
        let plan = Arc::clone(&self.plan);
        plan.decode_lanes_into(slab, &mut self.groups)
            .expect("the loaded mask column covers every burst");
        for (group, activity) in per_group.iter_mut().enumerate() {
            *activity = slab.costs()[group * accesses..(group + 1) * accesses]
                .iter()
                .copied()
                .sum();
        }
        // Scatter the decoded bursts back into beat-interleaved order.
        for group in 0..groups {
            for access in 0..accesses {
                let base = access * groups * burst_len;
                let bytes = slab
                    .burst_bytes(group * accesses + access)
                    .expect("burst was pushed above");
                for (beat, &byte) in bytes.iter().enumerate() {
                    out[base + beat * groups + group] = byte;
                }
            }
        }
        Ok((accesses * groups) as u64)
    }

    /// The convenient form of [`BusSession::decode_stream_slab_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`BusSession::decode_stream_into`].
    pub fn decode_stream_slab(
        &mut self,
        wire: &[u8],
        masks: &[InversionMask],
    ) -> Result<(ChannelActivity, Vec<u8>)> {
        let mut per_group = Vec::new();
        let mut out = Vec::new();
        let mut slab = BurstSlab::new(self.burst_len);
        let bursts =
            self.decode_stream_slab_into(wire, masks, &mut per_group, &mut out, &mut slab)?;
        Ok((ChannelActivity { bursts, per_group }, out))
    }

    /// Shared validation of the decode/transmit stream inputs: the wire
    /// (or payload) must be whole accesses and `masks` must hold exactly
    /// one in-range mask per burst.
    fn check_decode_stream(&self, data: &[u8], masks: &[InversionMask]) -> Result<()> {
        self.check_stream(data)?;
        let bursts = (data.len() / self.access_bytes()) * self.groups.len();
        if masks.len() != bursts {
            return Err(MemError::BadMaskCount {
                got: masks.len(),
                expected: bursts,
            });
        }
        for (index, mask) in masks.iter().enumerate() {
            if mask.validate_for_len(self.burst_len).is_err() {
                return Err(MemError::BadMask {
                    index,
                    burst_len: self.burst_len,
                });
            }
        }
        Ok(())
    }

    /// Encodes the same beat-interleaved stream with one rayon task per
    /// lane group.
    ///
    /// Groups are independent by construction (separate wires, separate
    /// DBI decisions), so each task carries its own group's [`BusState`]
    /// through the whole stream and the result — including the carried
    /// states — is bit-identical to [`BusSession::encode_stream`]. The
    /// fan-out is per *group*, not per burst, so the sequential chain each
    /// state depends on is never broken.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadAccessSize`] when `data` is empty or not a
    /// multiple of [`BusSession::access_bytes`].
    pub fn encode_stream_parallel(&mut self, data: &[u8]) -> Result<ChannelActivity> {
        self.check_stream(data)?;
        let groups = self.groups.len();
        let burst_len = self.burst_len;
        let accesses = data.len() / self.access_bytes();
        let encoder: &EncodePlan = &self.plan;

        let mut per_group = vec![CostBreakdown::ZERO; groups];
        rayon::scope(|s| {
            for ((group, state), activity) in
                self.groups.iter_mut().enumerate().zip(per_group.iter_mut())
            {
                s.spawn(move || {
                    let mut scratch = Vec::with_capacity(burst_len);
                    let mut total = CostBreakdown::ZERO;
                    for access in 0..accesses {
                        let base = access * groups * burst_len;
                        scratch.clear();
                        scratch
                            .extend((0..burst_len).map(|beat| data[base + beat * groups + group]));
                        // Same move-in/move-out trick as the serial path:
                        // one gather buffer per task, no per-burst allocation.
                        let burst = Burst::new(scratch).expect("burst length is positive");
                        let mask = encoder.encode_mask(&burst, state);
                        total += mask.breakdown(&burst, state);
                        *state = mask.final_state(&burst, state);
                        scratch = burst.into_bytes();
                    }
                    *activity = total;
                });
            }
        });
        Ok(ChannelActivity {
            bursts: (accesses * groups) as u64,
            per_group,
        })
    }

    fn check_stream(&self, data: &[u8]) -> Result<()> {
        let step = self.access_bytes();
        if data.is_empty() || !data.len().is_multiple_of(step) {
            return Err(MemError::BadAccessSize {
                got: data.len(),
                expected: step,
            });
        }
        Ok(())
    }
}

/// Walks a transmission-order mask stream (group-major within each
/// access) in **chain-major** order — all of group 0's masks, then all of
/// group 1's, matching the slab row layout of the stream-slab paths.
/// `ExactSizeIterator` so [`BurstSlab::load_masks_from`] can size-check
/// before loading (a strided `flat_map` cannot promise its length).
struct ChainMajorMasks<'a> {
    masks: &'a [InversionMask],
    groups: usize,
    accesses: usize,
    index: usize,
}

impl<'a> ChainMajorMasks<'a> {
    fn new(masks: &'a [InversionMask], groups: usize, accesses: usize) -> Self {
        debug_assert_eq!(masks.len(), groups * accesses);
        Self {
            masks,
            groups,
            accesses,
            index: 0,
        }
    }
}

impl Iterator for ChainMajorMasks<'_> {
    type Item = InversionMask;

    fn next(&mut self) -> Option<InversionMask> {
        if self.index >= self.masks.len() {
            return None;
        }
        let (group, access) = (self.index / self.accesses, self.index % self.accesses);
        self.index += 1;
        Some(self.masks[access * self.groups + group])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.masks.len() - self.index;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ChainMajorMasks<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::CostWeights;

    fn test_stream(len: usize, seed: u64) -> Vec<u8> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn sessions_are_send() {
        // The service layer moves sessions into shard worker threads; keep
        // that property guarded at compile time.
        fn assert_send<T: Send>() {}
        assert_send::<BusSession>();
        assert_send::<ChannelActivity>();
    }

    #[test]
    fn encode_stream_into_matches_encode_stream_and_collects_masks() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 32, 0x1234);
        for scheme in Scheme::paper_set().iter().copied() {
            let mut plain = BusSession::new(&config, scheme);
            let expected = plain.encode_stream(&data).unwrap();

            let mut into = BusSession::new(&config, scheme);
            let mut per_group = Vec::new();
            let mut masks = Vec::new();
            let bursts = into
                .encode_stream_into(&data, &mut per_group, Some(&mut masks))
                .unwrap();
            assert_eq!(bursts, expected.bursts, "{scheme}");
            assert_eq!(per_group, expected.per_group, "{scheme}");
            assert_eq!(masks.len(), bursts as usize, "{scheme}");
            for group in 0..plain.group_count() {
                assert_eq!(plain.group_state(group), into.group_state(group));
            }

            // The collected masks are exactly the per-burst decisions a
            // drive_burst walk would make, in transmission order.
            let mut reference = BusSession::new(&config, scheme);
            let groups = reference.group_count();
            let burst_len = reference.burst_len();
            let mut index = 0;
            for access in 0..data.len() / reference.access_bytes() {
                let base = access * groups * burst_len;
                for group in 0..groups {
                    let bytes: Vec<u8> = (0..burst_len)
                        .map(|beat| data[base + beat * groups + group])
                        .collect();
                    let burst = Burst::new(bytes).unwrap();
                    let state = reference.group_state(group).unwrap();
                    let mask = scheme.encode_mask(&burst, &state);
                    reference.drive_burst(group, &burst);
                    assert_eq!(masks[index], mask, "{scheme}: burst {index}");
                    index += 1;
                }
            }
        }
    }

    #[test]
    fn encode_stream_into_reuses_buffers_and_clears_on_error() {
        let config = ChannelConfig::gddr5x();
        let mut session = BusSession::new(&config, Scheme::Ac);
        let data = test_stream(config.access_bytes() * 2, 9);
        let mut per_group = vec![CostBreakdown::new(9, 9); 7];
        let mut masks = vec![InversionMask::from_bits(1); 3];
        let bursts = session
            .encode_stream_into(&data, &mut per_group, Some(&mut masks))
            .unwrap();
        assert_eq!(per_group.len(), session.group_count());
        assert_eq!(masks.len(), bursts as usize);

        // Errors leave both buffers cleared, never stale.
        assert!(session
            .encode_stream_into(&[0u8; 3], &mut per_group, Some(&mut masks))
            .is_err());
        assert!(per_group.is_empty());
        assert!(masks.is_empty());
    }

    #[test]
    fn slab_stream_is_bit_identical_to_the_per_burst_stream() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 48, 0x51AB);
        for scheme in Scheme::paper_set().iter().copied() {
            let mut serial = BusSession::new(&config, scheme);
            let mut serial_groups = Vec::new();
            let mut serial_masks = Vec::new();
            let serial_bursts = serial
                .encode_stream_into(&data, &mut serial_groups, Some(&mut serial_masks))
                .unwrap();

            let mut slabbed = BusSession::new(&config, scheme);
            let mut slab_groups = Vec::new();
            let mut slab_masks = Vec::new();
            let mut slab = dbi_core::BurstSlab::new(1); // wrong length on purpose: reset must fix it
            let slab_bursts = slabbed
                .encode_stream_slab_into(&data, &mut slab_groups, Some(&mut slab_masks), &mut slab)
                .unwrap();

            assert_eq!(slab_bursts, serial_bursts, "{scheme}");
            assert_eq!(slab_groups, serial_groups, "{scheme}");
            assert_eq!(slab_masks, serial_masks, "{scheme}");
            for group in 0..serial.group_count() {
                assert_eq!(
                    serial.group_state(group),
                    slabbed.group_state(group),
                    "{scheme}: carried state of group {group}"
                );
            }

            // The convenience wrapper agrees as well, fed in two halves to
            // prove the state carries across slab calls.
            let mut halved = BusSession::new(&config, scheme);
            let half = data.len() / 2;
            let first = halved.encode_stream_slab(&data[..half]).unwrap();
            let second = halved.encode_stream_slab(&data[half..]).unwrap();
            assert_eq!(first.bursts + second.bursts, serial_bursts, "{scheme}");
            let mut recombined = first.total();
            recombined += second.total();
            assert_eq!(
                recombined,
                serial_groups.iter().copied().sum(),
                "{scheme}: halves must add up"
            );
        }
    }

    #[test]
    fn packed_cross_session_dispatch_matches_serial_sessions() {
        // Two sessions' chains appended to ONE slab, encoded by a single
        // kernel dispatch over the concatenated state vector, must produce
        // bit-identical masks/costs/carried-states to two serial
        // `encode_stream_slab_into` calls. This is the contract the service
        // engine's cross-session lane packing rests on.
        let config = ChannelConfig::gddr5x();
        let data_a = test_stream(config.access_bytes() * 24, 0xA11);
        let data_b = test_stream(config.access_bytes() * 24, 0xB22);
        for scheme in Scheme::paper_set().iter().copied() {
            let mut serial_a = BusSession::new(&config, scheme);
            let mut serial_b = BusSession::new(&config, scheme);
            let mut ref_groups_a = Vec::new();
            let mut ref_masks_a = Vec::new();
            let mut ref_groups_b = Vec::new();
            let mut ref_masks_b = Vec::new();
            let mut scratch = dbi_core::BurstSlab::new(config.burst_len());
            serial_a
                .encode_stream_slab_into(
                    &data_a,
                    &mut ref_groups_a,
                    Some(&mut ref_masks_a),
                    &mut scratch,
                )
                .unwrap();
            serial_b
                .encode_stream_slab_into(
                    &data_b,
                    &mut ref_groups_b,
                    Some(&mut ref_masks_b),
                    &mut scratch,
                )
                .unwrap();

            // Packed run: both sessions share one slab and one dispatch.
            let mut packed_a = BusSession::new(&config, scheme);
            let mut packed_b = BusSession::new(&config, scheme);
            let groups = packed_a.group_count();
            let mut slab = dbi_core::BurstSlab::new(config.burst_len());
            slab.set_pricing(true);
            slab.reset(config.burst_len());
            packed_a.append_chains_to_slab(&data_a, &mut slab).unwrap();
            packed_b.append_chains_to_slab(&data_b, &mut slab).unwrap();
            let mut states = Vec::new();
            packed_a.export_states_into(&mut states);
            packed_b.export_states_into(&mut states);
            assert_eq!(states.len(), groups * 2);
            let plan = Arc::clone(packed_a.plan());
            plan.encode_lanes_into(&mut slab, &mut states);
            packed_a.import_states(&states[..groups]);
            packed_b.import_states(&states[groups..]);
            let chains = groups * 2;
            let mut got_groups_a = Vec::new();
            let mut got_masks_a = Vec::new();
            let mut got_groups_b = Vec::new();
            let mut got_masks_b = Vec::new();
            packed_a.gather_packed_results(
                &slab,
                chains,
                0,
                &mut got_groups_a,
                Some(&mut got_masks_a),
            );
            packed_b.gather_packed_results(
                &slab,
                chains,
                groups,
                &mut got_groups_b,
                Some(&mut got_masks_b),
            );

            assert_eq!(got_groups_a, ref_groups_a, "{scheme}: session A costs");
            assert_eq!(got_masks_a, ref_masks_a, "{scheme}: session A masks");
            assert_eq!(got_groups_b, ref_groups_b, "{scheme}: session B costs");
            assert_eq!(got_masks_b, ref_masks_b, "{scheme}: session B masks");
            for group in 0..groups {
                assert_eq!(
                    packed_a.group_state(group),
                    serial_a.group_state(group),
                    "{scheme}: session A carried state, group {group}"
                );
                assert_eq!(
                    packed_b.group_state(group),
                    serial_b.group_state(group),
                    "{scheme}: session B carried state, group {group}"
                );
            }
        }
    }

    #[test]
    fn slab_stream_rejects_bad_sizes_and_clears_buffers() {
        let config = ChannelConfig::gddr5x();
        let mut session = BusSession::new(&config, Scheme::Ac);
        let mut per_group = vec![CostBreakdown::new(1, 1)];
        let mut masks = vec![InversionMask::from_bits(1)];
        let mut slab = dbi_core::BurstSlab::new(8);
        assert!(session
            .encode_stream_slab_into(&[0u8; 3], &mut per_group, Some(&mut masks), &mut slab)
            .is_err());
        assert!(per_group.is_empty());
        assert!(masks.is_empty());
        assert!(session.encode_stream_slab(&[]).is_err());
    }

    #[test]
    fn decode_stream_round_trips_every_scheme_with_carried_state() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 24, 0xDEC0DE);
        for scheme in Scheme::paper_set().iter().copied() {
            let mut tx = BusSession::new(&config, scheme);
            let mut tx_groups = Vec::new();
            let mut masks = Vec::new();
            let bursts = tx
                .encode_stream_into(&data, &mut tx_groups, Some(&mut masks))
                .unwrap();

            let mut wire = Vec::new();
            tx.transmit_stream_into(&data, &masks, &mut wire).unwrap();
            if scheme != Scheme::Raw {
                assert_ne!(wire, data, "{scheme}: some byte must have been inverted");
            }

            // Per-burst receiver.
            let mut rx = BusSession::new(&config, scheme);
            let (activity, decoded) = rx.decode_stream(&wire, &masks).unwrap();
            assert_eq!(decoded, data, "{scheme}: payload recovery");
            assert_eq!(activity.bursts, bursts, "{scheme}");
            assert_eq!(activity.per_group, tx_groups, "{scheme}: wire pricing");
            for group in 0..tx.group_count() {
                assert_eq!(
                    rx.group_state(group),
                    tx.group_state(group),
                    "{scheme}: receiver state of group {group}"
                );
            }

            // Slab receiver, bit-identical to the per-burst one — fed in
            // two halves to prove the receiver state carries across calls.
            let mut rx_slab = BusSession::new(&config, scheme);
            let mut slab_groups = Vec::new();
            let mut slab_out = Vec::new();
            let mut slab = BurstSlab::new(1); // wrong length on purpose
            let half = wire.len() / 2;
            let half_masks = masks.len() / 2;
            let first = rx_slab
                .decode_stream_slab_into(
                    &wire[..half],
                    &masks[..half_masks],
                    &mut slab_groups,
                    &mut slab_out,
                    &mut slab,
                )
                .unwrap();
            let mut combined = slab_out.clone();
            let mut first_groups = slab_groups.clone();
            let second = rx_slab
                .decode_stream_slab_into(
                    &wire[half..],
                    &masks[half_masks..],
                    &mut slab_groups,
                    &mut slab_out,
                    &mut slab,
                )
                .unwrap();
            combined.extend_from_slice(&slab_out);
            assert_eq!(first + second, bursts, "{scheme}");
            assert_eq!(combined, data, "{scheme}: slab payload recovery");
            for (a, b) in first_groups.iter_mut().zip(&slab_groups) {
                *a += *b;
            }
            assert_eq!(first_groups, tx_groups, "{scheme}: slab wire pricing");
            for group in 0..tx.group_count() {
                assert_eq!(
                    rx_slab.group_state(group),
                    tx.group_state(group),
                    "{scheme}: slab receiver state of group {group}"
                );
            }
        }
    }

    #[test]
    fn set_group_state_resynchronises_a_receiver_mid_stream() {
        // Decode only the second half of a stream by syncing the receiver
        // to the transmitter's mid-stream states first.
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 8, 0x517E);
        let half = data.len() / 2;
        let scheme = Scheme::OptFixed;

        let mut tx = BusSession::new(&config, scheme);
        let mut tx_groups = Vec::new();
        let mut masks = Vec::new();
        tx.encode_stream_into(&data[..half], &mut tx_groups, Some(&mut masks))
            .unwrap();
        let mid_states: Vec<BusState> = (0..tx.group_count())
            .map(|g| tx.group_state(g).unwrap())
            .collect();
        let mut tail_masks = Vec::new();
        tx.encode_stream_into(&data[half..], &mut tx_groups, Some(&mut tail_masks))
            .unwrap();
        let mut wire = Vec::new();
        tx.transmit_stream_into(&data[half..], &tail_masks, &mut wire)
            .unwrap();

        let mut rx = BusSession::new(&config, scheme);
        for (group, state) in mid_states.iter().enumerate() {
            rx.set_group_state(group, *state);
        }
        let (activity, decoded) = rx.decode_stream(&wire, &tail_masks).unwrap();
        assert_eq!(decoded, &data[half..]);
        assert_eq!(activity.per_group, tx_groups);
        for group in 0..tx.group_count() {
            assert_eq!(rx.group_state(group), tx.group_state(group));
        }
    }

    #[test]
    fn decode_stream_rejects_malformed_inputs_typed() {
        let config = ChannelConfig::gddr5x();
        let mut session = BusSession::new(&config, Scheme::Ac);
        let wire = test_stream(config.access_bytes() * 2, 1);
        let masks = vec![InversionMask::NONE; 8];
        let mut per_group = vec![CostBreakdown::new(1, 1)];
        let mut out = vec![7u8];

        // Misaligned wire.
        assert!(matches!(
            session.decode_stream_into(&wire[..31], &masks, &mut per_group, &mut out),
            Err(MemError::BadAccessSize { .. })
        ));
        assert!(per_group.is_empty() && out.is_empty());

        // Wrong mask count.
        assert_eq!(
            session.decode_stream(&wire, &masks[..7]).unwrap_err(),
            MemError::BadMaskCount {
                got: 7,
                expected: 8
            }
        );

        // A mask wider than the burst.
        let mut bad = masks.clone();
        bad[3] = InversionMask::from_bits(1 << 8);
        assert_eq!(
            session.decode_stream(&wire, &bad).unwrap_err(),
            MemError::BadMask {
                index: 3,
                burst_len: 8
            }
        );
        let mut slab = BurstSlab::new(8);
        assert_eq!(
            session
                .decode_stream_slab_into(&wire, &bad, &mut per_group, &mut out, &mut slab)
                .unwrap_err(),
            MemError::BadMask {
                index: 3,
                burst_len: 8
            }
        );
        // Carried state untouched by any of the failures.
        assert_eq!(session.group_state(0), Some(BusState::idle()));

        // Transmit shares the same validation.
        let mut wire_out = vec![1u8];
        assert!(matches!(
            session.transmit_stream_into(&wire, &masks[..7], &mut wire_out),
            Err(MemError::BadMaskCount { .. })
        ));
        assert!(wire_out.is_empty());
    }

    #[test]
    fn swap_plan_mid_stream_is_bit_identical_under_the_slab_path() {
        // PR 3 proved the per-burst path across a mid-session plan swap;
        // the slab kernels must carry the exact same states through the
        // boundary, encode *and* decode.
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 16, 0x5B5B);
        let half = data.len() / 2;
        let first_scheme = Scheme::Dc;
        let second_scheme = Scheme::Opt(CostWeights::new(4, 1).unwrap());

        // Reference: the per-burst path with the same swap.
        let mut reference = BusSession::new(&config, first_scheme);
        let mut ref_groups = Vec::new();
        let mut ref_masks_a = Vec::new();
        reference
            .encode_stream_into(&data[..half], &mut ref_groups, Some(&mut ref_masks_a))
            .unwrap();
        let ref_first = ref_groups.clone();
        reference.swap_plan(second_scheme.plan());
        let mut ref_masks_b = Vec::new();
        reference
            .encode_stream_into(&data[half..], &mut ref_groups, Some(&mut ref_masks_b))
            .unwrap();

        // Slab path with the same swap.
        let mut slabbed = BusSession::new(&config, first_scheme);
        let mut slab_groups = Vec::new();
        let mut slab_masks_a = Vec::new();
        let mut slab = BurstSlab::new(8);
        slabbed
            .encode_stream_slab_into(
                &data[..half],
                &mut slab_groups,
                Some(&mut slab_masks_a),
                &mut slab,
            )
            .unwrap();
        assert_eq!(slab_groups, ref_first, "first half activity");
        assert_eq!(slab_masks_a, ref_masks_a, "first half masks");
        slabbed.swap_plan(second_scheme.plan());
        let mut slab_masks_b = Vec::new();
        slabbed
            .encode_stream_slab_into(
                &data[half..],
                &mut slab_groups,
                Some(&mut slab_masks_b),
                &mut slab,
            )
            .unwrap();
        assert_eq!(slab_groups, ref_groups, "second half activity");
        assert_eq!(slab_masks_b, ref_masks_b, "second half masks");
        for group in 0..reference.group_count() {
            assert_eq!(
                slabbed.group_state(group),
                reference.group_state(group),
                "carried state of group {group} across the swap"
            );
        }

        // And the receiver round-trips the swapped stream through the
        // slab decode path with the same carried states.
        let mut wire_a = Vec::new();
        let mut wire_b = Vec::new();
        slabbed
            .transmit_stream_into(&data[..half], &slab_masks_a, &mut wire_a)
            .unwrap();
        slabbed
            .transmit_stream_into(&data[half..], &slab_masks_b, &mut wire_b)
            .unwrap();
        let mut rx = BusSession::new(&config, first_scheme);
        let mut rx_groups = Vec::new();
        let mut decoded = Vec::new();
        rx.decode_stream_slab_into(
            &wire_a,
            &slab_masks_a,
            &mut rx_groups,
            &mut decoded,
            &mut slab,
        )
        .unwrap();
        assert_eq!(decoded, &data[..half]);
        rx.decode_stream_slab_into(
            &wire_b,
            &slab_masks_b,
            &mut rx_groups,
            &mut decoded,
            &mut slab,
        )
        .unwrap();
        assert_eq!(decoded, &data[half..]);
        for group in 0..reference.group_count() {
            assert_eq!(rx.group_state(group), reference.group_state(group));
        }
    }

    #[test]
    fn parallel_equals_sequential_for_every_scheme() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 64, 0xBEEF);
        for scheme in Scheme::paper_set().iter().copied() {
            let mut serial = BusSession::new(&config, scheme);
            let mut parallel = BusSession::new(&config, scheme);
            let a = serial.encode_stream(&data).unwrap();
            let b = parallel.encode_stream_parallel(&data).unwrap();
            assert_eq!(a, b, "scheme {scheme}: parallel must be bit-identical");
            for group in 0..serial.group_count() {
                assert_eq!(
                    serial.group_state(group),
                    parallel.group_state(group),
                    "scheme {scheme}: carried state of group {group}"
                );
            }
        }
    }

    #[test]
    fn session_activity_matches_the_memory_controller() {
        // The session is the controller's encode path without the storage:
        // same interleaving, same carried state, same activity.
        use crate::controller::MemoryController;
        let config = ChannelConfig::ddr4_3200();
        let data = test_stream(config.access_bytes() * 16, 0xCAFE);
        let mut session = BusSession::new(&config, Scheme::OptFixed);
        let activity = session.encode_stream(&data).unwrap();

        let mut controller = MemoryController::new(config, Scheme::OptFixed);
        controller.write_buffer(0, &data).unwrap();
        assert_eq!(activity.total(), controller.totals().activity);
        assert_eq!(activity.bursts, controller.totals().bursts);
    }

    #[test]
    fn state_carries_across_stream_slices() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 8, 7);
        let mut whole = BusSession::new(&config, Scheme::Ac);
        let all = whole.encode_stream(&data).unwrap();

        let mut sliced = BusSession::new(&config, Scheme::Ac);
        let half = data.len() / 2;
        let first = sliced.encode_stream(&data[..half]).unwrap();
        let second = sliced.encode_stream(&data[half..]).unwrap();
        let mut recombined = first.total();
        recombined += second.total();
        assert_eq!(all.total(), recombined);
        assert_eq!(all.bursts, first.bursts + second.bursts);
    }

    #[test]
    fn reset_and_accessors() {
        let config = ChannelConfig::gddr5x();
        let mut session = BusSession::new(&config, Scheme::Dc);
        assert_eq!(session.group_count(), 4);
        assert_eq!(session.burst_len(), 8);
        assert_eq!(session.access_bytes(), 32);
        assert_eq!(session.scheme(), Scheme::Dc);
        assert_eq!(session.group_state(4), None);

        let data = test_stream(session.access_bytes(), 3);
        session.encode_stream(&data).unwrap();
        assert_ne!(session.group_state(0), Some(BusState::idle()));
        session.reset();
        assert_eq!(session.group_state(0), Some(BusState::idle()));
        assert!(format!("{session:?}").contains("BusSession"));
    }

    #[test]
    fn with_plan_encodes_like_the_scheme_it_wraps() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 8, 0x71A2);
        let scheme = Scheme::Opt(CostWeights::new(2, 5).unwrap());
        let mut by_scheme = BusSession::new(&config, scheme);
        let mut by_plan = BusSession::with_plan(&config, scheme.plan());
        assert_eq!(by_plan.scheme(), scheme);
        assert_eq!(by_plan.plan().scheme(), scheme);
        assert_eq!(
            by_scheme.encode_stream(&data).unwrap(),
            by_plan.encode_stream(&data).unwrap()
        );
        for group in 0..by_scheme.group_count() {
            assert_eq!(by_scheme.group_state(group), by_plan.group_state(group));
        }
    }

    #[test]
    fn swap_plan_preserves_carried_state_at_the_boundary() {
        let config = ChannelConfig::gddr5x();
        let data = test_stream(config.access_bytes() * 16, 0x5A5A);
        let half = data.len() / 2;
        let first_scheme = Scheme::Dc;
        let second_scheme = Scheme::Opt(CostWeights::new(4, 1).unwrap());

        // Swapped session: DC for the first half, OPT for the second.
        let mut swapped = BusSession::new(&config, first_scheme);
        let first_half = swapped.encode_stream(&data[..half]).unwrap();
        let old = swapped.swap_plan(second_scheme.plan());
        assert_eq!(old.scheme(), first_scheme);
        assert_eq!(swapped.scheme(), second_scheme);
        let second_half = swapped.encode_stream(&data[half..]).unwrap();

        // Reference: encode the first half with DC, then hand the *lane
        // states* to a fresh OPT session for the second half.
        let mut reference = BusSession::new(&config, first_scheme);
        let expected_first = reference.encode_stream(&data[..half]).unwrap();
        let mut continued = BusSession::with_plan(&config, second_scheme.plan());
        for group in 0..reference.group_count() {
            continued.groups[group] = reference.group_state(group).unwrap();
        }
        let expected_second = continued.encode_stream(&data[half..]).unwrap();

        assert_eq!(first_half, expected_first);
        assert_eq!(second_half, expected_second);
        for group in 0..swapped.group_count() {
            assert_eq!(swapped.group_state(group), continued.group_state(group));
        }

        // And the swap really changed behaviour: an unswapped DC session
        // makes different decisions on the second half.
        let mut unswapped = BusSession::new(&config, first_scheme);
        let _ = unswapped.encode_stream(&data[..half]).unwrap();
        let dc_second = unswapped.encode_stream(&data[half..]).unwrap();
        assert_ne!(second_half, dc_second, "swap must change the decisions");
    }

    #[test]
    fn bad_stream_sizes_are_rejected() {
        let config = ChannelConfig::gddr5x();
        let mut session = BusSession::new(&config, Scheme::Raw);
        assert!(matches!(
            session.encode_stream(&[0u8; 31]),
            Err(MemError::BadAccessSize {
                got: 31,
                expected: 32
            })
        ));
        assert!(session.encode_stream(&[]).is_err());
        assert!(session.encode_stream_parallel(&[0u8; 33]).is_err());
    }

    #[test]
    fn drive_burst_reports_weighted_activity() {
        let mut session = BusSession::with_geometry(2, 8, Scheme::OptFixed);
        let burst = Burst::paper_example();
        let activity = session.drive_burst(0, &burst);
        assert_eq!(activity.weighted(&CostWeights::FIXED), 52);
        // Group 1 untouched.
        assert_eq!(session.group_state(1), Some(BusState::idle()));
    }

    #[test]
    #[should_panic(expected = "at least one lane group")]
    fn zero_groups_panics() {
        let _ = BusSession::with_geometry(0, 8, Scheme::Raw);
    }

    #[test]
    #[should_panic(expected = "inversion-mask limit")]
    fn oversized_burst_len_panics() {
        let _ = BusSession::with_geometry(4, 33, Scheme::Raw);
    }

    #[test]
    fn channel_activity_display_and_cost() {
        let activity = ChannelActivity {
            bursts: 4,
            per_group: vec![CostBreakdown::new(3, 1), CostBreakdown::new(2, 2)],
        };
        assert_eq!(activity.total(), CostBreakdown::new(5, 3));
        assert_eq!(activity.cost(&CostWeights::FIXED), 8);
        assert!(activity.to_string().contains("2 groups"));
    }
}
