//! The multi-group DQ bus.
//!
//! A x32 GDDR5 channel has four independent 8-lane DBI groups (DQ0–7 with
//! DBI0, DQ8–15 with DBI1, ...); a x64 DDR4 channel has eight. Each group
//! keeps its own lane state across bursts, and each group's DBI decision is
//! taken independently — exactly as in the standards. [`DqBus`] tracks that
//! per-group state and accumulates the activity (zeros and transitions) of
//! everything driven onto the wires.

use core::fmt;
use dbi_core::{Burst, BusState, CostBreakdown, DbiEncoder, EncodedBurst};

/// The lane-level state and activity accounting of one memory channel's DQ
/// bus.
#[derive(Debug, Clone, PartialEq)]
pub struct DqBus {
    groups: Vec<BusState>,
    activity: CostBreakdown,
    bursts_driven: u64,
}

impl DqBus {
    /// Creates a bus with `groups` independent DBI groups, all idle (every
    /// lane high), matching the paper's boundary condition.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    #[must_use]
    pub fn new(groups: usize) -> Self {
        assert!(groups > 0, "a DQ bus needs at least one lane group");
        DqBus {
            groups: vec![BusState::idle(); groups],
            activity: CostBreakdown::ZERO,
            bursts_driven: 0,
        }
    }

    /// Number of 8-lane DBI groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The current lane state of one group.
    #[must_use]
    pub fn group_state(&self, group: usize) -> Option<BusState> {
        self.groups.get(group).copied()
    }

    /// Encodes and drives one burst on one group, updating the group's lane
    /// state and the accumulated activity. Returns the encoded burst and
    /// the activity it added.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range; the controller sizes its accesses
    /// from the same configuration as the bus, so this indicates a bug.
    pub fn drive<E: DbiEncoder + ?Sized>(
        &mut self,
        group: usize,
        burst: &Burst,
        encoder: &E,
    ) -> (EncodedBurst, CostBreakdown) {
        let state = self.groups[group];
        let encoded = encoder.encode(burst, &state);
        let breakdown = encoded.breakdown(&state);
        self.groups[group] = encoded.final_state(&state);
        self.activity += breakdown;
        self.bursts_driven += 1;
        (encoded, breakdown)
    }

    /// Total activity accumulated since construction (or the last reset).
    #[must_use]
    pub const fn activity(&self) -> CostBreakdown {
        self.activity
    }

    /// Number of per-group bursts driven so far.
    #[must_use]
    pub const fn bursts_driven(&self) -> u64 {
        self.bursts_driven
    }

    /// Resets the activity counters without touching the lane state.
    pub fn reset_activity(&mut self) {
        self.activity = CostBreakdown::ZERO;
        self.bursts_driven = 0;
    }

    /// Forces every group back to the idle (all lanes high) state.
    pub fn idle_all(&mut self) {
        for group in &mut self.groups {
            *group = BusState::idle();
        }
    }
}

impl fmt::Display for DqBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} groups, {} bursts driven, {}",
            self.groups.len(),
            self.bursts_driven,
            self.activity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::Scheme;

    #[test]
    #[should_panic(expected = "at least one lane group")]
    fn zero_groups_panics() {
        let _ = DqBus::new(0);
    }

    #[test]
    fn groups_start_idle_and_track_state_independently() {
        let mut bus = DqBus::new(4);
        assert_eq!(bus.group_count(), 4);
        for g in 0..4 {
            assert_eq!(bus.group_state(g), Some(BusState::idle()));
        }
        assert_eq!(bus.group_state(4), None);

        let burst = Burst::from_array([0x00; 8]);
        bus.drive(1, &burst, &Scheme::Dc);
        assert_eq!(
            bus.group_state(0),
            Some(BusState::idle()),
            "group 0 untouched"
        );
        assert_ne!(
            bus.group_state(1),
            Some(BusState::idle()),
            "group 1 advanced"
        );
    }

    #[test]
    fn activity_accumulates_and_resets() {
        let mut bus = DqBus::new(2);
        let burst = Burst::paper_example();
        let (_, first) = bus.drive(0, &burst, &Scheme::OptFixed);
        let (_, second) = bus.drive(1, &burst, &Scheme::OptFixed);
        assert_eq!(bus.activity(), first + second);
        assert_eq!(bus.bursts_driven(), 2);
        bus.reset_activity();
        assert_eq!(bus.activity(), CostBreakdown::ZERO);
        assert_eq!(bus.bursts_driven(), 0);
    }

    #[test]
    fn lane_state_persists_across_bursts() {
        // Driving the same all-zero burst twice with DBI AC: the second
        // burst causes no transitions at all because the lanes already hold
        // the right levels.
        let mut bus = DqBus::new(1);
        let burst = Burst::from_array([0x00; 8]);
        let (_, first) = bus.drive(0, &burst, &Scheme::Ac);
        let (_, second) = bus.drive(0, &burst, &Scheme::Ac);
        assert!(first.transitions > 0);
        assert_eq!(second.transitions, 0);
    }

    #[test]
    fn idle_all_restores_the_boundary_condition() {
        let mut bus = DqBus::new(2);
        bus.drive(0, &Burst::from_array([0x12; 8]), &Scheme::Raw);
        bus.idle_all();
        assert_eq!(bus.group_state(0), Some(BusState::idle()));
        assert!(bus.to_string().contains("groups"));
    }
}
