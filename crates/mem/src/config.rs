//! Channel configurations for the memory-interface substrate.

use crate::error::{MemError, Result};
use core::fmt;
use dbi_core::STANDARD_BURST_LEN;
use dbi_phy::{Capacitance, DataRate, InterfaceEnergyModel, LoadBudget, PodInterface};

/// The memory technology a channel models. Only parameters that matter for
/// interface energy and DBI behaviour are captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MemoryKind {
    /// GDDR5 graphics memory (POD135, x32 channels, up to ~8 Gbps/pin).
    Gddr5,
    /// GDDR5X graphics memory (POD135, x32 channels, up to 12 Gbps/pin).
    Gddr5x,
    /// DDR4 commodity memory (POD12, x64 channels, up to 3.2 Gbps/pin).
    Ddr4,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemoryKind::Gddr5 => "GDDR5",
            MemoryKind::Gddr5x => "GDDR5X",
            MemoryKind::Ddr4 => "DDR4",
        };
        write!(f, "{name}")
    }
}

/// Static configuration of one memory channel.
///
/// ```
/// use dbi_mem::ChannelConfig;
///
/// let config = ChannelConfig::gddr5x();
/// assert_eq!(config.lane_groups(), 4);          // x32 channel
/// assert_eq!(config.access_bytes(), 32);        // 4 groups × BL8
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConfig {
    kind: MemoryKind,
    bus_width_bits: u32,
    burst_len: usize,
    interface: PodInterface,
    load: LoadBudget,
    data_rate: DataRate,
}

impl ChannelConfig {
    /// A GDDR5X channel as evaluated in the paper: x32, BL8, POD135, 3 pF
    /// per lane, 12 Gbps per pin.
    #[must_use]
    pub fn gddr5x() -> Self {
        ChannelConfig {
            kind: MemoryKind::Gddr5x,
            bus_width_bits: 32,
            burst_len: STANDARD_BURST_LEN,
            interface: PodInterface::pod135(),
            load: LoadBudget::gddr5_point_to_point(),
            data_rate: DataRate::from_gbps(DataRate::GDDR5X_GBPS)
                .expect("the GDDR5X preset rate is positive"),
        }
    }

    /// A GDDR5 channel: x32, BL8, POD135, 8 Gbps per pin.
    #[must_use]
    pub fn gddr5() -> Self {
        ChannelConfig {
            kind: MemoryKind::Gddr5,
            data_rate: DataRate::from_gbps(DataRate::GDDR5_GBPS)
                .expect("the GDDR5 preset rate is positive"),
            ..ChannelConfig::gddr5x()
        }
    }

    /// A DDR4-3200 channel: x64, BL8, POD12, DIMM load budget.
    #[must_use]
    pub fn ddr4_3200() -> Self {
        ChannelConfig {
            kind: MemoryKind::Ddr4,
            bus_width_bits: 64,
            burst_len: STANDARD_BURST_LEN,
            interface: PodInterface::pod12(),
            load: LoadBudget::ddr4_dimm(),
            data_rate: DataRate::from_gbps(DataRate::DDR4_3200_GBPS)
                .expect("the DDR4 preset rate is positive"),
        }
    }

    /// Builds a custom configuration.
    ///
    /// # Errors
    ///
    /// * [`MemError::BadBusWidth`] if `bus_width_bits` is zero or not a
    ///   multiple of 8.
    /// * [`MemError::ZeroBurstLength`] if `burst_len` is zero.
    pub fn custom(
        kind: MemoryKind,
        bus_width_bits: u32,
        burst_len: usize,
        interface: PodInterface,
        load: LoadBudget,
        data_rate: DataRate,
    ) -> Result<Self> {
        if bus_width_bits == 0 || !bus_width_bits.is_multiple_of(8) {
            return Err(MemError::BadBusWidth(bus_width_bits));
        }
        if burst_len == 0 {
            return Err(MemError::ZeroBurstLength);
        }
        Ok(ChannelConfig {
            kind,
            bus_width_bits,
            burst_len,
            interface,
            load,
            data_rate,
        })
    }

    /// Returns a copy running at a different per-pin data rate.
    ///
    /// # Errors
    ///
    /// Returns [`dbi_phy::PhyError::InvalidDataRate`] for non-positive rates.
    pub fn at_data_rate(&self, gbps: f64) -> dbi_phy::Result<Self> {
        Ok(ChannelConfig {
            data_rate: DataRate::from_gbps(gbps)?,
            ..self.clone()
        })
    }

    /// Returns a copy with a different lumped per-lane load.
    #[must_use]
    pub fn with_load(&self, cload: Capacitance) -> Self {
        ChannelConfig {
            load: LoadBudget::lumped(cload),
            ..self.clone()
        }
    }

    /// The memory technology.
    #[must_use]
    pub const fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Width of the DQ bus in data lanes (excluding DBI lanes).
    #[must_use]
    pub const fn bus_width_bits(&self) -> u32 {
        self.bus_width_bits
    }

    /// Number of independent 8-lane DBI groups on the bus.
    #[must_use]
    pub const fn lane_groups(&self) -> usize {
        (self.bus_width_bits / 8) as usize
    }

    /// Burst length in unit intervals.
    #[must_use]
    pub const fn burst_len(&self) -> usize {
        self.burst_len
    }

    /// Bytes transferred by one full-bus burst (the channel's access
    /// granularity): lane groups × burst length.
    #[must_use]
    pub const fn access_bytes(&self) -> usize {
        self.lane_groups() * self.burst_len
    }

    /// The electrical interface.
    #[must_use]
    pub const fn interface(&self) -> PodInterface {
        self.interface
    }

    /// The per-lane load budget.
    #[must_use]
    pub const fn load(&self) -> LoadBudget {
        self.load
    }

    /// The per-pin data rate.
    #[must_use]
    pub const fn data_rate(&self) -> DataRate {
        self.data_rate
    }

    /// The per-lane energy model implied by this configuration.
    #[must_use]
    pub fn energy_model(&self) -> InterfaceEnergyModel {
        InterfaceEnergyModel::new(self.interface, self.load.total(), self.data_rate)
    }
}

impl fmt::Display for ChannelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} BL{} @ {}",
            self.kind, self.bus_width_bits, self.burst_len, self.data_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_the_expected_geometry() {
        let gddr5x = ChannelConfig::gddr5x();
        assert_eq!(gddr5x.kind(), MemoryKind::Gddr5x);
        assert_eq!(gddr5x.bus_width_bits(), 32);
        assert_eq!(gddr5x.lane_groups(), 4);
        assert_eq!(gddr5x.access_bytes(), 32);
        assert!((gddr5x.data_rate().gbps() - 12.0).abs() < 1e-9);

        let ddr4 = ChannelConfig::ddr4_3200();
        assert_eq!(ddr4.lane_groups(), 8);
        assert_eq!(ddr4.access_bytes(), 64);
        assert!((ddr4.interface().vddq_v() - 1.2).abs() < 1e-9);

        let gddr5 = ChannelConfig::gddr5();
        assert_eq!(gddr5.kind(), MemoryKind::Gddr5);
        assert!((gddr5.data_rate().gbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn custom_validation() {
        let base = ChannelConfig::gddr5x();
        assert!(matches!(
            ChannelConfig::custom(
                MemoryKind::Gddr5,
                12,
                8,
                base.interface(),
                base.load(),
                base.data_rate()
            ),
            Err(MemError::BadBusWidth(12))
        ));
        assert!(matches!(
            ChannelConfig::custom(
                MemoryKind::Gddr5,
                32,
                0,
                base.interface(),
                base.load(),
                base.data_rate()
            ),
            Err(MemError::ZeroBurstLength)
        ));
        let ok = ChannelConfig::custom(
            MemoryKind::Ddr4,
            16,
            4,
            base.interface(),
            base.load(),
            base.data_rate(),
        )
        .unwrap();
        assert_eq!(ok.lane_groups(), 2);
        assert_eq!(ok.access_bytes(), 8);
    }

    #[test]
    fn rate_and_load_overrides() {
        let config = ChannelConfig::gddr5x().at_data_rate(14.0).unwrap();
        assert!((config.data_rate().gbps() - 14.0).abs() < 1e-9);
        assert!(ChannelConfig::gddr5x().at_data_rate(0.0).is_err());
        let config = config.with_load(Capacitance::from_pf(6.0));
        assert!((config.load().total().picofarads() - 6.0).abs() < 1e-9);
        assert!((config.energy_model().cload().picofarads() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_kind_and_rate() {
        let text = ChannelConfig::gddr5x().to_string();
        assert!(text.contains("GDDR5X"));
        assert!(text.contains("Gbps"));
        assert_eq!(MemoryKind::Ddr4.to_string(), "DDR4");
    }
}
