//! Property tests for the memory-channel substrate: no DBI scheme ever
//! corrupts data on the write path or the read path, and the energy
//! accounting is consistent.

use dbi_core::{CostWeights, Scheme};
use dbi_mem::{ChannelConfig, MemoryController, ReadPath};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Raw),
        Just(Scheme::Dc),
        Just(Scheme::Ac),
        Just(Scheme::AcDc),
        Just(Scheme::OptFixed),
        (1u32..=7, 1u32..=7)
            .prop_map(|(a, b)| Scheme::Opt(CostWeights::new(a, b).expect("non-zero"))),
    ]
}

fn config_strategy() -> impl Strategy<Value = ChannelConfig> {
    prop_oneof![
        Just(ChannelConfig::gddr5()),
        Just(ChannelConfig::gddr5x()),
        Just(ChannelConfig::ddr4_3200()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_path_is_lossless_for_every_scheme(
        scheme in scheme_strategy(),
        config in config_strategy(),
        accesses in 1usize..4,
        seed in any::<u64>(),
    ) {
        let access_bytes = config.access_bytes();
        let mut state = seed;
        let data: Vec<u8> = (0..access_bytes * accesses)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let lane_groups = config.lane_groups();
        let mut controller = MemoryController::new(config, scheme);
        controller.write_buffer(0, &data).expect("buffer is access-aligned");
        for access in 0..accesses {
            prop_assert!(controller.verify(
                (access * access_bytes) as u64,
                &data[access * access_bytes..(access + 1) * access_bytes],
            ));
        }
        // Energy accounting invariants.
        let totals = controller.totals();
        prop_assert_eq!(totals.accesses, accesses as u64);
        prop_assert_eq!(totals.bursts, (accesses * lane_groups) as u64);
        prop_assert!(totals.interface_energy_j >= 0.0);
    }

    #[test]
    fn read_path_returns_what_the_write_path_stored(
        write_scheme in scheme_strategy(),
        read_scheme in scheme_strategy(),
        seed in any::<u64>(),
    ) {
        let config = ChannelConfig::gddr5x();
        let access_bytes = config.access_bytes();
        let mut state = seed;
        let data: Vec<u8> = (0..access_bytes * 2)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let mut controller = MemoryController::new(config.clone(), write_scheme);
        controller.write_buffer(0, &data).expect("buffer is access-aligned");

        let mut reads = ReadPath::new(config, read_scheme);
        for access in 0..2usize {
            let restored = reads
                .read(controller.device(), (access * access_bytes) as u64)
                .expect("access size is valid");
            prop_assert_eq!(&restored, &data[access * access_bytes..(access + 1) * access_bytes]);
        }
    }

    #[test]
    fn optimal_scheme_never_costs_more_interface_energy(
        config in config_strategy(),
        seed in any::<u64>(),
    ) {
        let access_bytes = config.access_bytes();
        let mut state = seed;
        let data: Vec<u8> = (0..access_bytes * 4)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let energy = |scheme: Scheme| {
            let mut controller = MemoryController::new(config.clone(), scheme);
            controller.write_buffer(0, &data).expect("buffer is access-aligned");
            controller.totals().interface_energy_j
        };
        // With the balanced alpha = beta weighting implied by OptFixed, the
        // optimal scheme cannot lose to RAW; against DC and AC it can only
        // lose when the physical energy ratio at this operating point is far
        // from 1:1, so compare in activity-weighted terms instead.
        prop_assert!(energy(Scheme::OptFixed) <= energy(Scheme::Raw) + 1e-18);
    }
}
