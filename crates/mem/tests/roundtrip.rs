//! Property tests for the memory-channel substrate, driven by a seeded
//! deterministic RNG: no DBI scheme ever corrupts data on the write path or
//! the read path, and the energy accounting is consistent.

use dbi_core::{CostWeights, Scheme};
use dbi_mem::{ChannelConfig, MemoryController, ReadPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Cases {
    rng: StdRng,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Cases {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    fn scheme(&mut self) -> Scheme {
        match self.next_u64() % 6 {
            0 => Scheme::Raw,
            1 => Scheme::Dc,
            2 => Scheme::Ac,
            3 => Scheme::AcDc,
            4 => Scheme::OptFixed,
            _ => {
                let alpha = 1 + (self.next_u64() % 7) as u32;
                let beta = 1 + (self.next_u64() % 7) as u32;
                Scheme::Opt(CostWeights::new(alpha, beta).expect("non-zero"))
            }
        }
    }

    fn config(&mut self) -> ChannelConfig {
        match self.next_u64() % 3 {
            0 => ChannelConfig::gddr5(),
            1 => ChannelConfig::gddr5x(),
            _ => ChannelConfig::ddr4_3200(),
        }
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() >> 56) as u8).collect()
    }
}

const CASES: usize = 64;

#[test]
fn write_path_is_lossless_for_every_scheme() {
    let mut cases = Cases::new(0x0DB1_3001);
    for _ in 0..CASES {
        let scheme = cases.scheme();
        let config = cases.config();
        let accesses = 1 + (cases.next_u64() % 3) as usize;
        let access_bytes = config.access_bytes();
        let data = cases.bytes(access_bytes * accesses);
        let lane_groups = config.lane_groups();
        let mut controller = MemoryController::new(config, scheme);
        controller
            .write_buffer(0, &data)
            .expect("buffer is access-aligned");
        for access in 0..accesses {
            assert!(controller.verify(
                (access * access_bytes) as u64,
                &data[access * access_bytes..(access + 1) * access_bytes],
            ));
        }
        // Energy accounting invariants.
        let totals = controller.totals();
        assert_eq!(totals.accesses, accesses as u64);
        assert_eq!(totals.bursts, (accesses * lane_groups) as u64);
        assert!(totals.interface_energy_j >= 0.0);
    }
}

#[test]
fn read_path_returns_what_the_write_path_stored() {
    let mut cases = Cases::new(0x0DB1_3002);
    for _ in 0..CASES {
        let write_scheme = cases.scheme();
        let read_scheme = cases.scheme();
        let config = ChannelConfig::gddr5x();
        let access_bytes = config.access_bytes();
        let data = cases.bytes(access_bytes * 2);
        let mut controller = MemoryController::new(config.clone(), write_scheme);
        controller
            .write_buffer(0, &data)
            .expect("buffer is access-aligned");

        let mut reads = ReadPath::new(config, read_scheme);
        for access in 0..2usize {
            let restored = reads
                .read(controller.device(), (access * access_bytes) as u64)
                .expect("access size is valid");
            assert_eq!(
                &restored,
                &data[access * access_bytes..(access + 1) * access_bytes]
            );
        }
    }
}

#[test]
fn optimal_scheme_never_costs_more_interface_energy() {
    let mut cases = Cases::new(0x0DB1_3003);
    for _ in 0..CASES {
        let config = cases.config();
        let access_bytes = config.access_bytes();
        let data = cases.bytes(access_bytes * 4);
        let energy = |scheme: Scheme| {
            let mut controller = MemoryController::new(config.clone(), scheme);
            controller
                .write_buffer(0, &data)
                .expect("buffer is access-aligned");
            controller.totals().interface_energy_j
        };
        // With the balanced alpha = beta weighting implied by OptFixed, the
        // optimal scheme cannot lose to RAW; against DC and AC it can only
        // lose when the physical energy ratio at this operating point is far
        // from 1:1, so compare in activity-weighted terms instead.
        assert!(energy(Scheme::OptFixed) <= energy(Scheme::Raw) + 1e-18);
    }
}
