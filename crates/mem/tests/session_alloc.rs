//! Counting-allocator proof of the `BusSession` claim: the allocation
//! count of a sequential `encode_stream` call is a small per-call constant,
//! independent of how many bursts the stream contains.
//!
//! Single `#[test]` so no concurrent test disturbs the global counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dbi_core::Scheme;
use dbi_mem::{BusSession, ChannelConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the `GlobalAlloc`
// contract; the counter increment has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    drop(result);
    after - before
}

#[test]
fn stream_allocation_count_is_independent_of_stream_length() {
    let config = ChannelConfig::gddr5x();
    let mut session = BusSession::new(&config, Scheme::OptFixed);
    let small = vec![0x5Au8; config.access_bytes() * 4];
    let large = vec![0xA5u8; config.access_bytes() * 256];

    // Warm up the scratch buffer once.
    session.encode_stream(&small).unwrap();

    let small_allocs = allocations_during(|| session.encode_stream(&small).unwrap());
    let large_allocs = allocations_during(|| session.encode_stream(&large).unwrap());

    // 4 accesses vs 256 accesses (16 vs 1024 bursts): if anything allocated
    // per burst, the large stream would show ~64x more allocations. Both
    // calls may allocate the per-call result vector, nothing that scales.
    assert_eq!(
        small_allocs, large_allocs,
        "allocation count must not scale with the number of encoded bursts"
    );
    assert!(
        large_allocs <= 4,
        "a stream call should only allocate its result, observed {large_allocs}"
    );
}
