//! Property tests of the weight-quantisation path.
//!
//! `CostWeights::from_energy_ratio` scales a physical energy pair
//! `(E_transition, E_zero)` so the larger coefficient saturates at
//! `2^bits − 1 = M` and the smaller is rounded (clamped to ≥ 1). The
//! rounding perturbs the smaller coefficient by at most 1 (½ from
//! round-to-nearest, up to 1 when the clamp engages), which bounds how far
//! the quantised ordering of two activities can diverge from the true
//! energy ordering:
//!
//! With true energies `(e_t, e_z)` and quantised `(α, β)`, the quantised
//! cost is a positive rescaling of the true cost plus an error of at most
//! `max(e_t, e_z) / M` per activity-count unit. Two activities whose true
//! energy difference exceeds
//!
//! ```text
//! tolerance = max(e_t, e_z) / M · (|Δzeros| + |Δtransitions|)
//! ```
//!
//! must therefore keep their order under the quantised integer weights.
//! These tests check that bound over seeded random ratios, resolutions and
//! activity pairs — both for raw `from_energy_ratio` calls and for
//! `InterfaceEnergyModel::quantised_weights` over random operating points.

use dbi_core::{CostBreakdown, CostWeights};
use dbi_phy::{Capacitance, DataRate, InterfaceEnergyModel, PodInterface};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Signed true-energy cost of an activity.
fn true_cost(activity: CostBreakdown, e_transition: f64, e_zero: f64) -> f64 {
    activity.energy(e_zero, e_transition)
}

/// Asserts the ordering property for one `(e_t, e_z, bits)` triple over
/// random activity pairs.
fn check_ordering(rng: &mut StdRng, e_transition: f64, e_zero: f64, bits: u32, context: &str) {
    let weights = CostWeights::from_energy_ratio(e_transition, e_zero, bits)
        .expect("positive energies always quantise");
    let max_coeff = ((1u64 << bits.clamp(1, 20)) - 1) as f64;
    // Worst-case quantisation error per unit of activity count.
    let per_count = e_transition.max(e_zero) / max_coeff;

    for _ in 0..64 {
        let a = CostBreakdown::new(
            u64::from(rng.gen::<u16>() % 512),
            u64::from(rng.gen::<u16>() % 512),
        );
        let b = CostBreakdown::new(
            u64::from(rng.gen::<u16>() % 512),
            u64::from(rng.gen::<u16>() % 512),
        );
        let gap = true_cost(a, e_transition, e_zero) - true_cost(b, e_transition, e_zero);
        let counts = a.zeros.abs_diff(b.zeros) + a.transitions.abs_diff(b.transitions);
        let tolerance = per_count * counts as f64;
        if gap.abs() <= tolerance {
            continue; // inside the guaranteed resolution bound: no promise
        }
        let qa = a.weighted(&weights);
        let qb = b.weighted(&weights);
        if gap < 0.0 {
            assert!(
                qa <= qb,
                "{context}: true order violated: {a} vs {b}, gap {gap:.3e}, \
                 tolerance {tolerance:.3e}, quantised {qa} vs {qb} under {weights}"
            );
        } else {
            assert!(
                qa >= qb,
                "{context}: true order violated: {a} vs {b}, gap {gap:.3e}, \
                 tolerance {tolerance:.3e}, quantised {qa} vs {qb} under {weights}"
            );
        }
    }
}

#[test]
fn quantised_weights_preserve_cost_ordering_within_the_resolution_bound() {
    let mut rng = StdRng::seed_from_u64(0x0DDB175);
    for round in 0..200 {
        // Energies log-uniform over several decades (femto- to picojoule),
        // including heavily skewed ratios that exercise the ≥ 1 clamp.
        let exp_t = -15.0 + 4.0 * rng.gen::<f64>();
        let exp_z = -15.0 + 4.0 * rng.gen::<f64>();
        let e_transition = 10f64.powf(exp_t);
        let e_zero = 10f64.powf(exp_z);
        let bits = 1 + rng.gen::<u32>() % 8;
        check_ordering(
            &mut rng,
            e_transition,
            e_zero,
            bits,
            &format!("round {round} (et {e_transition:.2e}, ez {e_zero:.2e}, {bits} bits)"),
        );
    }
}

#[test]
fn model_quantised_weights_preserve_ordering_over_random_operating_points() {
    let mut rng = StdRng::seed_from_u64(0xCAC711);
    for round in 0..100 {
        let gbps = 0.5 + 24.0 * rng.gen::<f64>();
        let pf = 0.5 + 9.5 * rng.gen::<f64>();
        let interface = if rng.gen::<bool>() {
            PodInterface::pod135()
        } else {
            PodInterface::pod12()
        };
        let model = InterfaceEnergyModel::new(
            interface,
            Capacitance::from_pf(pf),
            DataRate::from_gbps(gbps).unwrap(),
        );
        let bits = 2 + rng.gen::<u32>() % 7;
        // The model's quantisation is exactly from_energy_ratio on its two
        // per-event energies; assert that identity, then the bound.
        assert_eq!(
            model.quantised_weights(bits),
            CostWeights::from_energy_ratio(
                model.energy_per_transition_j(),
                model.energy_per_zero_j(),
                bits
            )
        );
        check_ordering(
            &mut rng,
            model.energy_per_transition_j(),
            model.energy_per_zero_j(),
            bits,
            &format!("round {round} ({model}, {bits} bits)"),
        );
    }
}

#[test]
fn finer_resolution_tracks_the_true_ratio_more_closely() {
    // Monotone refinement: the quantised β/α ratio at high resolution is
    // at least as close to the true energy ratio as at low resolution.
    let mut rng = StdRng::seed_from_u64(0xF19E);
    for _ in 0..100 {
        let e_transition = 10f64.powf(-14.0 + 3.0 * rng.gen::<f64>());
        let e_zero = 10f64.powf(-14.0 + 3.0 * rng.gen::<f64>());
        let truth = e_zero / e_transition;
        let ratio_of = |bits: u32| {
            let w = CostWeights::from_energy_ratio(e_transition, e_zero, bits).unwrap();
            f64::from(w.beta()) / f64::from(w.alpha())
        };
        let coarse = (ratio_of(2) - truth).abs();
        let fine = (ratio_of(12) - truth).abs();
        assert!(
            fine <= coarse + 1e-12,
            "12-bit error {fine:.3e} exceeds 2-bit error {coarse:.3e} for ratio {truth:.3e}"
        );
    }
}
