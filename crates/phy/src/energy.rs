//! The CACTI-IO derived interface energy model (Eqs. 1–4 of the paper).
//!
//! The paper unifies all load capacitances into a single `cload` and
//! reformulates the CACTI-IO power equations as **energy per activity
//! event**:
//!
//! * Eq. 1 — `E_zero = VDDQ² / (Rpullup + Rpulldown) · 1/f` — the DC
//!   termination energy of keeping one lane low for one unit interval,
//! * Eq. 2 — `E_transition = ½ · VDDQ · Vswing · cload` — the switching
//!   energy of one lane toggle,
//! * Eq. 3 — `Vswing = VDDQ · Rpullup / (Rpullup + Rpulldown)`,
//! * Eq. 4 — `E_burst = n_zeros · E_zero + n_transitions · E_transition`.
//!
//! Because `E_zero` shrinks with the data rate while `E_transition` does
//! not, the best DBI strategy changes with the operating point: DC coding
//! wins at low rates, AC coding at (very) high rates, and the optimal
//! encoder adapts — which is exactly the story of Figs. 7 and 8.

use crate::capacitance::Capacitance;
use crate::datarate::DataRate;
use crate::error::Result;
use crate::pod::PodInterface;
use core::fmt;
use dbi_core::{CostBreakdown, CostWeights};

/// Interface energy model for one POD-signalled lane group.
///
/// ```
/// # fn main() -> Result<(), dbi_phy::PhyError> {
/// use dbi_phy::{Capacitance, DataRate, InterfaceEnergyModel, PodInterface};
///
/// let model = InterfaceEnergyModel::new(
///     PodInterface::pod135(),
///     Capacitance::from_pf(3.0),
///     DataRate::from_gbps(12.0)?,
/// );
/// // At 12 Gbps and 3 pF the two per-event energies are the same order of
/// // magnitude, which is why balanced alpha = beta coefficients work well.
/// let ratio = model.energy_per_transition_j() / model.energy_per_zero_j();
/// assert!(ratio > 0.2 && ratio < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterfaceEnergyModel {
    interface: PodInterface,
    cload: Capacitance,
    data_rate: DataRate,
}

impl InterfaceEnergyModel {
    /// Creates an energy model from an interface, a per-lane load and a
    /// per-pin data rate.
    #[must_use]
    pub const fn new(interface: PodInterface, cload: Capacitance, data_rate: DataRate) -> Self {
        InterfaceEnergyModel {
            interface,
            cload,
            data_rate,
        }
    }

    /// The electrical interface.
    #[must_use]
    pub const fn interface(&self) -> PodInterface {
        self.interface
    }

    /// The per-lane load capacitance.
    #[must_use]
    pub const fn cload(&self) -> Capacitance {
        self.cload
    }

    /// The per-pin data rate.
    #[must_use]
    pub const fn data_rate(&self) -> DataRate {
        self.data_rate
    }

    /// Returns a copy of the model at a different data rate (used by the
    /// Fig. 7/8 sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`crate::PhyError::InvalidDataRate`] for non-positive rates.
    pub fn at_data_rate(&self, gbps: f64) -> Result<Self> {
        Ok(InterfaceEnergyModel {
            interface: self.interface,
            cload: self.cload,
            data_rate: DataRate::from_gbps(gbps)?,
        })
    }

    /// Returns a copy of the model with a different load capacitance (used
    /// by the Fig. 8 sweep).
    #[must_use]
    pub fn with_cload(&self, cload: Capacitance) -> Self {
        InterfaceEnergyModel {
            interface: self.interface,
            cload,
            data_rate: self.data_rate,
        }
    }

    /// Eq. 1: energy of transmitting a single zero for one unit interval,
    /// in joules.
    #[must_use]
    pub fn energy_per_zero_j(&self) -> f64 {
        self.interface.zero_power_w() * self.data_rate.bit_time_s()
    }

    /// Eq. 2: energy of a single lane transition, in joules.
    #[must_use]
    pub fn energy_per_transition_j(&self) -> f64 {
        0.5 * self.interface.vddq_v() * self.interface.swing_v() * self.cload.farads()
    }

    /// Eq. 4: total interface energy of a burst with the given activity
    /// counts, in joules.
    ///
    /// This is the **single entry point** for pricing activity in joules:
    /// the controller, read path and every experiment route their energy
    /// accounting through it (the low-level
    /// [`CostBreakdown::energy`] helper it evaluates is an implementation
    /// detail, cross-checked against this method in this module's tests).
    #[must_use]
    pub fn burst_energy_j(&self, activity: &CostBreakdown) -> f64 {
        activity.energy(self.energy_per_zero_j(), self.energy_per_transition_j())
    }

    /// The AC-cost share α = E_transition / (E_transition + E_zero), i.e.
    /// the x-axis position of this operating point in Figs. 3 and 4.
    #[must_use]
    pub fn ac_cost_share(&self) -> f64 {
        let et = self.energy_per_transition_j();
        let ez = self.energy_per_zero_j();
        et / (et + ez)
    }

    /// Integer cost coefficients quantised from the physical energy ratio,
    /// as the paper's configurable hardware variant would be programmed
    /// (3-bit coefficients by default in Table I).
    ///
    /// # Errors
    ///
    /// Returns [`dbi_core::DbiError::ZeroWeights`] only if both energies are
    /// degenerate, which cannot happen for a validated model.
    pub fn quantised_weights(&self, resolution_bits: u32) -> dbi_core::Result<CostWeights> {
        CostWeights::from_energy_ratio(
            self.energy_per_transition_j(),
            self.energy_per_zero_j(),
            resolution_bits,
        )
    }

    /// The optimal-encoder scheme programmed for this operating point:
    /// `Scheme::Opt` with the energy ratio quantised to `resolution_bits`
    /// (3 in the paper's configurable hardware variant).
    ///
    /// # Errors
    ///
    /// Same conditions as [`InterfaceEnergyModel::quantised_weights`],
    /// which cannot occur for a validated model.
    pub fn encode_scheme(&self, resolution_bits: u32) -> dbi_core::Result<dbi_core::Scheme> {
        Ok(dbi_core::Scheme::Opt(
            self.quantised_weights(resolution_bits)?,
        ))
    }

    /// The ready-to-encode [`EncodePlan`](dbi_core::EncodePlan) for this
    /// operating point, served from the process-wide plan cache — the
    /// one-call route from "SSTL/POD at this data rate" to an encoder the
    /// session layer can hold and swap.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InterfaceEnergyModel::quantised_weights`].
    pub fn encode_plan(
        &self,
        resolution_bits: u32,
    ) -> dbi_core::Result<std::sync::Arc<dbi_core::EncodePlan>> {
        Ok(self.encode_scheme(resolution_bits)?.plan())
    }

    /// The data rate at which one zero and one transition cost the same
    /// energy, in Gbps. Around this operating point the fixed α = β = 1
    /// coefficients of the paper's hardware-friendly encoder are exact.
    #[must_use]
    pub fn break_even_gbps(&self) -> f64 {
        // E_zero(f) = E_transition  =>  P_zero / f = E_transition.
        self.interface.zero_power_w() / self.energy_per_transition_j() / 1e9
    }
}

impl fmt::Display for InterfaceEnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} with {}",
            self.interface, self.data_rate, self.cload
        )
    }
}

/// Convenience: the Fig. 7 operating point (POD135, 3 pF) at a given rate.
///
/// # Errors
///
/// Returns [`crate::PhyError::InvalidDataRate`] for non-positive rates.
pub fn fig7_operating_point(gbps: f64) -> Result<InterfaceEnergyModel> {
    Ok(InterfaceEnergyModel::new(
        PodInterface::pod135(),
        Capacitance::from_pf(3.0),
        DataRate::from_gbps(gbps)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(gbps: f64, pf: f64) -> InterfaceEnergyModel {
        InterfaceEnergyModel::new(
            PodInterface::pod135(),
            Capacitance::from_pf(pf),
            DataRate::from_gbps(gbps).unwrap(),
        )
    }

    #[test]
    fn eq1_energy_per_zero_scales_inversely_with_data_rate() {
        let slow = model(1.0, 3.0);
        let fast = model(10.0, 3.0);
        assert!((slow.energy_per_zero_j() / fast.energy_per_zero_j() - 10.0).abs() < 1e-9);
        // Absolute value: 1.35^2/100 W * 1 ns ≈ 18.2 pJ at 1 Gbps.
        assert!((slow.energy_per_zero_j() - 1.35 * 1.35 / 100.0 * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn eq2_energy_per_transition_is_rate_independent() {
        let slow = model(1.0, 3.0);
        let fast = model(20.0, 3.0);
        assert!((slow.energy_per_transition_j() - fast.energy_per_transition_j()).abs() < 1e-20);
        // 0.5 * 1.35 * 0.81 * 3 pF ≈ 1.64 pJ.
        let expected = 0.5 * 1.35 * (1.35 * 0.6) * 3e-12;
        assert!((slow.energy_per_transition_j() - expected).abs() < 1e-18);
    }

    #[test]
    fn eq4_burst_energy_is_linear_in_the_activity() {
        let m = model(12.0, 3.0);
        let a = CostBreakdown::new(10, 5);
        let b = CostBreakdown::new(20, 10);
        assert!((2.0 * m.burst_energy_j(&a) - m.burst_energy_j(&b)).abs() < 1e-18);
        let manual = 10.0 * m.energy_per_zero_j() + 5.0 * m.energy_per_transition_j();
        assert!((m.burst_energy_j(&a) - manual).abs() < 1e-20);
    }

    #[test]
    fn burst_energy_is_the_single_source_of_truth_for_eq4() {
        // The core `CostBreakdown::energy` helper and this model must
        // agree exactly for any activity — callers are routed through
        // `burst_energy_j`, and this pins the two formulations together.
        let mut seed = 0x5EEDu64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 40
        };
        for gbps in [0.5, 1.0, 6.4, 12.0, 20.0] {
            for pf in [1.0, 3.0, 8.0] {
                let m = model(gbps, pf);
                for _ in 0..32 {
                    let activity = CostBreakdown::new(next(), next());
                    let direct = activity.zeros as f64 * m.energy_per_zero_j()
                        + activity.transitions as f64 * m.energy_per_transition_j();
                    let via_model = m.burst_energy_j(&activity);
                    let via_helper =
                        activity.energy(m.energy_per_zero_j(), m.energy_per_transition_j());
                    assert_eq!(via_model, via_helper);
                    assert!((via_model - direct).abs() <= direct.abs() * 1e-15);
                }
            }
        }
    }

    #[test]
    fn encode_plan_carries_the_quantised_weights() {
        let m = model(12.0, 3.0);
        let scheme = m.encode_scheme(3).unwrap();
        assert_eq!(
            scheme,
            dbi_core::Scheme::Opt(m.quantised_weights(3).unwrap())
        );
        let plan = m.encode_plan(3).unwrap();
        assert_eq!(plan.scheme(), scheme);
        assert_eq!(plan.weights(), m.quantised_weights(3).unwrap());
        // Repeated calls share the cached plan.
        assert!(std::sync::Arc::ptr_eq(&plan, &m.encode_plan(3).unwrap()));
    }

    #[test]
    fn ac_cost_share_grows_with_data_rate() {
        let shares: Vec<f64> = [1.0, 4.0, 8.0, 12.0, 16.0, 20.0]
            .iter()
            .map(|&g| model(g, 3.0).ac_cost_share())
            .collect();
        for pair in shares.windows(2) {
            assert!(
                pair[0] < pair[1],
                "AC share must grow with data rate: {shares:?}"
            );
        }
        assert!(
            shares[0] < 0.2,
            "at 1 Gbps the termination energy dominates"
        );
        assert!(shares[5] > 0.5, "at 20 Gbps the switching energy dominates");
    }

    #[test]
    fn break_even_sits_in_the_papers_sweet_spot() {
        // Fig. 7: the biggest gain of the fixed-coefficient encoder is
        // around the low-teens of Gbps for a 3 pF load.
        let m = model(12.0, 3.0);
        let break_even = m.break_even_gbps();
        assert!(
            (8.0..=16.0).contains(&break_even),
            "break-even {break_even} Gbps outside the expected window"
        );
        // And at that rate the quantised ratio is 1:1.
        let at_even = m.at_data_rate(break_even).unwrap();
        let w = at_even.quantised_weights(3).unwrap();
        assert_eq!(w.alpha(), w.beta());
    }

    #[test]
    fn higher_load_moves_the_break_even_down() {
        // Fig. 8: "Higher capacitive load reduces the frequency where the
        // highest reduction of energy is achieved."
        let light = model(12.0, 1.0).break_even_gbps();
        let heavy = model(12.0, 8.0).break_even_gbps();
        assert!(heavy < light);
    }

    #[test]
    fn builders_and_accessors() {
        let m = model(12.0, 3.0);
        assert!((m.data_rate().gbps() - 12.0).abs() < 1e-12);
        assert!((m.cload().picofarads() - 3.0).abs() < 1e-12);
        assert!((m.interface().vddq_v() - 1.35).abs() < 1e-12);
        let m2 = m.at_data_rate(6.0).unwrap();
        assert!((m2.data_rate().gbps() - 6.0).abs() < 1e-12);
        assert!(m.at_data_rate(0.0).is_err());
        let m3 = m.with_cload(Capacitance::from_pf(8.0));
        assert!((m3.cload().picofarads() - 8.0).abs() < 1e-12);
        assert!(m.to_string().contains("Gbps"));
        assert!(fig7_operating_point(14.0).is_ok());
        assert!(fig7_operating_point(-1.0).is_err());
    }

    #[test]
    fn ddr4_pod12_behaves_like_gddr5x_pod135() {
        // "results for DDR4 with POD12 are almost identical": the AC share
        // curves of the two interfaces track each other closely.
        for gbps in [2.0, 6.0, 10.0, 14.0] {
            let gddr = InterfaceEnergyModel::new(
                PodInterface::pod135(),
                Capacitance::from_pf(3.0),
                DataRate::from_gbps(gbps).unwrap(),
            );
            let ddr4 = InterfaceEnergyModel::new(
                PodInterface::pod12(),
                Capacitance::from_pf(3.0),
                DataRate::from_gbps(gbps).unwrap(),
            );
            assert!((gddr.ac_cost_share() - ddr4.ac_cost_share()).abs() < 0.05);
        }
    }
}
