//! Per-pin data rates and the derived timing quantities.

use crate::error::{PhyError, Result};
use core::fmt;

/// A per-pin data rate, stored in gigabits per second.
///
/// GDDR5 runs up to 6–8 Gbps per pin, GDDR5X up to 12 Gbps, and the
/// paper's Figs. 7 and 8 sweep the rate from (almost) 0 to 20 Gbps.
///
/// ```
/// # fn main() -> Result<(), dbi_phy::PhyError> {
/// use dbi_phy::DataRate;
///
/// let rate = DataRate::from_gbps(12.0)?;
/// assert!((rate.bit_time_s() - 83.3e-12).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct DataRate {
    gbps: f64,
}

impl DataRate {
    /// GDDR5 at its common upper speed bin.
    pub const GDDR5_GBPS: f64 = 8.0;
    /// GDDR5X as referenced in the paper ("up to 12 Gbps data rate per pin").
    pub const GDDR5X_GBPS: f64 = 12.0;
    /// DDR4-3200, the fastest standard DDR4 speed bin.
    pub const DDR4_3200_GBPS: f64 = 3.2;

    /// Creates a data rate from gigabits per second.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidDataRate`] when the rate is zero, negative
    /// or not finite.
    pub fn from_gbps(gbps: f64) -> Result<Self> {
        if gbps.is_finite() && gbps > 0.0 {
            Ok(DataRate { gbps })
        } else {
            Err(PhyError::InvalidDataRate(gbps))
        }
    }

    /// The data rate in gigabits per second.
    #[must_use]
    pub const fn gbps(&self) -> f64 {
        self.gbps
    }

    /// The data rate in bits per second.
    #[must_use]
    pub fn bits_per_second(&self) -> f64 {
        self.gbps * 1e9
    }

    /// Duration of one unit interval (one bit time) in seconds.
    #[must_use]
    pub fn bit_time_s(&self) -> f64 {
        1.0 / self.bits_per_second()
    }

    /// Duration of one burst of `burst_len` unit intervals, in seconds.
    #[must_use]
    pub fn burst_time_s(&self, burst_len: usize) -> f64 {
        self.bit_time_s() * burst_len as f64
    }

    /// Clock frequency of an encoder that processes one whole burst of
    /// `burst_len` unit intervals per cycle, in hertz. The paper's encoder
    /// handles 8 bytes per cycle, so 12 Gbps requires 1.5 GHz.
    #[must_use]
    pub fn encoder_clock_hz(&self, burst_len: usize) -> f64 {
        self.bits_per_second() / burst_len as f64
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Gbps", self.gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_positive_rates() {
        assert!(DataRate::from_gbps(0.0).is_err());
        assert!(DataRate::from_gbps(-1.0).is_err());
        assert!(DataRate::from_gbps(f64::NAN).is_err());
        assert!(DataRate::from_gbps(f64::INFINITY).is_err());
    }

    #[test]
    fn unit_conversions() {
        let rate = DataRate::from_gbps(10.0).unwrap();
        assert!((rate.bits_per_second() - 1e10).abs() < 1.0);
        assert!((rate.bit_time_s() - 1e-10).abs() < 1e-16);
        assert!((rate.burst_time_s(8) - 8e-10).abs() < 1e-15);
    }

    #[test]
    fn paper_gddr5x_needs_a_1_5_ghz_encoder() {
        // "Our design encodes 8 bytes per clock cycle, thus a clock frequency
        // of 1.5 GHz is required" for 12 Gbps.
        let rate = DataRate::from_gbps(DataRate::GDDR5X_GBPS).unwrap();
        assert!((rate.encoder_clock_hz(8) - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn display() {
        assert_eq!(DataRate::from_gbps(3.2).unwrap().to_string(), "3.2 Gbps");
    }
}
