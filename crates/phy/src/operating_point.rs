//! Named I/O operating points: an interface class at a data rate, parsed
//! from strings like `sstl15@6.4` or `pod12@3.2`.
//!
//! The paper's break-even analysis (Fig. 7) only makes sense when the
//! (α, β) cost coefficients come from a physical model of the interface at
//! its actual operating point. [`OperatingPoint`] names such a point —
//! [`NamedInterface`] `@` rate in Gbps — and turns it into the encoder
//! configuration directly: [`OperatingPoint::quantised_weights`] quantises
//! the per-event energy ratio into integer coefficients, and
//! [`OperatingPoint::plan`] produces the ready-to-encode
//! [`dbi_core::EncodePlan`]. The `dbi-service` wire protocol carries
//! operating points verbatim (see [`NamedInterface::wire_tag`]), so a
//! client can open a session "for POD-1.2 at 3.2 Gbps" without knowing any
//! coefficient arithmetic.
//!
//! The SSTL point is the interesting degenerate case: a mid-rail
//! terminated line draws the *same* DC current for both logic levels
//! ([`crate::SstlInterface`]), so minimising transmitted zeros saves
//! nothing and the physically justified weighting is pure AC
//! ([`dbi_core::CostWeights::AC_ONLY`]) — the optimal encoder degenerates
//! to DBI AC, exactly as the paper's introduction argues it should.
//!
//! ```
//! use dbi_phy::OperatingPoint;
//!
//! let point: OperatingPoint = "pod12@3.2".parse().unwrap();
//! assert_eq!(point.to_string(), "pod12@3.2");
//! // At 3.2 Gbps the termination (DC) energy dominates: β > α.
//! let weights = point.quantised_weights().unwrap();
//! assert!(weights.beta() > weights.alpha());
//!
//! let sstl: OperatingPoint = "sstl15@6.4".parse().unwrap();
//! assert_eq!(sstl.quantised_weights().unwrap(), dbi_core::CostWeights::AC_ONLY);
//! ```

use crate::capacitance::Capacitance;
use crate::datarate::DataRate;
use crate::energy::InterfaceEnergyModel;
use crate::error::{PhyError, Result};
use crate::pod::PodInterface;
use core::fmt;
use dbi_core::{CostWeights, EncodePlan, Scheme};
use std::sync::Arc;

/// The interface classes an [`OperatingPoint`] can name.
///
/// These are the JEDEC signalling classes the paper discusses: the two POD
/// variants its figures are computed for, plus mid-rail terminated SSTL as
/// the contrast case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NamedInterface {
    /// SSTL-15 (DDR3, 1.5 V, mid-rail terminated).
    Sstl15,
    /// POD-1.2 (DDR4).
    Pod12,
    /// POD-1.35 (GDDR5/GDDR5X).
    Pod135,
}

impl NamedInterface {
    /// Every named interface, in wire-tag order.
    pub const ALL: [NamedInterface; 3] = [
        NamedInterface::Sstl15,
        NamedInterface::Pod12,
        NamedInterface::Pod135,
    ];

    /// The canonical lower-case name used by the string and wire forms.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            NamedInterface::Sstl15 => "sstl15",
            NamedInterface::Pod12 => "pod12",
            NamedInterface::Pod135 => "pod135",
        }
    }

    /// The single-byte tag this interface travels as in the service wire
    /// protocol (version 2). Tag 0 is reserved (no interface).
    #[must_use]
    pub const fn wire_tag(self) -> u8 {
        match self {
            NamedInterface::Sstl15 => 1,
            NamedInterface::Pod12 => 2,
            NamedInterface::Pod135 => 3,
        }
    }

    /// Inverse of [`NamedInterface::wire_tag`].
    #[must_use]
    pub const fn from_wire_tag(tag: u8) -> Option<NamedInterface> {
        match tag {
            1 => Some(NamedInterface::Sstl15),
            2 => Some(NamedInterface::Pod12),
            3 => Some(NamedInterface::Pod135),
            _ => None,
        }
    }

    fn from_name(name: &str) -> Option<NamedInterface> {
        Self::ALL.into_iter().find(|i| i.name() == name)
    }
}

impl fmt::Display for NamedInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named interface at a per-pin data rate — the paper's notion of an
/// operating point, as a parseable, wire-transportable value.
///
/// The rate is stored in whole megabits per second so the string form
/// (`pod12@3.2`), the wire form and the parsed value are all exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperatingPoint {
    interface: NamedInterface,
    rate_mbps: u32,
}

impl OperatingPoint {
    /// Load capacitance assumed for named operating points: the 3 pF the
    /// paper's Fig. 7 sweep uses.
    pub const DEFAULT_CLOAD_PF: f64 = 3.0;

    /// Coefficient resolution used when quantising a named point's energy
    /// ratio: the 3-bit coefficients of the paper's configurable hardware
    /// variant (Table I).
    pub const DEFAULT_RESOLUTION_BITS: u32 = 3;

    /// Creates an operating point from an interface and a rate in whole
    /// megabits per second.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidDataRate`] when `rate_mbps` is zero.
    pub fn new(interface: NamedInterface, rate_mbps: u32) -> Result<OperatingPoint> {
        if rate_mbps == 0 {
            return Err(PhyError::InvalidDataRate(0.0));
        }
        Ok(OperatingPoint {
            interface,
            rate_mbps,
        })
    }

    /// The interface class.
    #[must_use]
    pub const fn interface(&self) -> NamedInterface {
        self.interface
    }

    /// The per-pin data rate in megabits per second (exact).
    #[must_use]
    pub const fn rate_mbps(&self) -> u32 {
        self.rate_mbps
    }

    /// The per-pin data rate in gigabits per second.
    #[must_use]
    pub fn gbps(&self) -> f64 {
        f64::from(self.rate_mbps) / 1000.0
    }

    /// The CACTI-IO energy model at this point, for the POD interfaces
    /// (with the default 3 pF load). `None` for SSTL: a mid-rail
    /// terminated line has no zero/one DC asymmetry for the model's Eq. 1
    /// to price.
    #[must_use]
    pub fn energy_model(&self) -> Option<InterfaceEnergyModel> {
        let pod = match self.interface {
            NamedInterface::Sstl15 => return None,
            NamedInterface::Pod12 => PodInterface::pod12(),
            NamedInterface::Pod135 => PodInterface::pod135(),
        };
        Some(InterfaceEnergyModel::new(
            pod,
            Capacitance::from_pf(Self::DEFAULT_CLOAD_PF),
            DataRate::from_gbps(self.gbps()).expect("rate_mbps is validated non-zero"),
        ))
    }

    /// The integer cost coefficients this point programs into the encoder:
    /// for POD, the physical energy ratio quantised to
    /// [`OperatingPoint::DEFAULT_RESOLUTION_BITS`]; for SSTL, pure AC
    /// weighting (zeros carry no reducible DC cost on a mid-rail
    /// terminated line).
    ///
    /// # Errors
    ///
    /// Propagates [`dbi_core::DbiError`] from the quantisation, which
    /// cannot fail for a validated model.
    pub fn quantised_weights(&self) -> dbi_core::Result<CostWeights> {
        match self.energy_model() {
            Some(model) => model.quantised_weights(Self::DEFAULT_RESOLUTION_BITS),
            None => Ok(CostWeights::AC_ONLY),
        }
    }

    /// The optimal-encoder scheme programmed for this point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OperatingPoint::quantised_weights`].
    pub fn scheme(&self) -> dbi_core::Result<Scheme> {
        Ok(Scheme::Opt(self.quantised_weights()?))
    }

    /// The ready-to-encode plan for this point, served from the
    /// process-wide plan cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OperatingPoint::quantised_weights`].
    pub fn plan(&self) -> dbi_core::Result<Arc<EncodePlan>> {
        Ok(self.scheme()?.plan())
    }
}

impl fmt::Display for OperatingPoint {
    /// The canonical `interface@gbps` form, e.g. `pod12@3.2`. Whole-Gbps
    /// rates print without a fractional part (`pod135@12`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.rate_mbps / 1000;
        let frac = self.rate_mbps % 1000;
        if frac == 0 {
            write!(f, "{}@{whole}", self.interface)
        } else {
            // The fraction is a fixed three decimal places; strip only
            // *trailing* zeros so leading ones survive (1023 Mbps must
            // print as `1.023`, not `1.23`).
            let mut frac = frac;
            let mut places = 3usize;
            while frac.is_multiple_of(10) {
                frac /= 10;
                places -= 1;
            }
            write!(f, "{}@{whole}.{frac:0places$}", self.interface)
        }
    }
}

impl core::str::FromStr for OperatingPoint {
    type Err = PhyError;

    /// Parses the `interface@gbps` form, case-insensitively:
    /// `sstl15@6.4`, `pod12@3.2`, `POD135@12`. The rate must be positive
    /// and is kept to megabit precision.
    fn from_str(s: &str) -> Result<OperatingPoint> {
        let trimmed = s.trim();
        let invalid = || PhyError::InvalidParameter {
            name: "operating_point",
            value: f64::NAN,
        };
        let (interface, rate) = trimmed.split_once('@').ok_or_else(invalid)?;
        let interface = NamedInterface::from_name(&interface.trim().to_ascii_lowercase())
            .ok_or_else(invalid)?;
        let gbps: f64 = rate.trim().parse().map_err(|_| invalid())?;
        if !gbps.is_finite() || gbps <= 0.0 || gbps > 4_000_000.0 {
            return Err(PhyError::InvalidDataRate(gbps));
        }
        let rate_mbps = (gbps * 1000.0).round() as u32;
        OperatingPoint::new(interface, rate_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for text in [
            "sstl15@6.4",
            "pod12@3.2",
            "pod135@12",
            "pod135@0.75",
            "pod12@1.023",
            "pod12@1.005",
            "pod12@0.005",
        ] {
            let point: OperatingPoint = text.parse().unwrap();
            assert_eq!(point.to_string(), text, "{text}");
            let again: OperatingPoint = point.to_string().parse().unwrap();
            assert_eq!(again, point);
        }
        // Display→parse is exact for *every* representable rate in the
        // low range, including ones with leading zeros in the fraction.
        for rate_mbps in 1..2050u32 {
            let point = OperatingPoint::new(NamedInterface::Pod12, rate_mbps).unwrap();
            let again: OperatingPoint = point.to_string().parse().unwrap();
            assert_eq!(again, point, "rate {rate_mbps} Mbps: {point}");
        }
        let upper: OperatingPoint = " POD12@3.2 ".parse().unwrap();
        assert_eq!(upper.interface(), NamedInterface::Pod12);
        assert_eq!(upper.rate_mbps(), 3200);
        assert!((upper.gbps() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn bad_spellings_are_rejected() {
        for bad in [
            "", "pod12", "pod12@", "pod12@x", "lvds@3.2", "pod12@0", "pod12@-1",
        ] {
            assert!(bad.parse::<OperatingPoint>().is_err(), "{bad:?}");
        }
        assert!(OperatingPoint::new(NamedInterface::Pod12, 0).is_err());
    }

    #[test]
    fn wire_tags_roundtrip() {
        for interface in NamedInterface::ALL {
            assert_eq!(
                NamedInterface::from_wire_tag(interface.wire_tag()),
                Some(interface)
            );
        }
        assert_eq!(NamedInterface::from_wire_tag(0), None);
        assert_eq!(NamedInterface::from_wire_tag(200), None);
    }

    #[test]
    fn pod_points_quantise_from_the_energy_model() {
        let slow: OperatingPoint = "pod135@3.2".parse().unwrap();
        let fast: OperatingPoint = "pod135@20".parse().unwrap();
        let model = slow.energy_model().unwrap();
        assert_eq!(
            slow.quantised_weights().unwrap(),
            model
                .quantised_weights(OperatingPoint::DEFAULT_RESOLUTION_BITS)
                .unwrap()
        );
        // Slow: DC dominates (β > α); fast: AC dominates (α > β).
        let sw = slow.quantised_weights().unwrap();
        let fw = fast.quantised_weights().unwrap();
        assert!(sw.beta() > sw.alpha(), "{sw}");
        assert!(fw.alpha() > fw.beta(), "{fw}");
    }

    #[test]
    fn sstl_degenerates_to_pure_ac() {
        let point: OperatingPoint = "sstl15@6.4".parse().unwrap();
        assert!(point.energy_model().is_none());
        assert_eq!(point.quantised_weights().unwrap(), CostWeights::AC_ONLY);
        assert_eq!(point.scheme().unwrap(), Scheme::Opt(CostWeights::AC_ONLY));
    }

    #[test]
    fn plans_are_cached_per_point() {
        let point: OperatingPoint = "pod12@3.2".parse().unwrap();
        let a = point.plan().unwrap();
        let b = point.plan().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.scheme(), point.scheme().unwrap());
    }
}
