//! Error types for the `dbi-phy` crate.

use core::fmt;

/// Errors returned by the electrical-model constructors.
///
/// All physical quantities are validated at construction time so the energy
/// equations never see zero or negative resistances, voltages, capacitances
/// or data rates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhyError {
    /// A physical parameter was zero, negative, NaN or infinite.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"vddq"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A data rate of zero or below was supplied.
    InvalidDataRate(f64),
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} must be positive and finite, got {value}"
                )
            }
            PhyError::InvalidDataRate(rate) => {
                write!(f, "data rate must be positive and finite, got {rate} Gbps")
            }
        }
    }
}

impl std::error::Error for PhyError {}

/// Convenience alias used throughout the crate.
pub type Result<T, E = PhyError> = core::result::Result<T, E>;

/// Validates that a physical parameter is positive and finite.
pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(PhyError::InvalidParameter { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_positive_accepts_positive_finite_values() {
        assert_eq!(check_positive("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn check_positive_rejects_bad_values() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                check_positive("x", bad).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn display_messages() {
        let err = PhyError::InvalidParameter {
            name: "vddq",
            value: -1.0,
        };
        assert!(err.to_string().contains("vddq"));
        let err = PhyError::InvalidDataRate(0.0);
        assert!(err.to_string().contains("data rate"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<PhyError>();
    }
}
