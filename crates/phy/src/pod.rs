//! Pseudo open drain (POD) interface model.
//!
//! GDDR5/GDDR5X and DDR4 use POD signalling: the receiver terminates the
//! line to VDDQ through an on-die termination resistor, and the transmitter
//! pulls the line low through its output driver to signal a zero. DC
//! current therefore flows **only while a zero is on the wire**, which is
//! what makes zero-minimising DBI coding worthwhile in the first place
//! (Fig. 1 of the paper).

use crate::error::{check_positive, Result};
use core::fmt;

/// Electrical parameters of a POD I/O interface.
///
/// The three presets match the JEDEC classes referenced in the paper:
/// [`PodInterface::pod135`] (GDDR5/GDDR5X), [`PodInterface::pod12`] (DDR4)
/// and [`PodInterface::pod15`] (the original POD15 definition). The default
/// resistor split — 60 Ω on-die termination pull-up against a 40 Ω driver
/// pull-down — is typical for GDDR5-class interfaces; the paper does not
/// fix the split, and the figures depend only on the resulting
/// zero-energy / transition-energy ratio.
///
/// ```
/// use dbi_phy::PodInterface;
///
/// let pod = PodInterface::pod135();
/// assert!((pod.vddq_v() - 1.35).abs() < 1e-12);
/// // Output-low level sits at the resistive divider between driver and ODT.
/// assert!(pod.output_low_v() < pod.vddq_v());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodInterface {
    vddq_v: f64,
    r_pullup_ohm: f64,
    r_pulldown_ohm: f64,
}

impl PodInterface {
    /// Default on-die termination (pull-up to VDDQ) resistance in ohms.
    pub const DEFAULT_R_PULLUP_OHM: f64 = 60.0;
    /// Default driver pull-down resistance in ohms.
    pub const DEFAULT_R_PULLDOWN_OHM: f64 = 40.0;

    /// Creates a POD interface from explicit electrical parameters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PhyError::InvalidParameter`] when any value is zero,
    /// negative or not finite.
    pub fn new(vddq_v: f64, r_pullup_ohm: f64, r_pulldown_ohm: f64) -> Result<Self> {
        Ok(PodInterface {
            vddq_v: check_positive("vddq", vddq_v)?,
            r_pullup_ohm: check_positive("r_pullup", r_pullup_ohm)?,
            r_pulldown_ohm: check_positive("r_pulldown", r_pulldown_ohm)?,
        })
    }

    /// POD135 (VDDQ = 1.35 V) as used by GDDR5 and GDDR5X — the interface
    /// Figs. 7 and 8 of the paper are computed for.
    #[must_use]
    pub fn pod135() -> Self {
        PodInterface {
            vddq_v: 1.35,
            r_pullup_ohm: Self::DEFAULT_R_PULLUP_OHM,
            r_pulldown_ohm: Self::DEFAULT_R_PULLDOWN_OHM,
        }
    }

    /// POD12 (VDDQ = 1.2 V) as used by DDR4. The paper notes the DDR4
    /// results are "almost identical" to the GDDR5X ones.
    #[must_use]
    pub fn pod12() -> Self {
        PodInterface {
            vddq_v: 1.2,
            r_pullup_ohm: Self::DEFAULT_R_PULLUP_OHM,
            r_pulldown_ohm: Self::DEFAULT_R_PULLDOWN_OHM,
        }
    }

    /// POD15 (VDDQ = 1.5 V), the original JEDEC POD definition (JESD8-20A).
    #[must_use]
    pub fn pod15() -> Self {
        PodInterface {
            vddq_v: 1.5,
            r_pullup_ohm: Self::DEFAULT_R_PULLUP_OHM,
            r_pulldown_ohm: Self::DEFAULT_R_PULLDOWN_OHM,
        }
    }

    /// Returns a copy with a different resistor split, keeping VDDQ.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PhyError::InvalidParameter`] for non-positive values.
    pub fn with_resistors(&self, r_pullup_ohm: f64, r_pulldown_ohm: f64) -> Result<Self> {
        PodInterface::new(self.vddq_v, r_pullup_ohm, r_pulldown_ohm)
    }

    /// I/O supply voltage in volts.
    #[must_use]
    pub const fn vddq_v(&self) -> f64 {
        self.vddq_v
    }

    /// Termination (pull-up) resistance in ohms.
    #[must_use]
    pub const fn r_pullup_ohm(&self) -> f64 {
        self.r_pullup_ohm
    }

    /// Driver (pull-down) resistance in ohms.
    #[must_use]
    pub const fn r_pulldown_ohm(&self) -> f64 {
        self.r_pulldown_ohm
    }

    /// Total resistance of the DC path while a zero is transmitted.
    #[must_use]
    pub fn series_resistance_ohm(&self) -> f64 {
        self.r_pullup_ohm + self.r_pulldown_ohm
    }

    /// Signal swing per Eq. 3 of the paper:
    /// `Vswing = VDDQ · Rpullup / (Rpullup + Rpulldown)`.
    #[must_use]
    pub fn swing_v(&self) -> f64 {
        self.vddq_v * self.r_pullup_ohm / self.series_resistance_ohm()
    }

    /// Output-low voltage: the level the line settles to while a zero is
    /// driven (the resistive divider between driver and termination).
    #[must_use]
    pub fn output_low_v(&self) -> f64 {
        self.vddq_v - self.swing_v()
    }

    /// DC power drawn from VDDQ while one lane transmits a zero, in watts:
    /// `VDDQ² / (Rpullup + Rpulldown)`.
    #[must_use]
    pub fn zero_power_w(&self) -> f64 {
        self.vddq_v * self.vddq_v / self.series_resistance_ohm()
    }
}

impl fmt::Display for PodInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "POD {:.2} V (pull-up {:.0} Ω, pull-down {:.0} Ω)",
            self.vddq_v, self.r_pullup_ohm, self.r_pulldown_ohm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_the_jedec_voltages() {
        assert!((PodInterface::pod135().vddq_v() - 1.35).abs() < 1e-12);
        assert!((PodInterface::pod12().vddq_v() - 1.2).abs() < 1e-12);
        assert!((PodInterface::pod15().vddq_v() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn new_rejects_non_positive_parameters() {
        assert!(PodInterface::new(0.0, 60.0, 40.0).is_err());
        assert!(PodInterface::new(1.35, -60.0, 40.0).is_err());
        assert!(PodInterface::new(1.35, 60.0, f64::NAN).is_err());
    }

    #[test]
    fn swing_follows_eq3() {
        let pod = PodInterface::new(1.35, 60.0, 40.0).unwrap();
        assert!((pod.swing_v() - 1.35 * 0.6).abs() < 1e-12);
        assert!((pod.output_low_v() - 1.35 * 0.4).abs() < 1e-12);
        assert!((pod.series_resistance_ohm() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_power_matches_ohms_law() {
        let pod = PodInterface::new(1.2, 60.0, 40.0).unwrap();
        assert!((pod.zero_power_w() - 1.2 * 1.2 / 100.0).abs() < 1e-15);
    }

    #[test]
    fn with_resistors_changes_only_the_split() {
        let pod = PodInterface::pod135().with_resistors(50.0, 50.0).unwrap();
        assert!((pod.vddq_v() - 1.35).abs() < 1e-12);
        assert!((pod.swing_v() - 0.675).abs() < 1e-12);
        assert!(PodInterface::pod135().with_resistors(0.0, 50.0).is_err());
    }

    #[test]
    fn display_mentions_the_voltage() {
        assert!(PodInterface::pod135().to_string().contains("1.35"));
    }
}
