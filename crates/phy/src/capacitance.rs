//! Load-capacitance budgets for the memory interconnect.
//!
//! Section IV-A of the paper folds every contribution to the line load into
//! a single capacitance `cload`: the driver's effective output capacitance,
//! the input capacitance of each memory device hanging on the DQ line, the
//! trace connecting controller and memory, and — where present — the DIMM
//! socket. The figures sweep the total from 1 pF to 8 pF.

use crate::error::{PhyError, Result};
use core::fmt;
use core::ops::Add;

/// Conversion helper: picofarads to farads.
const PF: f64 = 1e-12;

/// A capacitance value stored in farads.
///
/// ```
/// use dbi_phy::Capacitance;
///
/// let c = Capacitance::from_pf(3.0);
/// assert!((c.farads() - 3e-12).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Capacitance {
    farads: f64,
}

impl Capacitance {
    /// Zero capacitance.
    pub const ZERO: Capacitance = Capacitance { farads: 0.0 };

    /// Creates a capacitance from picofarads. Negative, NaN and infinite
    /// inputs are clamped to zero rather than rejected, because budgets are
    /// built additively from component estimates and a missing component is
    /// simply absent.
    #[must_use]
    pub fn from_pf(pf: f64) -> Self {
        if pf.is_finite() && pf > 0.0 {
            Capacitance { farads: pf * PF }
        } else {
            Capacitance::ZERO
        }
    }

    /// Creates a capacitance from farads, with the same clamping behaviour
    /// as [`Capacitance::from_pf`].
    #[must_use]
    pub fn from_farads(farads: f64) -> Self {
        if farads.is_finite() && farads > 0.0 {
            Capacitance { farads }
        } else {
            Capacitance::ZERO
        }
    }

    /// The value in farads.
    #[must_use]
    pub const fn farads(&self) -> f64 {
        self.farads
    }

    /// The value in picofarads.
    #[must_use]
    pub fn picofarads(&self) -> f64 {
        self.farads / PF
    }
}

impl Add for Capacitance {
    type Output = Capacitance;

    fn add(self, rhs: Capacitance) -> Capacitance {
        Capacitance {
            farads: self.farads + rhs.farads,
        }
    }
}

impl core::iter::Sum for Capacitance {
    fn sum<I: Iterator<Item = Capacitance>>(iter: I) -> Self {
        iter.fold(Capacitance::ZERO, Add::add)
    }
}

impl fmt::Display for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} pF", self.picofarads())
    }
}

/// An itemised per-lane load budget, mirroring the contributions listed in
/// Section IV-A of the paper.
///
/// ```
/// # fn main() -> Result<(), dbi_phy::PhyError> {
/// use dbi_phy::LoadBudget;
///
/// // The CACTI-IO style DDR4 point-to-point budget: 2 pF driver + 1 pF device.
/// let budget = LoadBudget::builder()
///     .driver_pf(2.0)
///     .devices(1, 1.0)
///     .trace_pf(0.5)
///     .build()?;
/// assert!((budget.total().picofarads() - 3.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBudget {
    driver: Capacitance,
    devices: Capacitance,
    trace: Capacitance,
    socket: Capacitance,
}

impl LoadBudget {
    /// Starts building a budget.
    #[must_use]
    pub fn builder() -> LoadBudgetBuilder {
        LoadBudgetBuilder::default()
    }

    /// A flat budget consisting of a single lumped capacitance, as used by
    /// the paper's 1–8 pF sweep.
    #[must_use]
    pub fn lumped(total: Capacitance) -> Self {
        LoadBudget {
            driver: total,
            devices: Capacitance::ZERO,
            trace: Capacitance::ZERO,
            socket: Capacitance::ZERO,
        }
    }

    /// A GDDR5/GDDR5X-style point-to-point budget: 1.3 pF driver
    /// (Amirkhany et al.), one 1.3 pF device input, a short 0.4 pF trace and
    /// no socket. Total ≈ 3 pF, the load Fig. 7 uses.
    #[must_use]
    pub fn gddr5_point_to_point() -> Self {
        LoadBudget {
            driver: Capacitance::from_pf(1.3),
            devices: Capacitance::from_pf(1.3),
            trace: Capacitance::from_pf(0.4),
            socket: Capacitance::ZERO,
        }
    }

    /// A DDR4 DIMM-based budget: 2 pF driver (CACTI-IO), one 1.3 pF device,
    /// 1.5 pF of PCB trace and 1 pF for the DIMM socket.
    #[must_use]
    pub fn ddr4_dimm() -> Self {
        LoadBudget {
            driver: Capacitance::from_pf(2.0),
            devices: Capacitance::from_pf(1.3),
            trace: Capacitance::from_pf(1.5),
            socket: Capacitance::from_pf(1.0),
        }
    }

    /// Driver output capacitance.
    #[must_use]
    pub const fn driver(&self) -> Capacitance {
        self.driver
    }

    /// Total input capacitance of all memory devices on the lane.
    #[must_use]
    pub const fn devices(&self) -> Capacitance {
        self.devices
    }

    /// Transmission-line (PCB trace / package) capacitance.
    #[must_use]
    pub const fn trace(&self) -> Capacitance {
        self.trace
    }

    /// Socket / connector capacitance (zero for soldered-down memory).
    #[must_use]
    pub const fn socket(&self) -> Capacitance {
        self.socket
    }

    /// Total per-lane load — the `cload` of Eq. 2.
    #[must_use]
    pub fn total(&self) -> Capacitance {
        self.driver + self.devices + self.trace + self.socket
    }
}

impl fmt::Display for LoadBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "load {} (driver {}, devices {}, trace {}, socket {})",
            self.total(),
            self.driver,
            self.devices,
            self.trace,
            self.socket
        )
    }
}

/// Builder for [`LoadBudget`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadBudgetBuilder {
    driver_pf: f64,
    device_count: u32,
    device_pf: f64,
    trace_pf: f64,
    socket_pf: f64,
}

impl LoadBudgetBuilder {
    /// Sets the driver output capacitance in picofarads.
    #[must_use]
    pub fn driver_pf(mut self, pf: f64) -> Self {
        self.driver_pf = pf;
        self
    }

    /// Sets the number of memory devices on the lane and the input
    /// capacitance of each, in picofarads.
    #[must_use]
    pub fn devices(mut self, count: u32, pf_each: f64) -> Self {
        self.device_count = count;
        self.device_pf = pf_each;
        self
    }

    /// Sets the trace capacitance in picofarads.
    #[must_use]
    pub fn trace_pf(mut self, pf: f64) -> Self {
        self.trace_pf = pf;
        self
    }

    /// Sets the socket/connector capacitance in picofarads.
    #[must_use]
    pub fn socket_pf(mut self, pf: f64) -> Self {
        self.socket_pf = pf;
        self
    }

    /// Builds the budget.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] when the resulting total is
    /// zero — an interconnect with no load at all cannot be simulated
    /// meaningfully.
    pub fn build(self) -> Result<LoadBudget> {
        let budget = LoadBudget {
            driver: Capacitance::from_pf(self.driver_pf),
            devices: Capacitance::from_pf(self.device_pf * f64::from(self.device_count)),
            trace: Capacitance::from_pf(self.trace_pf),
            socket: Capacitance::from_pf(self.socket_pf),
        };
        if budget.total().farads() <= 0.0 {
            return Err(PhyError::InvalidParameter {
                name: "load budget total",
                value: budget.total().farads(),
            });
        }
        Ok(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_conversions_and_clamping() {
        assert!((Capacitance::from_pf(2.5).farads() - 2.5e-12).abs() < 1e-20);
        assert!((Capacitance::from_farads(1e-12).picofarads() - 1.0).abs() < 1e-12);
        assert_eq!(Capacitance::from_pf(-1.0), Capacitance::ZERO);
        assert_eq!(Capacitance::from_pf(f64::NAN), Capacitance::ZERO);
        assert_eq!(Capacitance::from_farads(-1.0), Capacitance::ZERO);
    }

    #[test]
    fn capacitance_arithmetic() {
        let total: Capacitance = [Capacitance::from_pf(1.0), Capacitance::from_pf(2.0)]
            .into_iter()
            .sum();
        assert!((total.picofarads() - 3.0).abs() < 1e-12);
        assert_eq!(Capacitance::from_pf(1.0).to_string(), "1.00 pF");
    }

    #[test]
    fn builder_accumulates_components() {
        let budget = LoadBudget::builder()
            .driver_pf(2.0)
            .devices(2, 1.0)
            .trace_pf(1.0)
            .socket_pf(0.5)
            .build()
            .unwrap();
        assert!((budget.total().picofarads() - 5.5).abs() < 1e-9);
        assert!((budget.devices().picofarads() - 2.0).abs() < 1e-9);
        assert!((budget.driver().picofarads() - 2.0).abs() < 1e-9);
        assert!((budget.trace().picofarads() - 1.0).abs() < 1e-9);
        assert!((budget.socket().picofarads() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_an_empty_budget() {
        assert!(LoadBudget::builder().build().is_err());
    }

    #[test]
    fn presets_are_in_the_papers_range() {
        // The paper sweeps 1 pF to 8 pF; the presets must land inside that.
        for budget in [LoadBudget::gddr5_point_to_point(), LoadBudget::ddr4_dimm()] {
            let pf = budget.total().picofarads();
            assert!(
                (1.0..=8.0).contains(&pf),
                "preset total {pf} pF out of range"
            );
        }
        // Fig. 7 uses 3 pF; the GDDR5 preset is the closest physical story.
        assert!((LoadBudget::gddr5_point_to_point().total().picofarads() - 3.0).abs() < 0.11);
    }

    #[test]
    fn lumped_budget_puts_everything_in_one_component() {
        let budget = LoadBudget::lumped(Capacitance::from_pf(4.0));
        assert!((budget.total().picofarads() - 4.0).abs() < 1e-9);
        assert!(budget.to_string().contains("4.00 pF"));
    }
}
