//! # dbi-phy
//!
//! Electrical and energy model of the DRAM data-bus interface used by
//! *"Optimal DC/AC Data Bus Inversion Coding"* (DATE 2018).
//!
//! The crate models the pseudo-open-drain (POD) signalling of
//! GDDR5/GDDR5X/DDR4 ([`PodInterface`]), the per-lane load-capacitance
//! budget ([`LoadBudget`]), per-pin data rates ([`DataRate`]) and the
//! CACTI-IO derived per-event energy equations
//! ([`InterfaceEnergyModel`], Eqs. 1–4 of the paper). An SSTL model
//! ([`SstlInterface`]) is included for contrast: mid-rail terminated
//! interfaces draw DC current for both logic levels, which is why
//! zero-minimising DBI only pays off with POD termination.
//!
//! ```
//! # fn main() -> Result<(), dbi_phy::PhyError> {
//! use dbi_core::{Burst, BusState, DbiEncoder, Scheme};
//! use dbi_phy::{Capacitance, DataRate, InterfaceEnergyModel, PodInterface};
//!
//! let model = InterfaceEnergyModel::new(
//!     PodInterface::pod135(),
//!     Capacitance::from_pf(3.0),
//!     DataRate::from_gbps(14.0)?,
//! );
//! let burst = Burst::paper_example();
//! let state = BusState::idle();
//! let raw = Scheme::Raw.encode(&burst, &state).breakdown(&state);
//! let opt = Scheme::OptFixed.encode(&burst, &state).breakdown(&state);
//! assert!(model.burst_energy_j(&opt) < model.burst_energy_j(&raw));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod capacitance;
pub mod datarate;
pub mod energy;
pub mod error;
pub mod operating_point;
pub mod pod;
pub mod sstl;

pub use capacitance::{Capacitance, LoadBudget, LoadBudgetBuilder};
pub use datarate::DataRate;
pub use energy::{fig7_operating_point, InterfaceEnergyModel};
pub use error::{PhyError, Result};
pub use operating_point::{NamedInterface, OperatingPoint};
pub use pod::PodInterface;
pub use sstl::SstlInterface;

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::{Burst, BusState, DbiEncoder, Scheme};

    #[test]
    fn energy_ordering_matches_fig7_at_high_rate() {
        // Around 14 Gbps with 3 pF, OPT(Fixed) should beat both DC and AC,
        // and all encoded schemes should beat RAW.
        let model = fig7_operating_point(14.0).unwrap();
        let burst = Burst::paper_example();
        let state = BusState::idle();
        let energy =
            |scheme: Scheme| model.burst_energy_j(&scheme.encode(&burst, &state).breakdown(&state));
        let raw = energy(Scheme::Raw);
        let dc = energy(Scheme::Dc);
        let ac = energy(Scheme::Ac);
        let opt = energy(Scheme::OptFixed);
        assert!(opt <= dc);
        assert!(opt <= ac);
        assert!(opt < raw);
    }

    #[test]
    fn low_rate_favours_dc_high_rate_favours_ac() {
        let burst = Burst::paper_example();
        let state = BusState::idle();
        let dc = Scheme::Dc.encode(&burst, &state).breakdown(&state);
        let ac = Scheme::Ac.encode(&burst, &state).breakdown(&state);
        let slow = fig7_operating_point(1.0).unwrap();
        let fast = fig7_operating_point(20.0).unwrap();
        assert!(slow.burst_energy_j(&dc) < slow.burst_energy_j(&ac));
        assert!(fast.burst_energy_j(&ac) < fast.burst_energy_j(&dc));
    }
}
