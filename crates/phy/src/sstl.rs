//! Stub-series terminated logic (SSTL) interface model, for contrast.
//!
//! Pre-DDR4 memories (DDR2/DDR3) use SSTL signalling terminated to the
//! mid-rail voltage 0.5·VDDQ. In a terminated SSTL link DC current flows
//! regardless of the transmitted value — only the direction of the current
//! changes — so zero-minimising DBI coding does not reduce termination
//! power there. This module exists to make that asymmetry concrete and
//! testable; the paper's introduction uses it to motivate why POD + DBI is
//! the interesting combination.

use crate::error::{check_positive, Result};
use core::fmt;

/// Electrical parameters of a mid-rail terminated SSTL interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SstlInterface {
    vddq_v: f64,
    r_termination_ohm: f64,
    r_driver_ohm: f64,
}

impl SstlInterface {
    /// SSTL-15 (DDR3, VDDQ = 1.5 V) with typical 60 Ω ODT and 40 Ω driver.
    #[must_use]
    pub fn sstl15() -> Self {
        SstlInterface {
            vddq_v: 1.5,
            r_termination_ohm: 60.0,
            r_driver_ohm: 40.0,
        }
    }

    /// Creates an SSTL interface from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PhyError::InvalidParameter`] for non-positive values.
    pub fn new(vddq_v: f64, r_termination_ohm: f64, r_driver_ohm: f64) -> Result<Self> {
        Ok(SstlInterface {
            vddq_v: check_positive("vddq", vddq_v)?,
            r_termination_ohm: check_positive("r_termination", r_termination_ohm)?,
            r_driver_ohm: check_positive("r_driver", r_driver_ohm)?,
        })
    }

    /// I/O supply voltage in volts.
    #[must_use]
    pub const fn vddq_v(&self) -> f64 {
        self.vddq_v
    }

    /// DC power drawn while transmitting a **zero**, in watts. The line is
    /// pulled below the mid-rail termination voltage, so current flows from
    /// the termination supply into the driver.
    #[must_use]
    pub fn zero_power_w(&self) -> f64 {
        self.level_power_w()
    }

    /// DC power drawn while transmitting a **one**, in watts. The line is
    /// pulled above the termination voltage, so current flows in the other
    /// direction — but its magnitude is the same. This is the key contrast
    /// with POD, where transmitting a one draws no DC current at all.
    #[must_use]
    pub fn one_power_w(&self) -> f64 {
        self.level_power_w()
    }

    fn level_power_w(&self) -> f64 {
        // The line is driven 0.5·VDDQ away from the termination voltage
        // through the series combination of driver and termination.
        let half = 0.5 * self.vddq_v;
        half * half / (self.r_termination_ohm + self.r_driver_ohm)
    }
}

impl fmt::Display for SstlInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SSTL {:.2} V (mid-rail terminated)", self.vddq_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::PodInterface;

    #[test]
    fn sstl_draws_current_for_both_levels() {
        let sstl = SstlInterface::sstl15();
        assert!(sstl.zero_power_w() > 0.0);
        assert!((sstl.zero_power_w() - sstl.one_power_w()).abs() < 1e-15);
    }

    #[test]
    fn pod_draws_current_only_for_zeros() {
        let pod = PodInterface::pod135();
        assert!(pod.zero_power_w() > 0.0);
        // A transmitted one leaves both ends at VDDQ: no voltage across the
        // termination, no DC current. The POD model has no `one_power`
        // method at all; this test documents the asymmetry the DBI DC
        // scheme exploits.
    }

    #[test]
    fn constructor_validation_and_accessors() {
        assert!(SstlInterface::new(1.5, 0.0, 40.0).is_err());
        let sstl = SstlInterface::new(1.35, 60.0, 40.0).unwrap();
        assert!((sstl.vddq_v() - 1.35).abs() < 1e-12);
        assert!(sstl.to_string().contains("SSTL"));
    }
}
