//! Parametric building blocks of the encoder datapaths.
//!
//! Each function returns the gate inventory (including the block's own
//! critical-path estimate) of one arithmetic block of Fig. 5: population
//! counters, ripple-carry adders, comparators, small multipliers, 2:1 mux
//! vectors and register banks. The inventories are deliberately simple —
//! ripple topologies and full-adder counts straight from the textbook —
//! because Table I only needs the *relative* complexity of the four encoder
//! designs to come out right.

use crate::cells::{CellKind, CellLibrary};
use crate::netlist::GateCount;

/// Population count of a `width`-bit input (a tree of full/half adders).
///
/// An 8-bit popcount needs 4 + 2 + 1 = 7 compressor stages' worth of
/// adders; the result is `ceil(log2(width + 1))` bits wide.
#[must_use]
pub fn popcount(width: u32, library: &CellLibrary) -> GateCount {
    // A Wallace-style reduction of `width` bits into a binary count uses
    // roughly `width - popcount_result_bits` full adders; model it as a tree
    // of full adders with one half adder per tree level.
    let result_bits = result_bits(width);
    let full_adders = u64::from(width.saturating_sub(result_bits));
    let half_adders = u64::from(result_bits);
    let levels = (f64::from(width)).log2().ceil().max(1.0);
    let fa = library.params(CellKind::FullAdder).delay_ps;
    GateCount::new()
        .with(CellKind::FullAdder, full_adders.max(1))
        .with(CellKind::HalfAdder, half_adders)
        .with_critical_path_ps(levels * fa)
}

/// Number of bits needed to represent a popcount result of `width` inputs.
#[must_use]
pub fn result_bits(width: u32) -> u32 {
    32 - width.leading_zeros()
}

/// Adder of two `width`-bit operands. The cell inventory is that of a
/// ripple-carry adder (one full adder per bit); the delay is that of the
/// carry-lookahead structure a synthesis tool would infer under timing
/// pressure, i.e. logarithmic in the width.
#[must_use]
pub fn adder(width: u32, library: &CellLibrary) -> GateCount {
    let fa = library.params(CellKind::FullAdder).delay_ps;
    let levels = (f64::from(width)).log2().ceil().max(1.0);
    GateCount::new()
        .with(CellKind::FullAdder, u64::from(width))
        .with_critical_path_ps(levels * fa)
}

/// Constant-operand adder / subtractor of a `width`-bit value (used for the
/// `8 − x`, `x + 1` and `9 − x` terms in Fig. 5). Cheaper than a full adder
/// chain because one operand is constant.
#[must_use]
pub fn constant_adder(width: u32, library: &CellLibrary) -> GateCount {
    let ha = library.params(CellKind::HalfAdder).delay_ps;
    GateCount::new()
        .with(CellKind::HalfAdder, u64::from(width))
        .with(CellKind::Inverter, u64::from(width))
        .with_critical_path_ps(f64::from(width) * ha * 0.5)
}

/// Magnitude comparator of two `width`-bit values (subtract and inspect the
/// carry). Like [`adder`], the delay model assumes a lookahead carry chain.
#[must_use]
pub fn comparator(width: u32, library: &CellLibrary) -> GateCount {
    let fa = library.params(CellKind::FullAdder).delay_ps;
    let levels = (f64::from(width)).log2().ceil().max(1.0);
    GateCount::new()
        .with(CellKind::FullAdder, u64::from(width))
        .with(CellKind::Inverter, u64::from(width))
        .with_critical_path_ps(levels * fa)
}

/// A vector of `width` 2:1 multiplexers sharing one select signal.
#[must_use]
pub fn mux2(width: u32, library: &CellLibrary) -> GateCount {
    let delay = library.params(CellKind::Mux2).delay_ps;
    GateCount::new()
        .with(CellKind::Mux2, u64::from(width))
        .with_critical_path_ps(delay)
}

/// Bitwise XOR of two `width`-bit vectors (the `Byte(i−1) ⊕ Byte(i)` input
/// of each processing block).
#[must_use]
pub fn xor_vector(width: u32, library: &CellLibrary) -> GateCount {
    let delay = library.params(CellKind::Xor2).delay_ps;
    GateCount::new()
        .with(CellKind::Xor2, u64::from(width))
        .with_critical_path_ps(delay)
}

/// A register bank of `width` flip-flops.
#[must_use]
pub fn register(width: u32, library: &CellLibrary) -> GateCount {
    let delay = library.params(CellKind::Dff).delay_ps;
    GateCount::new()
        .with(CellKind::Dff, u64::from(width))
        .with_critical_path_ps(delay)
}

/// An unsigned array multiplier of `a_bits` × `b_bits` (used only by the
/// configurable-coefficient design: cost terms are multiplied by the 3-bit
/// α/β coefficients).
#[must_use]
pub fn multiplier(a_bits: u32, b_bits: u32, library: &CellLibrary) -> GateCount {
    let and_gates = u64::from(a_bits * b_bits);
    let full_adders = u64::from(a_bits.saturating_sub(1) * b_bits);
    let fa = library.params(CellKind::FullAdder).delay_ps;
    let and = library.params(CellKind::And2).delay_ps;
    GateCount::new()
        .with(CellKind::And2, and_gates)
        .with(CellKind::FullAdder, full_adders.max(1))
        .with_critical_path_ps(and + f64::from(a_bits + b_bits) * fa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::generic_32nm()
    }

    #[test]
    fn result_bits_matches_log2() {
        assert_eq!(result_bits(8), 4);
        assert_eq!(result_bits(9), 4);
        assert_eq!(result_bits(15), 4);
        assert_eq!(result_bits(16), 5);
        assert_eq!(result_bits(1), 1);
    }

    #[test]
    fn popcount_inventory_scales_with_width() {
        let lib = lib();
        let p8 = popcount(8, &lib);
        let p16 = popcount(16, &lib);
        assert!(p8.total_cells() >= 5);
        assert!(p16.total_cells() > p8.total_cells());
        assert!(p16.critical_path_ps() > p8.critical_path_ps());
    }

    #[test]
    fn adder_and_comparator_are_linear_in_width() {
        let lib = lib();
        assert_eq!(adder(8, &lib).count(CellKind::FullAdder), 8);
        assert_eq!(adder(16, &lib).count(CellKind::FullAdder), 16);
        assert!(comparator(10, &lib).critical_path_ps() > comparator(5, &lib).critical_path_ps());
        // A constant-operand adder is cheaper than a full two-operand adder.
        assert!(constant_adder(4, &lib).area_um2(&lib) < adder(4, &lib).area_um2(&lib));
    }

    #[test]
    fn mux_xor_register_widths() {
        let lib = lib();
        assert_eq!(mux2(8, &lib).count(CellKind::Mux2), 8);
        assert_eq!(xor_vector(8, &lib).count(CellKind::Xor2), 8);
        assert_eq!(register(12, &lib).count(CellKind::Dff), 12);
    }

    #[test]
    fn multiplier_is_much_bigger_than_an_adder() {
        let lib = lib();
        let mult = multiplier(3, 4, &lib);
        let add = adder(4, &lib);
        assert!(mult.area_um2(&lib) > add.area_um2(&lib));
        assert!(mult.critical_path_ps() > add.critical_path_ps());
    }
}
