//! A small generic 32 nm standard-cell library.
//!
//! The paper synthesises its encoders with Synopsys Design Compiler and the
//! Synopsys 32 nm generic libraries. That flow is proprietary, so this
//! module substitutes an analytical cell library: for each cell class we
//! carry a typical area, leakage power, switching energy per output toggle
//! and propagation delay. The absolute values are representative of a
//! generic 32 nm process; what the Table I reproduction relies on is that
//! they are *consistent across the four encoder designs*, so the relative
//! area/power/timing ordering is meaningful.

use core::fmt;

/// The cell classes used by the encoder netlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CellKind {
    /// Inverter.
    Inverter,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input AND (for enables and decision logic).
    And2,
    /// 2-input OR.
    Or2,
    /// 2:1 multiplexer.
    Mux2,
    /// Full adder (3:2 compressor).
    FullAdder,
    /// Half adder.
    HalfAdder,
    /// D flip-flop with clock enable (pipeline / decision registers).
    Dff,
}

impl CellKind {
    /// Every cell class, for iteration in reports.
    #[must_use]
    pub const fn all() -> [CellKind; 10] {
        [
            CellKind::Inverter,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Mux2,
            CellKind::FullAdder,
            CellKind::HalfAdder,
            CellKind::Dff,
        ]
    }

    const fn index(self) -> usize {
        match self {
            CellKind::Inverter => 0,
            CellKind::Nand2 => 1,
            CellKind::Nor2 => 2,
            CellKind::Xor2 => 3,
            CellKind::And2 => 4,
            CellKind::Or2 => 5,
            CellKind::Mux2 => 6,
            CellKind::FullAdder => 7,
            CellKind::HalfAdder => 8,
            CellKind::Dff => 9,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::Inverter => "INV",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Mux2 => "MUX2",
            CellKind::FullAdder => "FA",
            CellKind::HalfAdder => "HA",
            CellKind::Dff => "DFF",
        };
        write!(f, "{name}")
    }
}

/// Electrical characteristics of one cell class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Layout area in µm².
    pub area_um2: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Energy per output toggle in fJ.
    pub switch_energy_fj: f64,
    /// Propagation delay in ps (clock-to-Q for the flip-flop).
    pub delay_ps: f64,
}

/// A complete cell library: parameters for every [`CellKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    name: &'static str,
    params: [CellParams; 10],
    /// Setup time added to every register-bounded path, in ps.
    setup_ps: f64,
}

impl CellLibrary {
    /// A generic 32 nm high-k metal-gate library at nominal voltage. The
    /// values are textbook-level estimates (a NAND2 around 1 µm², gate
    /// delays of 10–25 ps, leakage of tens of nanowatts per gate) — adequate
    /// for relative comparisons between netlists synthesised from the same
    /// library, which is all Table I needs.
    #[must_use]
    pub fn generic_32nm() -> Self {
        let p = |area, leak_nw: f64, fj, ps| CellParams {
            area_um2: area,
            leakage_uw: leak_nw / 1000.0,
            switch_energy_fj: fj,
            delay_ps: ps,
        };
        CellLibrary {
            name: "generic-32nm",
            params: [
                p(0.6, 15.0, 0.35, 9.0),   // Inverter
                p(0.8, 22.0, 0.55, 13.0),  // Nand2
                p(0.8, 22.0, 0.55, 15.0),  // Nor2
                p(1.8, 45.0, 1.10, 24.0),  // Xor2
                p(1.0, 26.0, 0.65, 16.0),  // And2
                p(1.0, 26.0, 0.65, 16.0),  // Or2
                p(1.6, 38.0, 0.95, 20.0),  // Mux2
                p(3.6, 95.0, 2.40, 42.0),  // FullAdder
                p(1.9, 50.0, 1.20, 24.0),  // HalfAdder
                p(4.2, 110.0, 1.80, 55.0), // Dff (delay = clock-to-Q)
            ],
            setup_ps: 35.0,
        }
    }

    /// Library name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Parameters of one cell class.
    #[must_use]
    pub fn params(&self, kind: CellKind) -> CellParams {
        self.params[kind.index()]
    }

    /// Register setup time in ps, added to every register-bounded path.
    #[must_use]
    pub const fn setup_ps(&self) -> f64 {
        self.setup_ps
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::generic_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_every_cell_kind() {
        let lib = CellLibrary::generic_32nm();
        for kind in CellKind::all() {
            let p = lib.params(kind);
            assert!(p.area_um2 > 0.0, "{kind} area");
            assert!(p.leakage_uw > 0.0, "{kind} leakage");
            assert!(p.switch_energy_fj > 0.0, "{kind} energy");
            assert!(p.delay_ps > 0.0, "{kind} delay");
        }
        assert_eq!(lib.name(), "generic-32nm");
        assert!(lib.setup_ps() > 0.0);
        assert_eq!(CellLibrary::default(), lib);
    }

    #[test]
    fn relative_cell_sizes_are_sensible() {
        let lib = CellLibrary::generic_32nm();
        // An inverter is the smallest cell; a flip-flop and a full adder are
        // the biggest; an XOR costs more than a NAND.
        let area = |k| lib.params(k).area_um2;
        assert!(area(CellKind::Inverter) < area(CellKind::Nand2));
        assert!(area(CellKind::Nand2) < area(CellKind::Xor2));
        assert!(area(CellKind::Xor2) < area(CellKind::FullAdder));
        assert!(area(CellKind::Mux2) < area(CellKind::Dff));
    }

    #[test]
    fn display_names() {
        assert_eq!(CellKind::FullAdder.to_string(), "FA");
        assert_eq!(CellKind::Dff.to_string(), "DFF");
        assert_eq!(CellKind::all().len(), 10);
    }
}
