//! Bit-accurate simulation of the Fig. 5 encoder datapath.
//!
//! The paper's hardware finds the shortest path through the encoding
//! trellis with one processing block per burst byte. Each block receives
//! the running minimum costs `cost(i)` / `cost_inv(i)`, the byte itself and
//! its XOR with the previous byte, computes the four candidate costs with
//! two POPCNT units and four adders, keeps the cheaper predecessor per node
//! and forwards the result. After the last block a comparator picks the
//! cheaper end node and the decision is backtracked through the mux chain
//! of Fig. 6.
//!
//! [`PipelineEncoder`] simulates that structure operation-for-operation —
//! 8-bit popcounts, the `α·x`, `α·(9−x)`, `β·(8−y)`, `β·(y+1)` cost terms,
//! saturating adders, comparators and the backtrack muxes — and is checked
//! against the software reference ([`dbi_core::schemes::OptEncoder`]) in
//! the test-suite. This is the evidence behind the paper's claim that the
//! optimal encoding "can be done at the required data rates": the hardware
//! structure computes exactly the same encodings as the algorithm.

use core::fmt;
use dbi_core::schemes::DbiEncoder;
use dbi_core::{Burst, BusState, CostWeights, DbiBit, EncodedBurst};

/// Number of pipeline stages the paper adds to the design (one per burst
/// byte; the synthesis tool retimes them into the block chain).
pub const PIPELINE_STAGES: usize = 8;

/// Saturation limit used for the "infinite" initial cost of the unreachable
/// start node (the `∞` input of Fig. 5).
const COST_INFINITY: u32 = u32::MAX / 4;

/// Everything one processing block computes for one byte — useful for
/// debugging the datapath and for asserting intermediate values in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTrace {
    /// POPCNT of `Byte(i−1) ⊕ Byte(i)`: data-lane transitions if both bytes
    /// use the same inversion state.
    pub transition_popcount: u32,
    /// POPCNT of `Byte(i)`: the number of ones in the payload.
    pub ones_popcount: u32,
    /// `α · x` — AC cost when the inversion state does not change.
    pub ac_cost0: u32,
    /// `α · (9 − x)` — AC cost when the inversion state changes (the DBI
    /// lane toggles too).
    pub ac_cost1: u32,
    /// `β · (8 − y)` — DC cost of the non-inverted byte.
    pub dc_cost0: u32,
    /// `β · (y + 1)` — DC cost of the inverted byte (the DBI lane adds one
    /// zero).
    pub dc_cost1: u32,
    /// Running minimum cost of ending this byte non-inverted.
    pub cost: u32,
    /// Running minimum cost of ending this byte inverted.
    pub cost_inv: u32,
    /// Stored decision `m0`: `true` when the cheaper predecessor of the
    /// non-inverted node was the inverted one.
    pub select_for_plain: bool,
    /// Stored decision `m1`: `true` when the cheaper predecessor of the
    /// inverted node was the inverted one.
    pub select_for_inverted: bool,
}

/// The complete record of one burst flowing through the datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeTrace {
    /// Per-byte block outputs in burst order.
    pub blocks: Vec<BlockTrace>,
    /// `true` when the final comparator picked the inverted end node.
    pub final_inverted: bool,
    /// The backtracked per-byte inversion decisions.
    pub decisions: Vec<bool>,
    /// The winning end-node cost (the weighted cost of the chosen encoding).
    pub total_cost: u32,
}

/// The hardware encoder of Fig. 5, with either fixed or 3-bit programmable
/// coefficients.
///
/// ```
/// use dbi_core::schemes::{DbiEncoder, OptFixedEncoder};
/// use dbi_core::{Burst, BusState};
/// use dbi_hw::PipelineEncoder;
///
/// let burst = Burst::paper_example();
/// let state = BusState::idle();
/// let hardware = PipelineEncoder::fixed().encode(&burst, &state);
/// let software = OptFixedEncoder::new().encode(&burst, &state);
/// assert_eq!(hardware, software);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineEncoder {
    alpha: u8,
    beta: u8,
}

impl PipelineEncoder {
    /// Maximum coefficient value of the configurable design (3-bit fields).
    pub const MAX_COEFFICIENT: u8 = 7;

    /// The fixed-coefficient design (α = β = 1): no multipliers, narrow
    /// datapath, meets 1.5 GHz in Table I.
    #[must_use]
    pub const fn fixed() -> Self {
        PipelineEncoder { alpha: 1, beta: 1 }
    }

    /// The configurable design with programmable 3-bit coefficients.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient exceeds [`Self::MAX_COEFFICIENT`] or if
    /// both are zero — the register fields are 3 bits wide and an all-zero
    /// configuration would make every encoding equally "optimal".
    #[must_use]
    pub fn with_coefficients(alpha: u8, beta: u8) -> Self {
        assert!(
            alpha <= Self::MAX_COEFFICIENT && beta <= Self::MAX_COEFFICIENT,
            "coefficients are 3-bit fields (0..=7), got alpha={alpha} beta={beta}"
        );
        assert!(
            alpha != 0 || beta != 0,
            "at least one coefficient must be non-zero"
        );
        PipelineEncoder { alpha, beta }
    }

    /// The α coefficient (cost per lane transition).
    #[must_use]
    pub const fn alpha(&self) -> u8 {
        self.alpha
    }

    /// The β coefficient (cost per transmitted zero).
    #[must_use]
    pub const fn beta(&self) -> u8 {
        self.beta
    }

    /// The equivalent software cost weights.
    #[must_use]
    pub fn weights(&self) -> CostWeights {
        CostWeights::new(u32::from(self.alpha), u32::from(self.beta))
            .expect("constructors guarantee at least one non-zero coefficient")
    }

    /// Latency of the pipelined implementation in encoder clock cycles.
    #[must_use]
    pub const fn latency_cycles(&self) -> usize {
        PIPELINE_STAGES
    }

    /// Throughput of the pipelined implementation: one full burst per clock
    /// cycle once the pipeline is primed.
    #[must_use]
    pub const fn bursts_per_cycle(&self) -> usize {
        1
    }

    /// Runs the burst through the datapath and returns every intermediate
    /// signal — the forward sweep of the processing blocks and the
    /// backtracked decisions.
    #[must_use]
    pub fn encode_trace(&self, burst: &Burst, state: &BusState) -> EncodeTrace {
        // The Fig. 5 boundary condition generalised to an arbitrary previous
        // lane word: the virtual byte −1 is the *decoded* previous payload,
        // and the reachable start node is the one matching the previous
        // word's DBI level (cost 0 for it, ∞ for the other).
        let prev_word = state.last();
        let prev_data_byte = prev_word.decode();
        let (mut cost, mut cost_inv) = match prev_word.dbi() {
            DbiBit::NotInverted => (0u32, COST_INFINITY),
            DbiBit::Inverted => (COST_INFINITY, 0u32),
        };

        let alpha = u32::from(self.alpha);
        let beta = u32::from(self.beta);
        let mut previous_byte = prev_data_byte;
        let mut blocks = Vec::with_capacity(burst.len());

        for byte in burst.iter() {
            // The two POPCNT units of the block.
            let transition_popcount = (previous_byte ^ byte).count_ones();
            let ones_popcount = byte.count_ones();

            // The four cost terms.
            let ac_cost0 = alpha * transition_popcount;
            let ac_cost1 = alpha * (9 - transition_popcount);
            let dc_cost0 = beta * (8 - ones_popcount);
            let dc_cost1 = beta * (ones_popcount + 1);

            // The four candidate adders (saturating — the ∞ input must not
            // wrap) and the two comparators. Ties resolve towards the
            // non-inverted predecessor, matching the software reference.
            let via_plain_to_plain = cost.saturating_add(ac_cost0).saturating_add(dc_cost0);
            let via_inv_to_plain = cost_inv.saturating_add(ac_cost1).saturating_add(dc_cost0);
            let via_plain_to_inv = cost.saturating_add(ac_cost1).saturating_add(dc_cost1);
            let via_inv_to_inv = cost_inv.saturating_add(ac_cost0).saturating_add(dc_cost1);

            let select_for_plain = via_inv_to_plain < via_plain_to_plain;
            let next_cost = if select_for_plain {
                via_inv_to_plain
            } else {
                via_plain_to_plain
            };
            let select_for_inverted = via_inv_to_inv < via_plain_to_inv;
            let next_cost_inv = if select_for_inverted {
                via_inv_to_inv
            } else {
                via_plain_to_inv
            };

            blocks.push(BlockTrace {
                transition_popcount,
                ones_popcount,
                ac_cost0,
                ac_cost1,
                dc_cost0,
                dc_cost1,
                cost: next_cost,
                cost_inv: next_cost_inv,
                select_for_plain,
                select_for_inverted,
            });

            cost = next_cost;
            cost_inv = next_cost_inv;
            previous_byte = byte;
        }

        // Final comparator and the Fig. 6 backtrack mux chain.
        let final_inverted = cost_inv < cost;
        let total_cost = if final_inverted { cost_inv } else { cost };
        let mut decisions = vec![false; burst.len()];
        let mut current = final_inverted;
        for (i, block) in blocks.iter().enumerate().rev() {
            decisions[i] = current;
            current = if current {
                block.select_for_inverted
            } else {
                block.select_for_plain
            };
        }

        EncodeTrace {
            blocks,
            final_inverted,
            decisions,
            total_cost,
        }
    }
}

impl Default for PipelineEncoder {
    fn default() -> Self {
        PipelineEncoder::fixed()
    }
}

impl DbiEncoder for PipelineEncoder {
    fn name(&self) -> &str {
        if self.alpha == 1 && self.beta == 1 {
            "HW DBI OPT (Fixed)"
        } else {
            "HW DBI OPT (3-Bit)"
        }
    }

    fn encode(&self, burst: &Burst, state: &BusState) -> EncodedBurst {
        let trace = self.encode_trace(burst, state);
        EncodedBurst::from_decisions(burst, &trace.decisions)
    }
}

impl fmt::Display for PipelineEncoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipeline encoder alpha={} beta={}",
            self.alpha, self.beta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::schemes::OptEncoder;
    use dbi_core::LaneWord;

    #[test]
    fn paper_example_cost_is_52() {
        let trace =
            PipelineEncoder::fixed().encode_trace(&Burst::paper_example(), &BusState::idle());
        assert_eq!(trace.total_cost, 52);
        assert_eq!(trace.blocks.len(), 8);
        assert_eq!(trace.decisions.len(), 8);
    }

    #[test]
    fn first_block_matches_the_fig2_edge_weights() {
        // Byte 0 of the example, starting from all-ones: 8 for the
        // non-inverted node, 10 for the inverted one.
        let trace =
            PipelineEncoder::fixed().encode_trace(&Burst::paper_example(), &BusState::idle());
        assert_eq!(trace.blocks[0].cost, 8);
        assert_eq!(trace.blocks[0].cost_inv, 10);
        // The block-internal terms: byte 0b1000_1110 has 4 ones, and differs
        // from the idle 0xFF in 4 positions.
        assert_eq!(trace.blocks[0].transition_popcount, 4);
        assert_eq!(trace.blocks[0].ones_popcount, 4);
        assert_eq!(trace.blocks[0].ac_cost0, 4);
        assert_eq!(trace.blocks[0].ac_cost1, 5);
        assert_eq!(trace.blocks[0].dc_cost0, 4);
        assert_eq!(trace.blocks[0].dc_cost1, 5);
    }

    #[test]
    fn hardware_matches_the_software_reference_exactly() {
        let state = BusState::idle();
        let bursts = [
            Burst::paper_example(),
            Burst::from_array([0x00, 0xFF, 0x0F, 0xF0, 0x55, 0xAA, 0x3C, 0xC3]),
            Burst::from_array([0x13, 0x37, 0xBE, 0xEF, 0xCA, 0xFE, 0xBA, 0xBE]),
            Burst::from_array([0u8; 8]),
            Burst::from_array([0xFFu8; 8]),
        ];
        for (alpha, beta) in [(1u8, 1u8), (0, 1), (1, 0), (3, 5), (7, 1), (7, 7)] {
            let hw = PipelineEncoder::with_coefficients(alpha, beta);
            let sw = OptEncoder::new(hw.weights());
            for burst in &bursts {
                assert_eq!(
                    hw.encode(burst, &state),
                    sw.encode(burst, &state),
                    "alpha={alpha} beta={beta} burst={burst}"
                );
            }
        }
    }

    #[test]
    fn hardware_handles_non_idle_bus_states() {
        let burst = Burst::from_array([0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0]);
        for prev in [
            LaneWord::ALL_ONES,
            LaneWord::ALL_ZEROS,
            LaneWord::encode_byte(0xA5, true),
            LaneWord::encode_byte(0x0F, false),
        ] {
            let state = BusState::new(prev);
            let hw = PipelineEncoder::fixed().encode(&burst, &state);
            let sw = OptEncoder::new(CostWeights::FIXED).encode(&burst, &state);
            assert_eq!(hw, sw, "previous word {prev}");
        }
    }

    #[test]
    fn trace_total_cost_equals_the_encoded_burst_cost() {
        let state = BusState::idle();
        let burst = Burst::from_array([0x9E, 0x01, 0x7C, 0xE3, 0x55, 0x0A, 0xB0, 0x4F]);
        let hw = PipelineEncoder::with_coefficients(2, 3);
        let trace = hw.encode_trace(&burst, &state);
        let encoded = hw.encode(&burst, &state);
        assert_eq!(
            u64::from(trace.total_cost),
            encoded.cost(&state, &hw.weights())
        );
    }

    #[test]
    fn decisions_are_lossless() {
        let burst = Burst::from_array([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF, 0x55, 0xAA]);
        let encoded = PipelineEncoder::fixed().encode(&burst, &BusState::idle());
        assert_eq!(encoded.decode(), burst);
    }

    #[test]
    fn constructor_validation_and_accessors() {
        let enc = PipelineEncoder::with_coefficients(3, 5);
        assert_eq!(enc.alpha(), 3);
        assert_eq!(enc.beta(), 5);
        assert_eq!(enc.weights().alpha(), 3);
        assert_eq!(enc.latency_cycles(), PIPELINE_STAGES);
        assert_eq!(enc.bursts_per_cycle(), 1);
        assert_eq!(PipelineEncoder::default(), PipelineEncoder::fixed());
        assert_eq!(PipelineEncoder::fixed().name(), "HW DBI OPT (Fixed)");
        assert_eq!(enc.name(), "HW DBI OPT (3-Bit)");
        assert!(enc.to_string().contains("alpha=3"));
    }

    #[test]
    #[should_panic(expected = "3-bit fields")]
    fn coefficients_above_seven_panic() {
        let _ = PipelineEncoder::with_coefficients(8, 1);
    }

    #[test]
    #[should_panic(expected = "at least one coefficient")]
    fn all_zero_coefficients_panic() {
        let _ = PipelineEncoder::with_coefficients(0, 0);
    }
}
