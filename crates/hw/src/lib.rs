//! # dbi-hw
//!
//! Hardware model of the DBI encoders from *"Optimal DC/AC Data Bus
//! Inversion Coding"* (DATE 2018).
//!
//! The paper validates its encoding scheme with a VHDL implementation
//! synthesised against Synopsys 32 nm generic libraries (Table I) and the
//! datapath architecture of Fig. 5. That flow is proprietary, so this crate
//! substitutes two complementary models:
//!
//! * **Structural area/power/timing estimation** — a small generic 32 nm
//!   cell library ([`cells::CellLibrary`]), gate inventories of the four
//!   encoder designs ([`encoders::EncoderDesign`]) and an analytical
//!   "synthesiser" ([`synthesis::Synthesizer`]) that regenerates the shape
//!   of Table I: relative area, power, achievable clock and energy per
//!   encoded burst.
//! * **Bit-accurate datapath simulation** — [`PipelineEncoder`] executes the
//!   Fig. 5 processing-block pipeline operation-for-operation and is proven
//!   equivalent to the software reference encoder in the test-suite,
//!   supporting the paper's claim that optimal DBI encoding is feasible at
//!   GDDR5X data rates.
//!
//! ```
//! use dbi_hw::{EncoderDesign, Synthesizer};
//!
//! let table1 = Synthesizer::new().table1();
//! assert_eq!(table1.len(), 4);
//! // The fixed-coefficient optimal encoder meets the 1.5 GHz target...
//! assert!(table1[2].meets_gddr5x_timing());
//! // ...while the configurable 3-bit design does not.
//! assert!(!table1[3].meets_gddr5x_timing());
//! # let _ = EncoderDesign::table1_set();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod blocks;
pub mod cells;
pub mod datapath;
pub mod encoders;
pub mod netlist;
pub mod synthesis;

pub use cells::{CellKind, CellLibrary, CellParams};
pub use datapath::{BlockTrace, EncodeTrace, PipelineEncoder, PIPELINE_STAGES};
pub use encoders::{EncoderDesign, HW_BURST_LEN};
pub use netlist::GateCount;
pub use synthesis::{SynthesisReport, Synthesizer, DEFAULT_ACTIVITY, TARGET_BURST_RATE_GHZ};

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::schemes::{DbiEncoder, OptFixedEncoder};
    use dbi_core::{Burst, BusState};

    #[test]
    fn the_two_models_tell_a_consistent_story() {
        // The datapath that is functionally equivalent to the optimal
        // software encoder is also the one the synthesis model says meets
        // timing with fixed coefficients.
        let report = Synthesizer::new().report(EncoderDesign::OptFixed);
        assert!(report.meets_gddr5x_timing());

        let burst = Burst::paper_example();
        let state = BusState::idle();
        assert_eq!(
            PipelineEncoder::fixed().encode(&burst, &state),
            OptFixedEncoder::new().encode(&burst, &state)
        );
    }
}
