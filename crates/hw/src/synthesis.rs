//! Synthesis-style reports: the Table I reproduction.
//!
//! The paper reports, per encoder design, the die area, static and dynamic
//! power, achievable burst rate, total power and energy per encoded burst
//! from a Synopsys Design Compiler run against 32 nm generic libraries.
//! This module derives the same quantities analytically from the gate
//! inventories in [`crate::encoders`] and the cell library in
//! [`crate::cells`]. Absolute numbers differ from the paper's proprietary
//! flow; the orderings and feasibility conclusions are what the
//! reproduction preserves (see EXPERIMENTS.md).

use crate::cells::CellLibrary;
use crate::encoders::EncoderDesign;
use crate::netlist::GateCount;
use core::fmt;

/// Default switching-activity factor: the fraction of cells that toggle in
/// an average cycle when encoding random data.
pub const DEFAULT_ACTIVITY: f64 = 0.15;

/// The clock target the paper synthesises for: 1.5 GHz, i.e. 12 Gbps per
/// pin at 8 bytes per cycle (GDDR5X).
pub const TARGET_BURST_RATE_GHZ: f64 = 1.5;

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisReport {
    /// The encoder design the row describes.
    pub design: EncoderDesign,
    /// Die area in µm².
    pub area_um2: f64,
    /// Leakage power in µW.
    pub static_power_uw: f64,
    /// Switching power at the achieved burst rate, in µW.
    pub dynamic_power_uw: f64,
    /// Achieved burst rate in GHz (bursts per second / 10⁹). Capped at the
    /// design's maximum clock; the paper's designs target 1.5 GHz.
    pub burst_rate_ghz: f64,
    /// Total power (static + dynamic) in µW.
    pub total_power_uw: f64,
    /// Energy spent encoding one burst, in pJ.
    pub energy_per_burst_pj: f64,
}

impl SynthesisReport {
    /// `true` when the design meets the 1.5 GHz GDDR5X timing target with a
    /// single encoder instance.
    #[must_use]
    pub fn meets_gddr5x_timing(&self) -> bool {
        self.burst_rate_ghz >= TARGET_BURST_RATE_GHZ - 1e-9
    }

    /// Number of encoder instances needed to sustain the 1.5 GHz target
    /// burst rate (the paper notes the 3-bit design needs three units).
    #[must_use]
    pub fn units_for_target(&self) -> u32 {
        (TARGET_BURST_RATE_GHZ / self.burst_rate_ghz)
            .ceil()
            .max(1.0) as u32
    }

    /// Encoding energy per burst in joules (convenience for the Fig. 8
    /// system-level accounting).
    #[must_use]
    pub fn energy_per_burst_j(&self) -> f64 {
        self.energy_per_burst_pj * 1e-12
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} area {:7.0} µm², static {:6.1} µW, dynamic {:7.1} µW, {:.2} GHz, total {:7.1} µW, {:.3} pJ/burst",
            self.design.label(),
            self.area_um2,
            self.static_power_uw,
            self.dynamic_power_uw,
            self.burst_rate_ghz,
            self.total_power_uw,
            self.energy_per_burst_pj
        )
    }
}

/// The analytical "synthesis tool": turns a gate inventory into a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Synthesizer {
    library: CellLibrary,
    activity: f64,
    target_ghz: f64,
}

impl Synthesizer {
    /// Creates a synthesiser against the generic 32 nm library, the default
    /// activity factor and the 1.5 GHz target of the paper.
    #[must_use]
    pub fn new() -> Self {
        Synthesizer {
            library: CellLibrary::generic_32nm(),
            activity: DEFAULT_ACTIVITY,
            target_ghz: TARGET_BURST_RATE_GHZ,
        }
    }

    /// Overrides the switching-activity factor (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_activity(mut self, activity: f64) -> Self {
        self.activity = activity.clamp(0.0, 1.0);
        self
    }

    /// Overrides the clock target in GHz.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive and finite.
    #[must_use]
    pub fn with_target_ghz(mut self, target_ghz: f64) -> Self {
        assert!(
            target_ghz.is_finite() && target_ghz > 0.0,
            "target clock must be positive"
        );
        self.target_ghz = target_ghz;
        self
    }

    /// The cell library in use.
    #[must_use]
    pub const fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Produces the report for an explicit gate inventory.
    ///
    /// Designs whose intrinsic critical path misses the target clock are
    /// assumed to have gone through aggressive timing-driven optimisation
    /// before the tool gave up: cells get upsized and swapped to faster,
    /// leakier variants. That is modelled as a *timing-pressure* factor
    /// `p = target / max_clock` that scales area by `p` and leakage and
    /// switching energy by `p²`. This is what makes the configurable
    /// 3-bit-coefficient design blow up disproportionately in Table I, as
    /// it does in the paper's Design Compiler run.
    #[must_use]
    pub fn report_netlist(&self, design: EncoderDesign, netlist: &GateCount) -> SynthesisReport {
        let max_clock = netlist.max_clock_ghz(&self.library);
        let burst_rate_ghz = max_clock.min(self.target_ghz);
        let pressure = if max_clock < self.target_ghz {
            (self.target_ghz / max_clock).min(4.0)
        } else {
            1.0
        };
        let area_um2 = netlist.area_um2(&self.library) * pressure;
        let static_power_uw = netlist.leakage_uw(&self.library) * pressure * pressure;
        // Energy per evaluation (one burst) from the switched capacitance.
        let switch_energy_fj =
            netlist.switch_energy_fj(&self.library, self.activity) * pressure * pressure;
        // Dynamic power = energy/cycle × clock.
        let dynamic_power_uw = switch_energy_fj * 1e-15 * burst_rate_ghz * 1e9 * 1e6;
        let total_power_uw = static_power_uw + dynamic_power_uw;
        // Energy per burst = total power / burst rate.
        let energy_per_burst_pj = total_power_uw * 1e-6 / (burst_rate_ghz * 1e9) * 1e12;
        SynthesisReport {
            design,
            area_um2,
            static_power_uw,
            dynamic_power_uw,
            burst_rate_ghz,
            total_power_uw,
            energy_per_burst_pj,
        }
    }

    /// Produces the report for one of the Table I designs.
    #[must_use]
    pub fn report(&self, design: EncoderDesign) -> SynthesisReport {
        let netlist = design.netlist(&self.library);
        self.report_netlist(design, &netlist)
    }

    /// All four rows of Table I, in the paper's order.
    #[must_use]
    pub fn table1(&self) -> Vec<SynthesisReport> {
        EncoderDesign::table1_set()
            .iter()
            .map(|&d| self.report(d))
            .collect()
    }
}

impl Default for Synthesizer {
    fn default() -> Self {
        Synthesizer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_in_order() {
        let rows = Synthesizer::new().table1();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].design, EncoderDesign::Dc);
        assert_eq!(rows[3].design, EncoderDesign::OptConfigurable);
    }

    #[test]
    fn table1_orderings_match_the_paper() {
        let rows = Synthesizer::new().table1();
        // Area, total power and energy per burst all increase monotonically
        // from DC to AC to OPT(Fixed) to OPT(3-bit).
        for pair in rows.windows(2) {
            assert!(pair[0].area_um2 < pair[1].area_um2);
            assert!(pair[0].total_power_uw < pair[1].total_power_uw);
            assert!(pair[0].energy_per_burst_pj < pair[1].energy_per_burst_pj);
        }
    }

    #[test]
    fn timing_conclusions_match_the_paper() {
        let rows = Synthesizer::new().table1();
        // DC, AC and OPT(Fixed) meet the 1.5 GHz target with one unit;
        // the configurable design does not and needs several units.
        assert!(rows[0].meets_gddr5x_timing());
        assert!(rows[1].meets_gddr5x_timing());
        assert!(rows[2].meets_gddr5x_timing());
        assert!(!rows[3].meets_gddr5x_timing());
        assert_eq!(rows[0].units_for_target(), 1);
        assert!(rows[3].units_for_target() >= 2);
    }

    #[test]
    fn fixed_coefficient_encoding_energy_is_small_versus_the_link() {
        // The core system-level claim behind Fig. 8: OPT(Fixed) spends a few
        // pJ per burst on encoding, which is small compared with the tens of
        // pJ of interface energy per burst, while the configurable design
        // spends an order of magnitude more than the fixed one.
        let rows = Synthesizer::new().table1();
        let fixed = &rows[2];
        let configurable = &rows[3];
        assert!(
            fixed.energy_per_burst_pj < 10.0,
            "{}",
            fixed.energy_per_burst_pj
        );
        assert!(
            configurable.energy_per_burst_pj > 3.0 * fixed.energy_per_burst_pj,
            "configurable {} vs fixed {}",
            configurable.energy_per_burst_pj,
            fixed.energy_per_burst_pj
        );
        assert!((fixed.energy_per_burst_j() - fixed.energy_per_burst_pj * 1e-12).abs() < 1e-24);
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let quiet = Synthesizer::new()
            .with_activity(0.05)
            .report(EncoderDesign::OptFixed);
        let busy = Synthesizer::new()
            .with_activity(0.30)
            .report(EncoderDesign::OptFixed);
        assert!(busy.dynamic_power_uw > quiet.dynamic_power_uw * 3.0);
        // Static power does not change with activity.
        assert!((busy.static_power_uw - quiet.static_power_uw).abs() < 1e-9);
    }

    #[test]
    fn lowering_the_target_clock_lowers_dynamic_power() {
        let fast = Synthesizer::new()
            .with_target_ghz(1.5)
            .report(EncoderDesign::Dc);
        let slow = Synthesizer::new()
            .with_target_ghz(0.75)
            .report(EncoderDesign::Dc);
        assert!(slow.dynamic_power_uw < fast.dynamic_power_uw);
        assert!((slow.burst_rate_ghz - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "target clock must be positive")]
    fn invalid_target_clock_panics() {
        let _ = Synthesizer::new().with_target_ghz(0.0);
    }

    #[test]
    fn display_contains_the_label_and_units() {
        let row = Synthesizer::new().report(EncoderDesign::Dc);
        let text = row.to_string();
        assert!(text.contains("DBI DC"));
        assert!(text.contains("µm²"));
        assert!(text.contains("pJ/burst"));
    }
}
