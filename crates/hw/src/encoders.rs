//! Structural designs of the four encoder variants of Table I.
//!
//! Every design is expressed as a gate inventory built from the blocks in
//! [`crate::blocks`]. The DBI OPT designs follow the architecture of
//! Fig. 5: one processing block per burst byte, each holding two POPCNT
//! units, the four candidate-cost adders, two comparators and the
//! cost-forwarding muxes, followed by the backtrack muxes and — as in the
//! paper — eight pipeline register stages that the synthesis tool retimes
//! into the chain.

use crate::blocks;
use crate::cells::CellLibrary;
use crate::netlist::GateCount;
use core::fmt;

/// Burst length the hardware encoders are sized for (8 bytes per clock, as
/// in the paper: 12 Gbps per pin requires a 1.5 GHz encoder clock).
pub const HW_BURST_LEN: u32 = 8;

/// The encoder variants synthesised in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EncoderDesign {
    /// Per-byte zero-count threshold (DBI DC).
    Dc,
    /// Per-byte transition minimisation against the previous word (DBI AC).
    Ac,
    /// Shortest-path encoder with fixed α = β = 1 coefficients.
    OptFixed,
    /// Shortest-path encoder with configurable 3-bit α/β coefficients
    /// (adds multipliers and widens the whole datapath).
    OptConfigurable,
}

impl EncoderDesign {
    /// The four designs in Table I order.
    #[must_use]
    pub const fn table1_set() -> [EncoderDesign; 4] {
        [
            EncoderDesign::Dc,
            EncoderDesign::Ac,
            EncoderDesign::OptFixed,
            EncoderDesign::OptConfigurable,
        ]
    }

    /// The row label used by Table I.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            EncoderDesign::Dc => "DBI DC",
            EncoderDesign::Ac => "DBI AC",
            EncoderDesign::OptFixed => "DBI OPT (Fixed Coeff.)",
            EncoderDesign::OptConfigurable => "DBI OPT (3-Bit Coeff.)",
        }
    }

    /// Builds the gate inventory of this design for an 8-byte burst.
    #[must_use]
    pub fn netlist(&self, library: &CellLibrary) -> GateCount {
        match self {
            EncoderDesign::Dc => dc_netlist(library),
            EncoderDesign::Ac => ac_netlist(library),
            EncoderDesign::OptFixed => opt_netlist(library, CoefficientStyle::Fixed),
            EncoderDesign::OptConfigurable => opt_netlist(library, CoefficientStyle::ThreeBit),
        }
    }
}

impl fmt::Display for EncoderDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Whether the optimal design carries multipliers for programmable
/// coefficients or hard-wires α = β = 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoefficientStyle {
    Fixed,
    ThreeBit,
}

/// DBI DC: per byte a popcount of the data bits, a constant comparator
/// against the ≥ 5 threshold, the data-inversion XORs and a decision
/// register. The decision of each byte is independent, so no inter-byte
/// logic exists and the critical path is a single byte slice.
fn dc_netlist(library: &CellLibrary) -> GateCount {
    let mut slice = GateCount::new();
    slice.merge_series(&blocks::popcount(8, library));
    slice.merge_series(&blocks::comparator(4, library));
    // Data inversion on the DQ path: 8 XOR gates driven by the decision.
    slice.merge_parallel(&blocks::xor_vector(8, library));
    // Decision flop (the DBI output bit).
    slice.merge_parallel(&blocks::register(1, library));

    let mut total = slice.replicate(u64::from(HW_BURST_LEN));
    total.set_critical_path_ps(slice.critical_path_ps());
    total
}

/// DBI AC: per byte the XOR against the previously transmitted word, a
/// 9-lane popcount (the DBI lane participates in the transition count), a
/// constant comparator and the data-inversion XORs; plus a 9-bit register
/// holding the previous lane word. The previous word of byte *i* is byte
/// *i − 1*'s output, so the slices chain combinationally, but — as with the
/// optimal design — the paper's eight retimed pipeline stages reduce the
/// per-cycle path to one slice.
fn ac_netlist(library: &CellLibrary) -> GateCount {
    let mut slice = GateCount::new();
    slice.merge_series(&blocks::xor_vector(9, library));
    slice.merge_series(&blocks::popcount(9, library));
    slice.merge_series(&blocks::comparator(4, library));
    slice.merge_parallel(&blocks::xor_vector(8, library));
    slice.merge_parallel(&blocks::register(1, library));

    let mut total = slice.replicate(u64::from(HW_BURST_LEN));
    // Previous-lane-word register at the head of the chain.
    total.merge_parallel(&blocks::register(9, library));
    total.set_critical_path_ps(slice.critical_path_ps());
    total
}

/// The Fig. 5 processing block plus the shared backtrack logic, for either
/// coefficient style.
fn opt_netlist(library: &CellLibrary, style: CoefficientStyle) -> GateCount {
    // Width of the running path costs: 8 bytes × 9 lanes × max coefficient.
    let (cost_bits, coeff_bits) = match style {
        CoefficientStyle::Fixed => (7u32, 0u32),
        CoefficientStyle::ThreeBit => (10u32, 3u32),
    };

    let mut block = GateCount::new();
    // Byte(i−1) ⊕ Byte(i) feeding the transition POPCNT.
    block.merge_series(&blocks::xor_vector(8, library));
    // The two population counters of Fig. 5.
    block.merge_series(&blocks::popcount(8, library));
    block.merge_parallel(&blocks::popcount(8, library));
    // The four derived cost terms: α·x, α·(9−x), β·(8−y), β·(y+1).
    for _ in 0..4 {
        block.merge_parallel(&blocks::constant_adder(4, library));
    }
    if style == CoefficientStyle::ThreeBit {
        // Programmable coefficients need a 4×3 multiplier per cost term.
        let mult = blocks::multiplier(coeff_bits, 4, library);
        block.merge_series(&mult);
        for _ in 0..3 {
            block.merge_parallel(&mult);
        }
    }
    // Four three-input candidate adders: carry-save stage plus a final
    // carry-propagate adder of the running cost width.
    let csa = blocks::adder(cost_bits, library);
    let cpa = blocks::adder(cost_bits, library);
    let mut candidate = GateCount::new();
    candidate.merge_series(&csa);
    candidate.merge_series(&cpa);
    block.merge_series(&candidate);
    for _ in 0..3 {
        block.merge_parallel(&candidate);
    }
    // Two comparators choosing the cheaper predecessor per node, and the
    // cost-forwarding muxes.
    let cmp = blocks::comparator(cost_bits, library);
    block.merge_series(&cmp);
    block.merge_parallel(&cmp);
    block.merge_parallel(&blocks::mux2(cost_bits, library));
    block.merge_parallel(&blocks::mux2(cost_bits, library));
    // Decision bits stored for the backtrack.
    block.merge_parallel(&blocks::register(2, library));

    let mut total = block.replicate(u64::from(HW_BURST_LEN));
    total.set_critical_path_ps(block.critical_path_ps());

    // Final end-node comparator and the backtrack mux chain (Fig. 6).
    total.merge_parallel(&blocks::comparator(cost_bits, library));
    total.merge_parallel(&blocks::mux2(HW_BURST_LEN, library));
    // Data inversion XORs on the DQ outputs.
    total.merge_parallel(&blocks::xor_vector(8 * HW_BURST_LEN, library));

    // Eight pipeline register stages (the paper adds them at the output and
    // lets retiming distribute them through the chain). Each stage carries
    // the two running costs, the byte, its XOR with the neighbour and the
    // accumulated decision bits.
    let stage_bits = 2 * cost_bits + 8 + 8 + 2 * HW_BURST_LEN;
    let pipeline = blocks::register(stage_bits, library).replicate(u64::from(HW_BURST_LEN));
    total.merge_parallel(&pipeline);

    if style == CoefficientStyle::ThreeBit {
        // Coefficient holding registers.
        total.merge_parallel(&blocks::register(2 * coeff_bits, library));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::generic_32nm()
    }

    #[test]
    fn table1_set_order_and_labels() {
        let set = EncoderDesign::table1_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].label(), "DBI DC");
        assert_eq!(set[3].to_string(), "DBI OPT (3-Bit Coeff.)");
    }

    #[test]
    fn area_ordering_matches_table1() {
        // Table I: DC < AC < OPT(Fixed) < OPT(3-bit).
        let lib = lib();
        let areas: Vec<f64> = EncoderDesign::table1_set()
            .iter()
            .map(|d| d.netlist(&lib).area_um2(&lib))
            .collect();
        for pair in areas.windows(2) {
            assert!(pair[0] < pair[1], "area ordering violated: {areas:?}");
        }
    }

    #[test]
    fn conventional_encoders_are_an_order_of_magnitude_smaller_than_opt() {
        let lib = lib();
        let dc = EncoderDesign::Dc.netlist(&lib).area_um2(&lib);
        let opt = EncoderDesign::OptFixed.netlist(&lib).area_um2(&lib);
        assert!(
            opt / dc > 5.0,
            "OPT(Fixed)/DC area ratio {:.1} too small",
            opt / dc
        );
        assert!(
            opt / dc < 40.0,
            "OPT(Fixed)/DC area ratio {:.1} implausibly large",
            opt / dc
        );
    }

    #[test]
    fn timing_ordering_matches_table1() {
        // DC and AC are faster than OPT(Fixed), which is faster than the
        // configurable-coefficient design.
        let lib = lib();
        let clock = |d: EncoderDesign| d.netlist(&lib).max_clock_ghz(&lib);
        assert!(clock(EncoderDesign::Dc) > clock(EncoderDesign::OptFixed));
        assert!(clock(EncoderDesign::Ac) > clock(EncoderDesign::OptFixed));
        assert!(clock(EncoderDesign::OptFixed) > clock(EncoderDesign::OptConfigurable));
    }

    #[test]
    fn simple_and_fixed_designs_meet_gddr5x_timing_the_configurable_one_does_not() {
        // The paper's headline hardware result: DC, AC and OPT(Fixed) close
        // 1.5 GHz (12 Gbps), the 3-bit coefficient design does not.
        let lib = lib();
        let clock = |d: EncoderDesign| d.netlist(&lib).max_clock_ghz(&lib);
        for design in [
            EncoderDesign::Dc,
            EncoderDesign::Ac,
            EncoderDesign::OptFixed,
        ] {
            assert!(
                clock(design) >= 1.5,
                "{design} should meet 1.5 GHz, got {:.2} GHz",
                clock(design)
            );
        }
        assert!(
            clock(EncoderDesign::OptConfigurable) < 1.5,
            "the 3-bit coefficient design should miss 1.5 GHz, got {:.2} GHz",
            clock(EncoderDesign::OptConfigurable)
        );
    }

    #[test]
    fn configurable_design_carries_multipliers() {
        use crate::cells::CellKind;
        let lib = lib();
        let fixed = EncoderDesign::OptFixed.netlist(&lib);
        let conf = EncoderDesign::OptConfigurable.netlist(&lib);
        assert!(conf.count(CellKind::And2) > fixed.count(CellKind::And2));
        assert!(conf.total_cells() > fixed.total_cells());
    }
}
