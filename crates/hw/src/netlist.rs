//! Gate inventories and the netlist-level area/power arithmetic.
//!
//! A [`GateCount`] is the structural summary of a combinational or
//! sequential block: how many instances of each cell class it contains and
//! how deep its critical path is. Area, leakage and switching energy follow
//! directly from the cell library; the synthesis-style report in
//! [`crate::synthesis`] combines them with a clock frequency and an
//! activity factor.

use crate::cells::{CellKind, CellLibrary};
use core::fmt;
use core::ops::{Add, AddAssign};
use std::collections::BTreeMap;

/// A bag of standard cells plus the block's critical-path delay.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateCount {
    cells: BTreeMap<CellKind, u64>,
    critical_path_ps: f64,
}

impl GateCount {
    /// An empty inventory.
    #[must_use]
    pub fn new() -> Self {
        GateCount::default()
    }

    /// Adds `count` instances of a cell class.
    pub fn add_cells(&mut self, kind: CellKind, count: u64) {
        if count > 0 {
            *self.cells.entry(kind).or_insert(0) += count;
        }
    }

    /// Builder-style variant of [`GateCount::add_cells`].
    #[must_use]
    pub fn with(mut self, kind: CellKind, count: u64) -> Self {
        self.add_cells(kind, count);
        self
    }

    /// Number of instances of one cell class.
    #[must_use]
    pub fn count(&self, kind: CellKind) -> u64 {
        self.cells.get(&kind).copied().unwrap_or(0)
    }

    /// Total number of cell instances.
    #[must_use]
    pub fn total_cells(&self) -> u64 {
        self.cells.values().sum()
    }

    /// The critical-path delay through this block, in ps.
    #[must_use]
    pub const fn critical_path_ps(&self) -> f64 {
        self.critical_path_ps
    }

    /// Records the critical path of this block (keeps the maximum of the
    /// current and the supplied value).
    pub fn set_critical_path_ps(&mut self, delay_ps: f64) {
        if delay_ps > self.critical_path_ps {
            self.critical_path_ps = delay_ps;
        }
    }

    /// Builder-style variant of [`GateCount::set_critical_path_ps`].
    #[must_use]
    pub fn with_critical_path_ps(mut self, delay_ps: f64) -> Self {
        self.set_critical_path_ps(delay_ps);
        self
    }

    /// Merges another inventory whose logic operates **in parallel** with
    /// this one: cells add up, the critical path is the maximum of the two.
    pub fn merge_parallel(&mut self, other: &GateCount) {
        for (&kind, &count) in &other.cells {
            self.add_cells(kind, count);
        }
        self.set_critical_path_ps(other.critical_path_ps);
    }

    /// Merges another inventory whose logic operates **in series** after
    /// this one: cells add up and the critical paths add up too.
    pub fn merge_series(&mut self, other: &GateCount) {
        for (&kind, &count) in &other.cells {
            self.add_cells(kind, count);
        }
        self.critical_path_ps += other.critical_path_ps;
    }

    /// Returns `n` copies of this block operating in parallel.
    #[must_use]
    pub fn replicate(&self, n: u64) -> GateCount {
        let mut result = GateCount::new();
        for (&kind, &count) in &self.cells {
            result.add_cells(kind, count * n);
        }
        result.critical_path_ps = self.critical_path_ps;
        result
    }

    /// Total layout area in µm² under the given library.
    #[must_use]
    pub fn area_um2(&self, library: &CellLibrary) -> f64 {
        self.cells
            .iter()
            .map(|(&kind, &count)| library.params(kind).area_um2 * count as f64)
            .sum()
    }

    /// Total leakage power in µW under the given library.
    #[must_use]
    pub fn leakage_uw(&self, library: &CellLibrary) -> f64 {
        self.cells
            .iter()
            .map(|(&kind, &count)| library.params(kind).leakage_uw * count as f64)
            .sum()
    }

    /// Switching energy of one evaluation of the whole block, in fJ,
    /// assuming the fraction `activity` of cells toggles per evaluation.
    #[must_use]
    pub fn switch_energy_fj(&self, library: &CellLibrary, activity: f64) -> f64 {
        let activity = activity.clamp(0.0, 1.0);
        self.cells
            .iter()
            .map(|(&kind, &count)| library.params(kind).switch_energy_fj * count as f64)
            .sum::<f64>()
            * activity
    }

    /// Maximum clock frequency in GHz for a register-bounded path through
    /// this block (critical path + setup).
    #[must_use]
    pub fn max_clock_ghz(&self, library: &CellLibrary) -> f64 {
        let period_ps = self.critical_path_ps + library.setup_ps();
        if period_ps <= 0.0 {
            f64::INFINITY
        } else {
            1000.0 / period_ps
        }
    }

    /// Iterates over `(cell kind, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, u64)> + '_ {
        self.cells.iter().map(|(&k, &c)| (k, c))
    }
}

impl Add for GateCount {
    type Output = GateCount;

    fn add(mut self, rhs: GateCount) -> GateCount {
        self.merge_parallel(&rhs);
        self
    }
}

impl AddAssign for GateCount {
    fn add_assign(&mut self, rhs: GateCount) {
        self.merge_parallel(&rhs);
    }
}

impl fmt::Display for GateCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells, critical path {:.0} ps",
            self.total_cells(),
            self.critical_path_ps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GateCount {
        GateCount::new()
            .with(CellKind::FullAdder, 7)
            .with(CellKind::Xor2, 8)
            .with_critical_path_ps(120.0)
    }

    #[test]
    fn counting_and_totals() {
        let g = sample();
        assert_eq!(g.count(CellKind::FullAdder), 7);
        assert_eq!(g.count(CellKind::Dff), 0);
        assert_eq!(g.total_cells(), 15);
        assert_eq!(g.iter().count(), 2);
        assert!(g.to_string().contains("15 cells"));
    }

    #[test]
    fn adding_zero_cells_is_a_no_op() {
        let mut g = GateCount::new();
        g.add_cells(CellKind::Inverter, 0);
        assert_eq!(g.total_cells(), 0);
    }

    #[test]
    fn parallel_merge_takes_the_max_path_series_merge_adds() {
        let a = sample(); // 120 ps
        let b = GateCount::new()
            .with(CellKind::Mux2, 2)
            .with_critical_path_ps(80.0);
        let mut parallel = a.clone();
        parallel.merge_parallel(&b);
        assert_eq!(parallel.total_cells(), 17);
        assert!((parallel.critical_path_ps() - 120.0).abs() < 1e-9);

        let mut series = a.clone();
        series.merge_series(&b);
        assert!((series.critical_path_ps() - 200.0).abs() < 1e-9);

        let summed = a.clone() + b.clone();
        assert_eq!(summed.total_cells(), 17);
        let mut assigned = a;
        assigned += b;
        assert_eq!(assigned.total_cells(), 17);
    }

    #[test]
    fn replication_scales_cells_not_delay() {
        let g = sample().replicate(8);
        assert_eq!(g.count(CellKind::FullAdder), 56);
        assert!((g.critical_path_ps() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn area_leakage_energy_follow_the_library() {
        let lib = CellLibrary::generic_32nm();
        let g = GateCount::new().with(CellKind::FullAdder, 10);
        let fa = lib.params(CellKind::FullAdder);
        assert!((g.area_um2(&lib) - 10.0 * fa.area_um2).abs() < 1e-9);
        assert!((g.leakage_uw(&lib) - 10.0 * fa.leakage_uw).abs() < 1e-9);
        assert!((g.switch_energy_fj(&lib, 0.5) - 5.0 * fa.switch_energy_fj).abs() < 1e-9);
        // Activity outside [0, 1] is clamped.
        assert!((g.switch_energy_fj(&lib, 2.0) - 10.0 * fa.switch_energy_fj).abs() < 1e-9);
    }

    #[test]
    fn max_clock_uses_path_plus_setup() {
        let lib = CellLibrary::generic_32nm();
        let g = GateCount::new().with_critical_path_ps(965.0);
        let expected = 1000.0 / (965.0 + lib.setup_ps());
        assert!((g.max_clock_ghz(&lib) - expected).abs() < 1e-9);
        let empty = GateCount::new();
        assert!(empty.max_clock_ghz(&lib).is_finite());
    }

    #[test]
    fn critical_path_keeps_the_maximum() {
        let mut g = GateCount::new();
        g.set_critical_path_ps(50.0);
        g.set_critical_path_ps(30.0);
        assert!((g.critical_path_ps() - 50.0).abs() < 1e-9);
    }
}
