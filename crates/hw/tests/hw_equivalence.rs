//! Property test, driven by a seeded deterministic RNG: the Fig. 5 hardware
//! datapath is functionally equivalent to the software shortest-path encoder
//! for every burst, bus state and 3-bit coefficient pair.

use dbi_core::schemes::{DbiEncoder, OptEncoder};
use dbi_core::{Burst, BusState, CostWeights, LaneWord};
use dbi_hw::PipelineEncoder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Cases {
    rng: StdRng,
}

impl Cases {
    fn new(seed: u64) -> Self {
        Cases {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    fn burst(&mut self) -> Burst {
        let len = 1 + (self.next_u64() as usize) % 12;
        let bytes: Vec<u8> = (0..len).map(|_| (self.next_u64() >> 56) as u8).collect();
        Burst::new(bytes).expect("length is at least one")
    }

    fn state(&mut self) -> BusState {
        let raw = (self.next_u64() % 512) as u16;
        BusState::new(LaneWord::new(raw).expect("raw is below 512"))
    }

    fn coefficients(&mut self) -> (u8, u8) {
        loop {
            let alpha = (self.next_u64() % 8) as u8;
            let beta = (self.next_u64() % 8) as u8;
            if alpha != 0 || beta != 0 {
                return (alpha, beta);
            }
        }
    }
}

const CASES: usize = 512;

#[test]
fn hardware_equals_software_for_all_coefficients() {
    let mut cases = Cases::new(0x0DB1_4001);
    for _ in 0..CASES {
        let (burst, state) = (cases.burst(), cases.state());
        let (alpha, beta) = cases.coefficients();
        let hw = PipelineEncoder::with_coefficients(alpha, beta);
        let sw = OptEncoder::new(CostWeights::new(u32::from(alpha), u32::from(beta)).unwrap());
        let hw_encoded = hw.encode(&burst, &state);
        let sw_encoded = sw.encode(&burst, &state);
        // Identical masks, not merely identical costs: the hardware mirrors
        // the reference tie-breaking exactly.
        assert_eq!(hw_encoded.mask(), sw_encoded.mask());
        assert_eq!(hw_encoded, sw_encoded);
    }
}

#[test]
fn hardware_trace_cost_matches_the_weighted_activity() {
    let mut cases = Cases::new(0x0DB1_4002);
    for _ in 0..CASES {
        let (burst, state) = (cases.burst(), cases.state());
        let (alpha, beta) = cases.coefficients();
        let hw = PipelineEncoder::with_coefficients(alpha, beta);
        let trace = hw.encode_trace(&burst, &state);
        let encoded = hw.encode(&burst, &state);
        assert_eq!(
            u64::from(trace.total_cost),
            encoded.cost(&state, &hw.weights())
        );
        assert_eq!(trace.decisions.len(), burst.len());
    }
}

#[test]
fn hardware_is_lossless() {
    let mut cases = Cases::new(0x0DB1_4003);
    for _ in 0..CASES {
        let (burst, state) = (cases.burst(), cases.state());
        let encoded = PipelineEncoder::fixed().encode(&burst, &state);
        assert_eq!(encoded.decode(), burst);
    }
}
