//! Property test: the Fig. 5 hardware datapath is functionally equivalent
//! to the software shortest-path encoder for every burst, bus state and
//! 3-bit coefficient pair.

use dbi_core::schemes::{DbiEncoder, OptEncoder};
use dbi_core::{Burst, BusState, CostWeights, LaneWord};
use dbi_hw::PipelineEncoder;
use proptest::prelude::*;

fn burst_strategy() -> impl Strategy<Value = Burst> {
    proptest::collection::vec(any::<u8>(), 1..=12).prop_map(|bytes| Burst::new(bytes).unwrap())
}

fn state_strategy() -> impl Strategy<Value = BusState> {
    (0u16..512).prop_map(|raw| BusState::new(LaneWord::new(raw).unwrap()))
}

fn coefficient_strategy() -> impl Strategy<Value = (u8, u8)> {
    (0u8..=7, 0u8..=7).prop_filter("coefficients must not both be zero", |(a, b)| *a != 0 || *b != 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn hardware_equals_software_for_all_coefficients(
        burst in burst_strategy(),
        state in state_strategy(),
        (alpha, beta) in coefficient_strategy(),
    ) {
        let hw = PipelineEncoder::with_coefficients(alpha, beta);
        let sw = OptEncoder::new(CostWeights::new(u32::from(alpha), u32::from(beta)).unwrap());
        let hw_encoded = hw.encode(&burst, &state);
        let sw_encoded = sw.encode(&burst, &state);
        // Identical masks, not merely identical costs: the hardware mirrors
        // the reference tie-breaking exactly.
        prop_assert_eq!(hw_encoded.mask(), sw_encoded.mask());
        prop_assert_eq!(hw_encoded, sw_encoded);
    }

    #[test]
    fn hardware_trace_cost_matches_the_weighted_activity(
        burst in burst_strategy(),
        state in state_strategy(),
        (alpha, beta) in coefficient_strategy(),
    ) {
        let hw = PipelineEncoder::with_coefficients(alpha, beta);
        let trace = hw.encode_trace(&burst, &state);
        let encoded = hw.encode(&burst, &state);
        prop_assert_eq!(
            u64::from(trace.total_cost),
            encoded.cost(&state, &hw.weights())
        );
        prop_assert_eq!(trace.decisions.len(), burst.len());
    }

    #[test]
    fn hardware_is_lossless(burst in burst_strategy(), state in state_strategy()) {
        let encoded = PipelineEncoder::fixed().encode(&burst, &state);
        prop_assert_eq!(encoded.decode(), burst);
    }
}
