//! Experiment E1 — Fig. 2: the worked shortest-path example.
//!
//! Reproduces the numbers printed in Fig. 2 of the paper for its example
//! burst: the DBI DC encoding (26 zeros / 42 transitions), the DBI AC
//! encoding (43 zeros / 22 transitions), the optimal cost of 52 with
//! α = β = 1, the edge weights out of the start node (8 and 10) and the
//! Pareto-optimal encoding options.

use crate::report::Table;
use dbi_core::graph::{Trellis, TrellisNode};
use dbi_core::schemes::{AcEncoder, DcEncoder, OptEncoder};
use dbi_core::{Burst, BusState, CostBreakdown, CostWeights, DbiEncoder, ParetoFront};

/// The reproduced quantities of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Zeros/transitions of the DBI DC encoding of the example burst.
    pub dc: CostBreakdown,
    /// Zeros/transitions of the DBI AC encoding of the example burst.
    pub ac: CostBreakdown,
    /// Zeros/transitions of the optimal encoding with α = β = 1.
    pub opt: CostBreakdown,
    /// Total cost of the optimal encoding (zeros + transitions, α = β = 1).
    pub opt_cost: u64,
    /// Weight of the start edge into the non-inverted first byte.
    pub start_edge_plain: u64,
    /// Weight of the start edge into the inverted first byte.
    pub start_edge_inverted: u64,
    /// The Pareto-optimal (zeros, transitions) pairs of the example burst.
    pub pareto: Vec<(u64, u64)>,
}

impl Fig2Result {
    /// Renders the result as a printable table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Fig. 2 — optimal DBI encoding as a shortest-path problem (example burst)",
            vec![
                "quantity".into(),
                "zeros (DC)".into(),
                "transitions (AC)".into(),
                "cost".into(),
            ],
        );
        let mut row = |name: &str, b: CostBreakdown| {
            table.push_row(vec![
                name.into(),
                b.zeros.to_string(),
                b.transitions.to_string(),
                (b.zeros + b.transitions).to_string(),
            ]);
        };
        row("DBI DC", self.dc);
        row("DBI AC", self.ac);
        row("DBI OPT (alpha=beta=1)", self.opt);
        for (zeros, transitions) in &self.pareto {
            table.push_row(vec![
                "pareto option".into(),
                zeros.to_string(),
                transitions.to_string(),
                (zeros + transitions).to_string(),
            ]);
        }
        table
    }
}

/// Runs the Fig. 2 experiment on the paper's example burst.
#[must_use]
pub fn run() -> Fig2Result {
    let burst = Burst::paper_example();
    let state = BusState::idle();
    let weights = CostWeights::FIXED;

    let dc = DcEncoder::new().encode(&burst, &state).breakdown(&state);
    let ac = AcEncoder::new().encode(&burst, &state).breakdown(&state);
    let opt_encoded = OptEncoder::new(weights).encode(&burst, &state);
    let opt = opt_encoded.breakdown(&state);

    let trellis = Trellis::build(&burst, &state, weights);
    let start_edge_plain = trellis
        .edge_weight(
            TrellisNode::Start,
            TrellisNode::Byte {
                index: 0,
                inverted: false,
            },
        )
        .expect("the start node always has an edge to byte 0");
    let start_edge_inverted = trellis
        .edge_weight(
            TrellisNode::Start,
            TrellisNode::Byte {
                index: 0,
                inverted: true,
            },
        )
        .expect("the start node always has an edge to byte 0 (inverted)");

    let pareto = ParetoFront::of_burst(&burst, &state)
        .expect("the example burst is 8 bytes, well inside the exhaustive limit")
        .points()
        .iter()
        .map(|p| (p.zeros(), p.transitions()))
        .collect();

    Fig2Result {
        dc,
        ac,
        opt,
        opt_cost: opt.weighted(&weights),
        start_edge_plain,
        start_edge_inverted,
        pareto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_published_numbers() {
        let result = run();
        assert_eq!(result.dc, CostBreakdown::new(26, 42));
        assert_eq!(result.ac, CostBreakdown::new(43, 22));
        assert_eq!(result.opt_cost, 52);
        assert_eq!(result.start_edge_plain, 8);
        assert_eq!(result.start_edge_inverted, 10);
    }

    #[test]
    fn pareto_front_contains_the_balanced_options() {
        let result = run();
        for pair in [(27, 28), (28, 24), (29, 23)] {
            assert!(
                result.pareto.contains(&pair),
                "missing {pair:?} in {:?}",
                result.pareto
            );
        }
        // The extremes found by DC and AC are on the front too.
        assert!(result.pareto.contains(&(26, 42)));
        assert!(result.pareto.contains(&(43, 22)));
    }

    #[test]
    fn table_rendering_includes_every_scheme() {
        let table = run().to_table();
        let text = table.to_string();
        assert!(text.contains("DBI DC"));
        assert!(text.contains("DBI AC"));
        assert!(text.contains("DBI OPT"));
        assert!(table.len() >= 3 + 5);
    }
}
