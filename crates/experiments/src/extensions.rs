//! Extension experiments beyond the paper's evaluation.
//!
//! The paper evaluates on uniformly random bursts. These extensions apply
//! the same methodology to structured synthetic workloads (zero-heavy,
//! floating-point, text, framebuffer, correlated data) and to a full
//! memory-channel simulation, to show how the advantage of optimal DBI
//! coding shifts with data statistics. They are clearly labelled as
//! extensions in EXPERIMENTS.md and make no claims about the paper's own
//! numbers.

use crate::report::{fmt_f64, Table};
use dbi_core::{Burst, BusState, CostBreakdown, DbiEncoder, Scheme};
use dbi_mem::{ChannelConfig, MemoryController};
use dbi_phy::{fig7_operating_point, InterfaceEnergyModel};
use dbi_workloads::standard_suite;

/// Interface energy per burst of one scheme on one workload, plus its
/// saving relative to RAW and to the best conventional scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRow {
    /// Workload name (from `dbi_workloads::standard_suite`).
    pub workload: String,
    /// `(scheme name, mean interface energy per burst in pJ)`.
    pub energies_pj: Vec<(String, f64)>,
}

impl WorkloadRow {
    /// Mean energy of the named scheme, if present.
    #[must_use]
    pub fn energy_of(&self, name: &str) -> Option<f64> {
        self.energies_pj
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| *e)
    }

    /// Relative saving of OPT(Fixed) versus the best of DC and AC.
    #[must_use]
    pub fn opt_saving_vs_conventional(&self) -> f64 {
        let (Some(opt), Some(dc), Some(ac)) = (
            self.energy_of("DBI OPT (Fixed)"),
            self.energy_of("DBI DC"),
            self.energy_of("DBI AC"),
        ) else {
            return 0.0;
        };
        let best = dc.min(ac);
        if best > 0.0 {
            (best - opt) / best
        } else {
            0.0
        }
    }
}

/// The workload-sensitivity extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStudy {
    /// One row per workload.
    pub rows: Vec<WorkloadRow>,
    /// The operating point used (data rate in Gbps).
    pub gbps: f64,
}

impl WorkloadStudy {
    /// Renders the study as a printable table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["workload".to_owned()];
        if let Some(first) = self.rows.first() {
            headers.extend(first.energies_pj.iter().map(|(n, _)| format!("{n} (pJ)")));
        }
        headers.push("OPT(Fixed) saving vs best DC/AC".to_owned());
        let mut table = Table::new(
            format!(
                "Extension — workload sensitivity at {} Gbps, POD135, 3 pF",
                self.gbps
            ),
            headers,
        );
        for row in &self.rows {
            let mut cells = vec![row.workload.clone()];
            cells.extend(row.energies_pj.iter().map(|(_, e)| fmt_f64(*e)));
            cells.push(format!("{:.1}%", row.opt_saving_vs_conventional() * 100.0));
            table.push_row(cells);
        }
        table
    }
}

/// The schemes compared by the extension experiments.
fn extension_schemes() -> Vec<Scheme> {
    vec![Scheme::Raw, Scheme::Dc, Scheme::Ac, Scheme::OptFixed]
}

/// Evaluates every scheme on every workload of the standard synthetic suite
/// at the Fig. 7 operating point (`gbps`, POD135, 3 pF).
#[must_use]
pub fn workload_study(seed: u64, gbps: f64) -> WorkloadStudy {
    let model: InterfaceEnergyModel =
        fig7_operating_point(gbps.max(0.1)).expect("rate is clamped to a positive value");
    let state = BusState::idle();
    let rows = standard_suite(seed)
        .into_iter()
        .map(|(workload, bursts)| {
            let energies_pj = extension_schemes()
                .into_iter()
                .map(|scheme| {
                    let activity: CostBreakdown = bursts
                        .iter()
                        .map(|b: &Burst| scheme.encode(b, &state).breakdown(&state))
                        .sum();
                    let mean_j = model.burst_energy_j(&activity) / bursts.len().max(1) as f64;
                    (scheme.name().to_owned(), mean_j * 1e12)
                })
                .collect();
            WorkloadRow {
                workload,
                energies_pj,
            }
        })
        .collect();
    WorkloadStudy { rows, gbps }
}

/// End-to-end channel comparison: writes the same pseudo-random buffer
/// through a GDDR5X channel under every scheme and reports the total
/// channel energy (interface + encoder) in nanojoules per scheme.
#[must_use]
pub fn channel_study(buffer_bytes: usize) -> Vec<(String, f64)> {
    let encoder_energies = crate::fig8::EncoderEnergies::from_synthesis();
    let mut data = vec![0u8; buffer_bytes.max(32) / 32 * 32];
    let mut seed = 0x00C0_FFEEu32;
    for byte in &mut data {
        seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        *byte = (seed >> 24) as u8;
    }
    extension_schemes()
        .into_iter()
        .map(|scheme| {
            let encoder_j = match scheme {
                Scheme::Dc => encoder_energies.dc_j,
                Scheme::Ac => encoder_energies.ac_j,
                Scheme::OptFixed => encoder_energies.opt_fixed_j,
                _ => 0.0,
            };
            let mut controller = MemoryController::new(ChannelConfig::gddr5x(), scheme)
                .with_encoding_energy(encoder_j);
            controller
                .write_buffer(0, &data)
                .expect("the buffer is sized to the access granularity");
            (
                scheme.name().to_owned(),
                controller.totals().total_energy_j() * 1e9,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_study_covers_the_suite() {
        let study = workload_study(3, 12.0);
        assert_eq!(study.rows.len(), 6);
        for row in &study.rows {
            assert_eq!(row.energies_pj.len(), 4);
            assert!(row.energy_of("RAW").unwrap() > 0.0);
            assert!(row.energy_of("nope").is_none());
        }
        let table = study.to_table();
        assert_eq!(table.len(), 6);
        assert!(table.to_string().contains("framebuffer"));
    }

    #[test]
    fn opt_fixed_never_loses_to_both_conventional_schemes() {
        let study = workload_study(3, 12.0);
        for row in &study.rows {
            assert!(
                row.opt_saving_vs_conventional() >= -1e-9,
                "{}: OPT(Fixed) should never be worse than the best of DC/AC",
                row.workload
            );
        }
    }

    #[test]
    fn zero_heavy_data_is_cheaper_than_random_for_every_scheme() {
        let study = workload_study(3, 12.0);
        let energy = |workload: &str| {
            study
                .rows
                .iter()
                .find(|r| r.workload == workload)
                .and_then(|r| r.energy_of("DBI OPT (Fixed)"))
                .unwrap()
        };
        assert!(energy("zero-heavy") < energy("uniform random") * 1.2);
    }

    #[test]
    fn channel_study_orders_raw_worst() {
        let results = channel_study(32 * 64);
        assert_eq!(results.len(), 4);
        let get = |name: &str| {
            results
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, e)| *e)
                .unwrap()
        };
        assert!(get("DBI OPT (Fixed)") < get("RAW"));
        assert!(get("DBI DC") < get("RAW"));
    }
}
