//! # dbi-experiments
//!
//! The experiment harness that regenerates every table and figure of
//! *"Optimal DC/AC Data Bus Inversion Coding"* (DATE 2018), plus a small
//! set of clearly-labelled extension studies.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`fig2`] | Fig. 2 — the worked shortest-path example and its Pareto front |
//! | [`fig3`] | Fig. 3 — energy/burst vs. AC cost for RAW/DC/AC/OPT, and Fig. 4 with OPT(Fixed) |
//! | [`table1`] | Table I — synthesis results of the four encoder designs |
//! | [`fig7`] | Fig. 7 — interface energy vs. data rate, normalised to RAW |
//! | [`fig8`] | Fig. 8 — energy incl. encoder overhead, normalised to best of DC/AC |
//! | [`extensions`] | workload-sensitivity and memory-channel studies (not in the paper) |
//! | [`ablation`] | coefficient-resolution and burst-length ablations (not in the paper) |
//!
//! Each module exposes a `run*` function returning a typed result plus a
//! `to_table` rendering; the `reproduce` binary runs everything at paper
//! scale and prints the tables (use `--csv` for machine-readable output).
//!
//! ```
//! let fig2 = dbi_experiments::fig2::run();
//! assert_eq!(fig2.opt_cost, 52);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod extensions;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod report;
pub mod table1;

pub use report::Table;

/// Identifier of one reproducible paper artefact, used by the `reproduce`
/// binary's command-line interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Experiment {
    /// Fig. 2 — the worked example.
    Fig2,
    /// Fig. 3 — coefficient sweep without the fixed variant.
    Fig3,
    /// Fig. 4 — coefficient sweep with the fixed variant.
    Fig4,
    /// Table I — synthesis results.
    Table1,
    /// Fig. 7 — energy vs. data rate.
    Fig7,
    /// Fig. 8 — energy incl. encoding overhead vs. data rate and load.
    Fig8,
    /// The extension studies.
    Extensions,
    /// The ablation studies (coefficient resolution, burst length).
    Ablation,
}

impl Experiment {
    /// All experiments in presentation order.
    #[must_use]
    pub const fn all() -> [Experiment; 8] {
        [
            Experiment::Fig2,
            Experiment::Fig3,
            Experiment::Fig4,
            Experiment::Table1,
            Experiment::Fig7,
            Experiment::Fig8,
            Experiment::Extensions,
            Experiment::Ablation,
        ]
    }

    /// Parses a command-line name such as `fig3` or `table1`.
    #[must_use]
    pub fn parse(name: &str) -> Option<Experiment> {
        match name.to_ascii_lowercase().as_str() {
            "fig2" => Some(Experiment::Fig2),
            "fig3" => Some(Experiment::Fig3),
            "fig4" => Some(Experiment::Fig4),
            "table1" | "tab1" => Some(Experiment::Table1),
            "fig7" => Some(Experiment::Fig7),
            "fig8" => Some(Experiment::Fig8),
            "extensions" | "ext" => Some(Experiment::Extensions),
            "ablation" | "abl" => Some(Experiment::Ablation),
            _ => None,
        }
    }

    /// The command-line name of the experiment.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Experiment::Fig2 => "fig2",
            Experiment::Fig3 => "fig3",
            Experiment::Fig4 => "fig4",
            Experiment::Table1 => "table1",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Extensions => "extensions",
            Experiment::Ablation => "ablation",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_round_trip() {
        for experiment in Experiment::all() {
            assert_eq!(Experiment::parse(experiment.name()), Some(experiment));
        }
        assert_eq!(Experiment::parse("TABLE1"), Some(Experiment::Table1));
        assert_eq!(Experiment::parse("fig9"), None);
    }
}
