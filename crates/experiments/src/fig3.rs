//! Experiments E2/E3 — Figs. 3 and 4: energy per burst versus the AC cost.
//!
//! The paper sweeps the cost per transition α from 0 to 1 (with β = 1 − α)
//! over 10 000 random bursts and plots the mean cost per burst of RAW,
//! DBI DC, DBI AC and DBI OPT (Fig. 3), adding the fixed-coefficient
//! variant in Fig. 4. The headline numbers are a ≈ 6.75 % peak advantage of
//! the optimal scheme over the best conventional one near the DC/AC
//! crossover (α ≈ 0.56), shrinking only marginally (to ≈ 6.58 %) when the
//! coefficients are fixed to α = β = 1.

use crate::report::{fmt_f64, Table};
use dbi_core::analysis::{peak_advantage, sweep_alpha, SweepPoint};
use dbi_core::{Burst, CostWeights, Scheme};
use dbi_workloads::{BurstSource, UniformRandomBursts};

/// Resolution (denominator) used to quantise α into integer coefficients
/// for the tunable optimal encoder during the sweep.
pub const SWEEP_RESOLUTION: u32 = 64;

/// The result of the Fig. 3 / Fig. 4 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Mean cost per burst of every scheme at every sweep point.
    pub points: Vec<SweepPoint>,
    /// Number of bursts evaluated per point.
    pub burst_count: usize,
}

impl SweepResult {
    /// Peak relative advantage of the tunable optimal scheme over the best
    /// conventional scheme, as `(alpha, saving fraction)`.
    #[must_use]
    pub fn peak_opt_advantage(&self) -> (f64, f64) {
        peak_advantage(&self.points, "DBI OPT").unwrap_or((0.0, 0.0))
    }

    /// Peak relative advantage of the fixed-coefficient scheme over the
    /// best conventional scheme.
    #[must_use]
    pub fn peak_fixed_advantage(&self) -> (f64, f64) {
        peak_advantage(&self.points, "DBI OPT (Fixed)").unwrap_or((0.0, 0.0))
    }

    /// The α at which DBI AC becomes cheaper than DBI DC (the crossover the
    /// paper reports at α ≈ 0.56), if it occurs inside the sweep.
    #[must_use]
    pub fn dc_ac_crossover(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| match (p.cost_of("DBI AC"), p.cost_of("DBI DC")) {
                (Some(ac), Some(dc)) => ac < dc,
                _ => false,
            })
            .map(|p| p.alpha)
    }

    /// Largest efficiency loss of the fixed-coefficient scheme relative to
    /// the tunable optimal scheme, as a fraction of the tunable cost (the
    /// shaded area of Fig. 4).
    #[must_use]
    pub fn max_fixed_coefficient_loss(&self) -> f64 {
        self.points
            .iter()
            .filter_map(|p| {
                let opt = p.cost_of("DBI OPT")?;
                let fixed = p.cost_of("DBI OPT (Fixed)")?;
                if opt > 0.0 {
                    Some((fixed - opt) / opt)
                } else {
                    None
                }
            })
            .fold(0.0, f64::max)
    }

    /// Renders the sweep as a printable table (one row per α).
    #[must_use]
    pub fn to_table(&self, title: &str) -> Table {
        let mut headers = vec!["AC cost (alpha)".to_owned(), "DC cost (beta)".to_owned()];
        if let Some(first) = self.points.first() {
            headers.extend(first.mean_costs.iter().map(|(name, _)| name.clone()));
        }
        let mut table = Table::new(title, headers);
        for point in &self.points {
            let mut row = vec![fmt_f64(point.alpha), fmt_f64(point.beta)];
            row.extend(point.mean_costs.iter().map(|(_, cost)| fmt_f64(*cost)));
            table.push_row(row);
        }
        table
    }
}

/// Runs the Fig. 3 sweep (RAW, DC, AC, OPT) over the provided bursts.
#[must_use]
pub fn run_fig3(bursts: &[Burst], steps: usize) -> SweepResult {
    let schemes = vec![
        Scheme::Raw,
        Scheme::Dc,
        Scheme::Ac,
        Scheme::Opt(CostWeights::FIXED),
    ];
    SweepResult {
        points: sweep_alpha(bursts, &schemes, steps, SWEEP_RESOLUTION),
        burst_count: bursts.len(),
    }
}

/// Runs the Fig. 4 sweep (Fig. 3 plus the fixed-coefficient variant) over
/// the provided bursts.
#[must_use]
pub fn run_fig4(bursts: &[Burst], steps: usize) -> SweepResult {
    let schemes = vec![
        Scheme::Raw,
        Scheme::Dc,
        Scheme::Ac,
        Scheme::Opt(CostWeights::FIXED),
        Scheme::OptFixed,
    ];
    SweepResult {
        points: sweep_alpha(bursts, &schemes, steps, SWEEP_RESOLUTION),
        burst_count: bursts.len(),
    }
}

/// Runs both sweeps on the paper's workload: 10 000 uniformly random bursts
/// and 20 sweep steps.
#[must_use]
pub fn run_paper_scale() -> (SweepResult, SweepResult) {
    let bursts = UniformRandomBursts::new().take_bursts(dbi_workloads::random::PAPER_BURST_COUNT);
    (run_fig3(&bursts, 20), run_fig4(&bursts, 20))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bursts() -> Vec<Burst> {
        UniformRandomBursts::with_seed(99).take_bursts(600)
    }

    #[test]
    fn fig3_shapes_match_the_paper() {
        let result = run_fig3(&small_bursts(), 10);
        assert_eq!(result.points.len(), 11);
        assert_eq!(result.burst_count, 600);

        // At alpha = 0 the DC scheme equals OPT; at alpha = 1 the AC scheme does.
        let first = &result.points[0];
        assert!(
            (first.cost_of("DBI DC").unwrap() - first.cost_of("DBI OPT").unwrap()).abs() < 1e-9
        );
        let last = result.points.last().unwrap();
        assert!((last.cost_of("DBI AC").unwrap() - last.cost_of("DBI OPT").unwrap()).abs() < 1e-9);

        // OPT is never above the best conventional scheme, and RAW is never
        // below OPT.
        for p in &result.points {
            let opt = p.cost_of("DBI OPT").unwrap();
            assert!(
                opt <= p.best_conventional().unwrap() + 1e-9,
                "alpha {}",
                p.alpha
            );
            assert!(opt <= p.cost_of("RAW").unwrap() + 1e-9);
        }

        // Peak advantage in the mid-single-digit percent range, near the
        // crossover that itself sits a little past alpha = 0.5.
        let (alpha, saving) = result.peak_opt_advantage();
        assert!((0.02..0.12).contains(&saving), "saving {saving}");
        assert!((0.35..0.8).contains(&alpha), "alpha {alpha}");
        let crossover = result.dc_ac_crossover().unwrap();
        assert!((0.4..0.75).contains(&crossover), "crossover {crossover}");
    }

    #[test]
    fn fig4_fixed_coefficients_lose_little() {
        let result = run_fig4(&small_bursts(), 10);
        // The fixed-coefficient scheme tracks the tunable one closely: the
        // worst-case loss over the sweep is a few percent...
        assert!(result.max_fixed_coefficient_loss() < 0.08);
        // ...and its peak advantage over the conventional schemes is nearly
        // as large as the tunable scheme's.
        let (_, tunable) = result.peak_opt_advantage();
        let (_, fixed) = result.peak_fixed_advantage();
        assert!(fixed > 0.8 * tunable, "fixed {fixed} vs tunable {tunable}");
    }

    #[test]
    fn table_rendering() {
        let result = run_fig3(&small_bursts()[..100], 4);
        let table = result.to_table("Fig. 3");
        assert_eq!(table.len(), 5);
        assert!(table.to_string().contains("DBI OPT"));
        assert!(table.to_csv().lines().count() >= 6);
    }

    #[test]
    fn raw_curve_is_flat() {
        // RAW's mean cost is independent of alpha when alpha + beta = 1 only
        // up to the zero/transition balance of the data; for uniform random
        // bursts both averages are ~32, so the curve is nearly flat.
        let result = run_fig3(&small_bursts(), 5);
        let raw: Vec<f64> = result
            .points
            .iter()
            .map(|p| p.cost_of("RAW").unwrap())
            .collect();
        let min = raw.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = raw.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max - min < 2.0, "RAW curve varies too much: {raw:?}");
    }
}
