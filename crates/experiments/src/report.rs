//! Plain-text and CSV table rendering for the experiment harness.

use core::fmt;

/// A rectangular table of results with a title and column headers.
///
/// The `reproduce` binary prints these tables; `to_csv` produces the same
/// data in a form that can be plotted next to the paper's figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated, so the table always stays
    /// rectangular.
    pub fn push_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as comma-separated values (header line included,
    /// title omitted). Cells containing commas or quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let widths = self.column_widths();
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let rendered: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(cell, width)| format!("{cell:>width$}"))
                .collect();
            writeln!(f, "| {} |", rendered.join(" | "))
        };
        print_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a floating-point value with three decimals (the precision used
/// throughout the reproduced tables).
#[must_use]
pub fn fmt_f64(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["longer".into()]);
        t
    }

    #[test]
    fn rows_are_padded_and_counted() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.rows()[1], vec!["longer".to_owned(), String::new()]);
        assert_eq!(t.title(), "demo");
        assert_eq!(t.headers().len(), 2);
    }

    #[test]
    fn display_is_aligned_markdown() {
        let text = sample().to_string();
        assert!(text.contains("## demo"));
        // Cells are right-aligned to the widest entry of the column.
        assert!(text.contains(" a |"), "header row missing in:\n{text}");
        assert!(text.contains("longer |"));
        assert!(text.contains("|-"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("x", vec!["h".into()]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(2.0), "2.000");
    }
}
