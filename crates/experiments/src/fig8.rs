//! Experiment E6 — Fig. 8: system-level energy including the encoder.
//!
//! Fig. 8 charges the encoder's own energy (Table I) on top of the
//! interface energy and normalises the fixed-coefficient optimal scheme to
//! the better of DBI DC and DBI AC, sweeping both the data rate and the
//! per-lane load (1–8 pF). The paper's conclusions: the fixed-coefficient
//! encoder still saves 5–6 % at the best operating points for 3–8 pF loads,
//! and heavier loads move the best operating point towards lower data
//! rates.

use crate::report::{fmt_f64, Table};
use crate::table1;
use dbi_core::{Burst, BusState, CostBreakdown, DbiEncoder, Scheme};
use dbi_hw::EncoderDesign;
use dbi_phy::{Capacitance, DataRate, InterfaceEnergyModel, PodInterface};
use dbi_workloads::{BurstSource, UniformRandomBursts};

/// Per-burst encoder energies used in the system-level accounting, taken
/// from the Table I synthesis model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderEnergies {
    /// Energy per burst of the DBI DC encoder, in joules.
    pub dc_j: f64,
    /// Energy per burst of the DBI AC encoder, in joules.
    pub ac_j: f64,
    /// Energy per burst of the fixed-coefficient optimal encoder, in joules.
    pub opt_fixed_j: f64,
}

impl EncoderEnergies {
    /// Derives the encoder energies from the Table I synthesis reports.
    #[must_use]
    pub fn from_synthesis() -> Self {
        let rows = table1::run();
        let energy = |design: EncoderDesign| {
            rows.reports
                .iter()
                .find(|r| r.design == design)
                .map(|r| r.energy_per_burst_j())
                .unwrap_or(0.0)
        };
        EncoderEnergies {
            dc_j: energy(EncoderDesign::Dc),
            ac_j: energy(EncoderDesign::Ac),
            opt_fixed_j: energy(EncoderDesign::OptFixed),
        }
    }
}

/// One curve of Fig. 8: a fixed load capacitance swept over data rates.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadCurve {
    /// Load capacitance in pF.
    pub cload_pf: f64,
    /// `(data rate in Gbps, OPT(Fixed) energy normalised to the best of
    /// DC/AC, encoder energy included on both sides)`.
    pub points: Vec<(f64, f64)>,
}

impl LoadCurve {
    /// The operating point with the lowest normalised energy: `(Gbps,
    /// normalised energy)`.
    #[must_use]
    pub fn best_point(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("energies are finite"))
    }

    /// Peak relative saving versus the best conventional scheme (a positive
    /// number means OPT(Fixed) is cheaper).
    #[must_use]
    pub fn peak_saving(&self) -> f64 {
        self.best_point()
            .map(|(_, normalized)| 1.0 - normalized)
            .unwrap_or(0.0)
    }
}

/// The full Fig. 8 result: one curve per load.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// Curves in ascending load order.
    pub curves: Vec<LoadCurve>,
    /// The encoder energies charged per burst.
    pub encoder_energies: EncoderEnergies,
}

impl Fig8Result {
    /// Renders the result as a printable table (rates as rows, loads as
    /// columns).
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["data rate (Gbps)".to_owned()];
        headers.extend(self.curves.iter().map(|c| format!("{} pF", c.cload_pf)));
        let mut table = Table::new(
            "Fig. 8 — OPT(Fixed) energy per burst incl. encoding, normalised to best of DC/AC",
            headers,
        );
        if let Some(first) = self.curves.first() {
            for (i, (gbps, _)) in first.points.iter().enumerate() {
                let mut row = vec![fmt_f64(*gbps)];
                for curve in &self.curves {
                    row.push(fmt_f64(
                        curve.points.get(i).map(|p| p.1).unwrap_or(f64::NAN),
                    ));
                }
                table.push_row(row);
            }
        }
        table
    }
}

/// The loads swept in the paper's Fig. 8, in pF.
#[must_use]
pub fn paper_loads() -> Vec<f64> {
    vec![1.0, 2.0, 3.0, 4.0, 6.0, 8.0]
}

/// Runs the Fig. 8 sweep over the given bursts, rates and loads, charging
/// the supplied per-burst encoder energies.
#[must_use]
pub fn run(
    bursts: &[Burst],
    rates_gbps: &[f64],
    loads_pf: &[f64],
    encoder_energies: EncoderEnergies,
) -> Fig8Result {
    let interface = PodInterface::pod135();
    let state = BusState::idle();
    let activity = |scheme: Scheme| -> CostBreakdown {
        bursts
            .iter()
            .map(|b| scheme.encode(b, &state).breakdown(&state))
            .sum()
    };
    let dc_activity = activity(Scheme::Dc);
    let ac_activity = activity(Scheme::Ac);
    let opt_activity = activity(Scheme::OptFixed);
    let count = bursts.len().max(1) as f64;

    let curves = loads_pf
        .iter()
        .map(|&cload_pf| {
            let points = rates_gbps
                .iter()
                .filter(|&&gbps| gbps > 0.0)
                .map(|&gbps| {
                    let model = InterfaceEnergyModel::new(
                        interface,
                        Capacitance::from_pf(cload_pf),
                        DataRate::from_gbps(gbps).expect("non-positive rates are filtered out"),
                    );
                    let per_burst = |activity: &CostBreakdown, encoder_j: f64| {
                        model.burst_energy_j(activity) / count + encoder_j
                    };
                    let dc = per_burst(&dc_activity, encoder_energies.dc_j);
                    let ac = per_burst(&ac_activity, encoder_energies.ac_j);
                    let opt = per_burst(&opt_activity, encoder_energies.opt_fixed_j);
                    (gbps, opt / dc.min(ac))
                })
                .collect();
            LoadCurve { cload_pf, points }
        })
        .collect();

    Fig8Result {
        curves,
        encoder_energies,
    }
}

/// Runs the experiment at paper scale: 10 000 random bursts, 1–20 Gbps, the
/// paper's six loads, encoder energies from the Table I model.
#[must_use]
pub fn run_paper_scale() -> Fig8Result {
    let bursts = UniformRandomBursts::new().take_bursts(dbi_workloads::random::PAPER_BURST_COUNT);
    run(
        &bursts,
        &crate::fig7::paper_rates(),
        &paper_loads(),
        EncoderEnergies::from_synthesis(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig8Result {
        let bursts = UniformRandomBursts::with_seed(17).take_bursts(500);
        run(
            &bursts,
            &crate::fig7::paper_rates(),
            &paper_loads(),
            EncoderEnergies::from_synthesis(),
        )
    }

    #[test]
    fn produces_one_curve_per_load() {
        let result = small();
        assert_eq!(result.curves.len(), 6);
        for curve in &result.curves {
            assert_eq!(curve.points.len(), 20);
        }
        assert!(result.encoder_energies.opt_fixed_j > result.encoder_energies.dc_j);
    }

    #[test]
    fn meaningful_savings_remain_for_medium_and_large_loads() {
        // The paper: 5–6 % savings at the best operating points for 3–8 pF.
        let result = small();
        for curve in result.curves.iter().filter(|c| c.cload_pf >= 3.0) {
            let saving = curve.peak_saving();
            assert!(
                (0.02..=0.12).contains(&saving),
                "{} pF: peak saving {saving}",
                curve.cload_pf
            );
        }
    }

    #[test]
    fn heavier_loads_move_the_best_operating_point_down() {
        let result = small();
        let best_rate = |pf: f64| {
            result
                .curves
                .iter()
                .find(|c| (c.cload_pf - pf).abs() < 1e-9)
                .and_then(LoadCurve::best_point)
                .map(|(gbps, _)| gbps)
                .unwrap()
        };
        assert!(
            best_rate(8.0) <= best_rate(2.0),
            "8 pF best rate {} should not exceed the 2 pF best rate {}",
            best_rate(8.0),
            best_rate(2.0)
        );
    }

    #[test]
    fn encoder_overhead_eats_part_of_the_gain_at_low_loads_and_rates() {
        // At 1 pF and low data rates the interface energy is small, so the
        // encoder overhead keeps OPT(Fixed) close to (or above) the best
        // conventional scheme.
        let result = small();
        let light = result.curves.iter().find(|c| c.cload_pf == 1.0).unwrap();
        let low_rate = light.points.first().unwrap().1;
        let best = light.best_point().unwrap().1;
        assert!(
            low_rate > best,
            "the curve should improve away from the lowest rate"
        );
    }

    #[test]
    fn table_rendering_has_loads_as_columns() {
        let result = small();
        let table = result.to_table();
        assert_eq!(table.headers().len(), 7);
        assert_eq!(table.len(), 20);
        assert!(table.to_string().contains("8 pF"));
    }
}
