//! Experiment E5 — Fig. 7: interface energy versus data rate.
//!
//! Fig. 7 plots the interface energy per burst of every DBI scheme,
//! normalised to unencoded (RAW) transmission, against the per-pin data
//! rate (0–20 Gbps) for a POD135 interface with 3 pF load. Because the
//! termination energy per zero shrinks with the data rate while the
//! switching energy per transition does not, DBI DC wins at low rates,
//! DBI AC only at very high rates, and the optimal scheme tracks the best
//! of both, with its largest gain in the low teens of Gbps.

use crate::report::{fmt_f64, Table};
use dbi_core::{Burst, BusState, CostBreakdown, DbiEncoder, Scheme};
use dbi_phy::{Capacitance, DataRate, InterfaceEnergyModel, PodInterface};
use dbi_workloads::{BurstSource, UniformRandomBursts};

/// One point of the Fig. 7 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// Per-pin data rate in Gbps.
    pub gbps: f64,
    /// `(scheme name, mean interface energy per burst normalised to RAW)`.
    pub normalized: Vec<(String, f64)>,
}

impl RatePoint {
    /// Normalised energy of the named scheme at this rate, if present.
    #[must_use]
    pub fn of(&self, name: &str) -> Option<f64> {
        self.normalized
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The result of the Fig. 7 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// One entry per swept data rate.
    pub points: Vec<RatePoint>,
    /// The load capacitance used (3 pF in the paper).
    pub cload_pf: f64,
}

impl Fig7Result {
    /// The data rate at which the fixed-coefficient optimal scheme starts
    /// beating DBI DC (the paper reports ≈ 3.8 Gbps).
    #[must_use]
    pub fn opt_fixed_beats_dc_from(&self) -> Option<f64> {
        self.points
            .iter()
            .find(|p| match (p.of("DBI OPT (Fixed)"), p.of("DBI DC")) {
                (Some(fixed), Some(dc)) => fixed < dc - 1e-12,
                _ => false,
            })
            .map(|p| p.gbps)
    }

    /// The data rate with the largest relative gain of OPT (Fixed) over the
    /// best conventional scheme (the paper reports ≈ 14 Gbps for 3 pF).
    #[must_use]
    pub fn best_operating_point(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| {
                let fixed = p.of("DBI OPT (Fixed)")?;
                let best = p.of("DBI DC")?.min(p.of("DBI AC")?);
                Some((p.gbps, (best - fixed) / best))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("savings are finite"))
    }

    /// Renders the sweep as a printable table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["data rate (Gbps)".to_owned()];
        if let Some(first) = self.points.first() {
            headers.extend(first.normalized.iter().map(|(n, _)| n.clone()));
        }
        let mut table = Table::new(
            format!(
                "Fig. 7 — interface energy per burst normalised to RAW (POD135, {} pF)",
                self.cload_pf
            ),
            headers,
        );
        for point in &self.points {
            let mut row = vec![fmt_f64(point.gbps)];
            row.extend(point.normalized.iter().map(|(_, v)| fmt_f64(*v)));
            table.push_row(row);
        }
        table
    }
}

/// Mean per-burst activity of a scheme over the bursts, every burst starting
/// from the idle state (the paper's per-burst boundary condition).
fn mean_activity(scheme: Scheme, bursts: &[Burst]) -> CostBreakdown {
    let state = BusState::idle();
    bursts
        .iter()
        .map(|b| scheme.encode(b, &state).breakdown(&state))
        .sum()
}

/// The schemes plotted in Fig. 7, in plot order.
fn fig7_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Dc,
        Scheme::Ac,
        Scheme::Opt(dbi_core::CostWeights::FIXED),
        Scheme::OptFixed,
    ]
}

/// Runs the Fig. 7 sweep over the given bursts, data rates and load.
///
/// For the tunable "DBI OPT" curve the coefficients are re-derived from the
/// physical energy ratio at every data rate (6-bit quantisation), which is
/// what distinguishes it from the α = β = 1 "OPT (Fixed)" curve.
#[must_use]
pub fn run(bursts: &[Burst], rates_gbps: &[f64], cload_pf: f64) -> Fig7Result {
    let interface = PodInterface::pod135();
    let cload = Capacitance::from_pf(cload_pf);
    let state = BusState::idle();

    // Rate-independent activities.
    let raw_activity = mean_activity(Scheme::Raw, bursts);
    let fixed_activities: Vec<(Scheme, CostBreakdown)> = fig7_schemes()
        .into_iter()
        .filter(|s| !matches!(s, Scheme::Opt(_)))
        .map(|s| (s, mean_activity(s, bursts)))
        .collect();

    let points = rates_gbps
        .iter()
        .filter(|&&gbps| gbps > 0.0)
        .map(|&gbps| {
            let model = InterfaceEnergyModel::new(
                interface,
                cload,
                DataRate::from_gbps(gbps).expect("non-positive rates are filtered out"),
            );
            let raw_energy = model.burst_energy_j(&raw_activity);

            let mut normalized: Vec<(String, f64)> = Vec::new();
            for (scheme, activity) in &fixed_activities {
                normalized.push((
                    scheme.name().to_owned(),
                    model.burst_energy_j(activity) / raw_energy,
                ));
            }
            // The tunable optimal scheme, re-weighted for this operating
            // point. The encoder (and its cost tables) is built once per
            // rate point and prices every burst through the mask fast path.
            let weights = model
                .quantised_weights(6)
                .expect("both energies are positive");
            let tuned = dbi_core::schemes::OptEncoder::new(weights);
            let tuned_activity: CostBreakdown = bursts
                .iter()
                .map(|b| tuned.encode_mask(b, &state).breakdown(b, &state))
                .sum();
            normalized.insert(
                2,
                (
                    "DBI OPT".to_owned(),
                    model.burst_energy_j(&tuned_activity) / raw_energy,
                ),
            );
            RatePoint { gbps, normalized }
        })
        .collect();

    Fig7Result { points, cload_pf }
}

/// The data rates swept in the paper's Fig. 7: 1 to 20 Gbps.
#[must_use]
pub fn paper_rates() -> Vec<f64> {
    (1..=20).map(f64::from).collect()
}

/// Runs the experiment at paper scale: 10 000 random bursts, 1–20 Gbps,
/// 3 pF.
#[must_use]
pub fn run_paper_scale() -> Fig7Result {
    let bursts = UniformRandomBursts::new().take_bursts(dbi_workloads::random::PAPER_BURST_COUNT);
    run(&bursts, &paper_rates(), 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig7Result {
        let bursts = UniformRandomBursts::with_seed(5).take_bursts(500);
        run(&bursts, &paper_rates(), 3.0)
    }

    #[test]
    fn low_rates_favour_dc_high_rates_favour_ac() {
        let result = small();
        let first = &result.points[0];
        let last = result.points.last().unwrap();
        assert!(first.of("DBI DC").unwrap() < first.of("DBI AC").unwrap());
        assert!(last.of("DBI AC").unwrap() < last.of("DBI DC").unwrap());
    }

    #[test]
    fn encoded_schemes_beat_raw_in_their_favourable_regions() {
        let result = small();
        // At 2 Gbps DC is clearly below 1.0; at 20 Gbps AC is below 1.0.
        let low = &result.points[1];
        assert!(low.of("DBI DC").unwrap() < 1.0);
        let high = result.points.last().unwrap();
        assert!(high.of("DBI AC").unwrap() < 1.0);
    }

    #[test]
    fn opt_is_never_above_dc_or_ac() {
        let result = small();
        for p in &result.points {
            let opt = p.of("DBI OPT").unwrap();
            assert!(opt <= p.of("DBI DC").unwrap() + 1e-9, "at {} Gbps", p.gbps);
            assert!(opt <= p.of("DBI AC").unwrap() + 1e-9, "at {} Gbps", p.gbps);
        }
    }

    #[test]
    fn opt_fixed_overtakes_dc_at_a_few_gbps() {
        let result = small();
        let crossover = result
            .opt_fixed_beats_dc_from()
            .expect("a crossover must exist");
        assert!(
            (2.0..=8.0).contains(&crossover),
            "OPT(Fixed) should overtake DC in the single-digit Gbps range, got {crossover}"
        );
    }

    #[test]
    fn best_operating_point_is_in_the_low_teens() {
        let result = small();
        let (gbps, saving) = result.best_operating_point().unwrap();
        assert!(
            (8.0..=18.0).contains(&gbps),
            "best operating point {gbps} Gbps"
        );
        assert!((0.02..=0.12).contains(&saving), "peak saving {saving}");
    }

    #[test]
    fn table_has_one_row_per_rate() {
        let result = small();
        let table = result.to_table();
        assert_eq!(table.len(), result.points.len());
        assert!(table.to_string().contains("DBI OPT (Fixed)"));
    }

    #[test]
    fn zero_and_negative_rates_are_skipped() {
        let bursts = UniformRandomBursts::with_seed(5).take_bursts(50);
        let result = run(&bursts, &[0.0, -3.0, 4.0], 3.0);
        assert_eq!(result.points.len(), 1);
    }
}
