//! Experiment E4 — Table I: synthesis results for the four encoder designs.
//!
//! The paper synthesises DBI DC, DBI AC and the two optimal-encoder
//! variants with Synopsys Design Compiler against 32 nm generic libraries
//! and reports area, static/dynamic power, achievable burst rate, total
//! power and energy per encoded burst. This module regenerates the table
//! from the analytical cell-library model in `dbi-hw` (the substitution is
//! documented in DESIGN.md): absolute values differ from the proprietary
//! flow, the orderings and the timing-feasibility conclusions are the
//! reproduced result.

use crate::report::{fmt_f64, Table};
use dbi_hw::{SynthesisReport, Synthesizer};

/// The reproduced Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// One synthesis report per design, in the paper's row order
    /// (DC, AC, OPT Fixed, OPT 3-bit).
    pub reports: Vec<SynthesisReport>,
}

impl Table1Result {
    /// Renders the result in the paper's column layout.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Table I — synthesis results (analytical 32 nm model)",
            vec![
                "Scheme".into(),
                "Area (um^2)".into(),
                "Static Power (uW)".into(),
                "Dynamic Power (uW)".into(),
                "Burst Rate (GHz)".into(),
                "Total (uW)".into(),
                "Energy per Burst (pJ)".into(),
            ],
        );
        for report in &self.reports {
            table.push_row(vec![
                report.design.label().to_owned(),
                fmt_f64(report.area_um2),
                fmt_f64(report.static_power_uw),
                fmt_f64(report.dynamic_power_uw),
                fmt_f64(report.burst_rate_ghz),
                fmt_f64(report.total_power_uw),
                fmt_f64(report.energy_per_burst_pj),
            ]);
        }
        table
    }
}

/// Runs the Table I experiment with the default synthesiser settings.
#[must_use]
pub fn run() -> Table1Result {
    Table1Result {
        reports: Synthesizer::new().table1(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_hw::EncoderDesign;

    #[test]
    fn has_the_four_paper_rows_in_order() {
        let result = run();
        let designs: Vec<EncoderDesign> = result.reports.iter().map(|r| r.design).collect();
        assert_eq!(designs, EncoderDesign::table1_set().to_vec());
    }

    #[test]
    fn reproduces_the_papers_orderings_and_feasibility() {
        let result = run();
        let rows = &result.reports;
        for pair in rows.windows(2) {
            assert!(pair[0].area_um2 < pair[1].area_um2);
            assert!(pair[0].energy_per_burst_pj < pair[1].energy_per_burst_pj);
        }
        assert!(
            rows[2].meets_gddr5x_timing(),
            "OPT(Fixed) must close 1.5 GHz"
        );
        assert!(
            !rows[3].meets_gddr5x_timing(),
            "OPT(3-bit) must miss 1.5 GHz"
        );
    }

    #[test]
    fn table_rendering_has_the_paper_columns() {
        let table = run().to_table();
        assert_eq!(table.headers().len(), 7);
        assert_eq!(table.len(), 4);
        let text = table.to_string();
        assert!(text.contains("DBI OPT (Fixed Coeff.)"));
        assert!(text.contains("Burst Rate"));
    }
}
