//! Ablation studies of the design choices behind DBI OPT.
//!
//! Two questions the paper answers qualitatively are quantified here:
//!
//! 1. **Coefficient resolution** — Section III argues the coefficients "do
//!    not need to be very accurate"; Table I shows that 3-bit programmable
//!    coefficients are not worth their hardware cost. The
//!    [`coefficient_resolution_study`] measures the interface-energy loss
//!    of quantising α/β to 1–6 bits (and of fixing them to 1/1) relative
//!    to an ideally-tuned encoder across the Fig. 7 data-rate sweep.
//! 2. **Burst length** — the shortest-path formulation works for any burst
//!    length. The [`burst_length_study`] measures how the advantage of the
//!    optimal encoder over the best conventional scheme grows with the
//!    burst length (longer bursts give the trellis more freedom).

use crate::report::Table;
use dbi_core::{Burst, BusState, CostBreakdown, CostWeights, DbiEncoder, Scheme};
use dbi_phy::fig7_operating_point;
use dbi_workloads::BurstSource;
use dbi_workloads::UniformRandomBursts;

/// Result of the coefficient-resolution ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolutionStudy {
    /// `(label, mean loss, worst-case loss)` — losses are fractions of the
    /// ideally-tuned encoder's interface energy, over the data-rate sweep.
    pub rows: Vec<(String, f64, f64)>,
}

impl ResolutionStudy {
    /// Renders the study as a printable table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Ablation — energy loss vs. ideally tuned coefficients (1-20 Gbps, POD135, 3 pF)",
            vec![
                "coefficients".into(),
                "mean loss".into(),
                "worst-case loss".into(),
            ],
        );
        for (label, mean, worst) in &self.rows {
            table.push_row(vec![
                label.clone(),
                format!("{:.2}%", mean * 100.0),
                format!("{:.2}%", worst * 100.0),
            ]);
        }
        table
    }
}

/// Runs the coefficient-resolution ablation over the given bursts.
///
/// For every data rate of the Fig. 7 sweep the "ideal" reference encoder
/// uses 16-bit quantised coefficients derived from the physical energy
/// ratio; each ablated variant is compared against it.
#[must_use]
pub fn coefficient_resolution_study(bursts: &[Burst]) -> ResolutionStudy {
    let state = BusState::idle();
    let rates: Vec<f64> = (1..=20).map(f64::from).collect();

    // Candidate coefficient policies: fixed 1/1 and 1..=6 bit quantisation.
    let mut policies: Vec<(String, Option<u32>)> = vec![("fixed alpha=beta=1".into(), None)];
    for bits in 1..=6u32 {
        policies.push((format!("{bits}-bit quantised"), Some(bits)));
    }

    // One encoder (and one cost-table build) per coefficient policy and
    // rate point; every burst then goes through the mask fast path.
    let energy_of = |weights: CostWeights, model: &dbi_phy::InterfaceEnergyModel| -> f64 {
        let encoder = dbi_core::schemes::OptEncoder::new(weights);
        let activity: CostBreakdown = bursts
            .iter()
            .map(|b| encoder.encode_mask(b, &state).breakdown(b, &state))
            .sum();
        model.burst_energy_j(&activity)
    };

    let mut rows = Vec::new();
    for (label, bits) in policies {
        let mut losses = Vec::new();
        for &gbps in &rates {
            let model = fig7_operating_point(gbps).expect("rates are positive");
            let ideal_weights = model.quantised_weights(16).expect("energies are positive");
            let ideal = energy_of(ideal_weights, &model);
            let candidate_weights = match bits {
                None => CostWeights::FIXED,
                Some(bits) => model
                    .quantised_weights(bits)
                    .expect("energies are positive"),
            };
            let candidate = energy_of(candidate_weights, &model);
            losses.push((candidate - ideal) / ideal);
        }
        let mean = losses.iter().sum::<f64>() / losses.len() as f64;
        let worst = losses.iter().cloned().fold(0.0, f64::max);
        rows.push((label, mean, worst));
    }
    ResolutionStudy { rows }
}

/// Result of the burst-length ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstLengthStudy {
    /// `(burst length, OPT saving vs. best of DC/AC at alpha = beta)`.
    pub rows: Vec<(usize, f64)>,
}

impl BurstLengthStudy {
    /// Renders the study as a printable table.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Ablation — OPT advantage vs. burst length (alpha = beta, random data)",
            vec!["burst length".into(), "saving vs best of DC/AC".into()],
        );
        for (len, saving) in &self.rows {
            table.push_row(vec![len.to_string(), format!("{:.2}%", saving * 100.0)]);
        }
        table
    }
}

/// Runs the burst-length ablation: for each length, random bursts of that
/// length are encoded with DC, AC and OPT (α = β = 1) and the relative
/// saving of OPT over the best conventional scheme is reported.
#[must_use]
pub fn burst_length_study(
    lengths: &[usize],
    bursts_per_length: usize,
    seed: u64,
) -> BurstLengthStudy {
    let state = BusState::idle();
    let weights = CostWeights::FIXED;
    let rows = lengths
        .iter()
        .filter(|&&len| len > 0)
        .map(|&len| {
            let mut source = UniformRandomBursts::with_seed_and_len(seed ^ len as u64, len);
            let bursts = source.take_bursts(bursts_per_length);
            let cost = |scheme: Scheme| -> f64 {
                bursts
                    .iter()
                    .map(|b| scheme.encode(b, &state).cost(&state, &weights) as f64)
                    .sum::<f64>()
            };
            let best = cost(Scheme::Dc).min(cost(Scheme::Ac));
            let opt = cost(Scheme::Opt(weights));
            (len, (best - opt) / best)
        })
        .collect();
    BurstLengthStudy { rows }
}

/// The burst lengths covered by the ablation: a GDDR5X half burst up to a
/// 32-beat packetised burst.
#[must_use]
pub fn standard_lengths() -> Vec<usize> {
    vec![2, 4, 8, 16, 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursts() -> Vec<Burst> {
        UniformRandomBursts::with_seed(77).take_bursts(400)
    }

    #[test]
    fn finer_coefficients_never_do_worse_on_average() {
        let study = coefficient_resolution_study(&bursts());
        assert_eq!(study.rows.len(), 7);
        // Every policy is within a few percent of ideal (the paper's claim
        // that coefficient accuracy barely matters).
        for (label, mean, worst) in &study.rows {
            assert!(*mean >= -1e-9, "{label}: negative loss {mean}");
            assert!(*mean < 0.05, "{label}: mean loss {mean} too large");
            assert!(*worst < 0.10, "{label}: worst loss {worst} too large");
        }
        // 6-bit quantisation is essentially ideal.
        let six_bit = study
            .rows
            .iter()
            .find(|(l, _, _)| l.starts_with("6-bit"))
            .unwrap();
        assert!(six_bit.1 < 0.005);
        let table = study.to_table();
        assert_eq!(table.len(), 7);
        assert!(table.to_string().contains("fixed alpha=beta=1"));
    }

    #[test]
    fn longer_bursts_widen_the_opt_advantage() {
        let study = burst_length_study(&standard_lengths(), 300, 5);
        assert_eq!(study.rows.len(), 5);
        let saving_of = |len: usize| study.rows.iter().find(|(l, _)| *l == len).unwrap().1;
        assert!(
            saving_of(32) > saving_of(2),
            "longer bursts should give the trellis more freedom: {:?}",
            study.rows
        );
        for (_, saving) in &study.rows {
            assert!(*saving >= -1e-9);
        }
        assert!(study.to_table().to_string().contains("burst length"));
    }

    #[test]
    fn zero_lengths_are_skipped() {
        let study = burst_length_study(&[0, 8], 50, 1);
        assert_eq!(study.rows.len(), 1);
    }
}
