//! `reproduce` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! reproduce                 # run everything at paper scale (10 000 bursts)
//! reproduce fig3 fig7       # run a subset
//! reproduce --quick         # 1 000 bursts instead of 10 000 (CI-friendly)
//! reproduce --csv fig8      # print CSV instead of aligned tables
//! ```

use dbi_experiments::{ablation, extensions, fig2, fig3, fig7, fig8, table1, Experiment, Table};
use dbi_workloads::{BurstSource, UniformRandomBursts};

struct Options {
    csv: bool,
    burst_count: usize,
    experiments: Vec<Experiment>,
}

fn parse_args() -> Result<Options, String> {
    let mut csv = false;
    let mut burst_count = dbi_workloads::random::PAPER_BURST_COUNT;
    let mut experiments = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--csv" => csv = true,
            "--quick" => burst_count = 1_000,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: reproduce [--csv] [--quick] [{}]",
                    Experiment::all().map(|e| e.name()).join("|")
                ))
            }
            name => match Experiment::parse(name) {
                Some(exp) => experiments.push(exp),
                None => return Err(format!("unknown experiment '{name}' (try --help)")),
            },
        }
    }
    if experiments.is_empty() {
        experiments = Experiment::all().to_vec();
    }
    Ok(Options {
        csv,
        burst_count,
        experiments,
    })
}

fn print_table(table: &Table, csv: bool) {
    if csv {
        println!("# {}", table.title());
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(if message.starts_with("usage:") { 0 } else { 2 });
        }
    };

    println!(
        "Reproducing 'Optimal DC/AC Data Bus Inversion Coding' (DATE 2018) — {} random bursts per sweep point\n",
        options.burst_count
    );
    let bursts = UniformRandomBursts::new().take_bursts(options.burst_count);

    for experiment in &options.experiments {
        match experiment {
            Experiment::Fig2 => {
                let result = fig2::run();
                print_table(&result.to_table(), options.csv);
                println!(
                    "start-edge weights: {} (plain) / {} (inverted); optimal cost {}\n",
                    result.start_edge_plain, result.start_edge_inverted, result.opt_cost
                );
            }
            Experiment::Fig3 => {
                let result = fig3::run_fig3(&bursts, 20);
                print_table(
                    &result.to_table("Fig. 3 — energy per burst vs. AC cost"),
                    options.csv,
                );
                let (alpha, saving) = result.peak_opt_advantage();
                println!(
                    "peak OPT advantage over best conventional scheme: {:.2}% at alpha = {:.2}; DC/AC crossover at alpha = {}\n",
                    saving * 100.0,
                    alpha,
                    result
                        .dc_ac_crossover()
                        .map(|a| format!("{a:.2}"))
                        .unwrap_or_else(|| "none".into())
                );
            }
            Experiment::Fig4 => {
                let result = fig3::run_fig4(&bursts, 20);
                print_table(
                    &result.to_table("Fig. 4 — energy per burst vs. AC cost, incl. OPT(Fixed)"),
                    options.csv,
                );
                let (_, fixed) = result.peak_fixed_advantage();
                println!(
                    "peak OPT(Fixed) advantage: {:.2}%; max loss vs. tunable OPT: {:.2}%\n",
                    fixed * 100.0,
                    result.max_fixed_coefficient_loss() * 100.0
                );
            }
            Experiment::Table1 => {
                let result = table1::run();
                print_table(&result.to_table(), options.csv);
                println!();
            }
            Experiment::Fig7 => {
                let result = fig7::run(&bursts, &fig7::paper_rates(), 3.0);
                print_table(&result.to_table(), options.csv);
                if let Some((gbps, saving)) = result.best_operating_point() {
                    println!(
                        "OPT(Fixed) overtakes DC at {} Gbps; best operating point {} Gbps ({:.2}% below best conventional)\n",
                        result
                            .opt_fixed_beats_dc_from()
                            .map(|g| format!("{g:.1}"))
                            .unwrap_or_else(|| "n/a".into()),
                        gbps,
                        saving * 100.0
                    );
                }
            }
            Experiment::Fig8 => {
                let result = fig8::run(
                    &bursts,
                    &fig7::paper_rates(),
                    &fig8::paper_loads(),
                    fig8::EncoderEnergies::from_synthesis(),
                );
                print_table(&result.to_table(), options.csv);
                for curve in &result.curves {
                    if let Some((gbps, normalized)) = curve.best_point() {
                        println!(
                            "  {} pF: best operating point {} Gbps, {:.2}% below best of DC/AC",
                            curve.cload_pf,
                            gbps,
                            (1.0 - normalized) * 100.0
                        );
                    }
                }
                println!();
            }
            Experiment::Ablation => {
                let resolution = ablation::coefficient_resolution_study(&bursts);
                print_table(&resolution.to_table(), options.csv);
                let lengths = ablation::burst_length_study(
                    &ablation::standard_lengths(),
                    options.burst_count.min(2_000),
                    7,
                );
                print_table(&lengths.to_table(), options.csv);
                println!();
            }
            Experiment::Extensions => {
                let study = extensions::workload_study(7, 12.0);
                print_table(&study.to_table(), options.csv);
                println!(
                    "Extension — GDDR5X channel energy writing a 16 KiB pseudo-random buffer:"
                );
                for (scheme, nanojoules) in extensions::channel_study(16 * 1024) {
                    println!("  {scheme:<18} {nanojoules:9.3} nJ");
                }
                println!();
            }
        }
    }
}
