//! The golden conformance run: the checked-in corpus must replay clean
//! through every production level, and must match what the reference
//! implementation generates today (so neither the corpus file nor the
//! reference can drift silently).

use dbi_conformance::{replay, Corpus, GOLDEN_SEED};

#[test]
fn checked_in_corpus_matches_a_fresh_generation() {
    let checked_in = Corpus::checked_in();
    let fresh = Corpus::generate(GOLDEN_SEED);
    assert_eq!(
        checked_in, fresh,
        "vectors/golden.json has drifted from the reference implementation; \
         regenerate with `cargo run -p dbi-conformance --bin gen_golden` \
         and review the diff"
    );
}

#[test]
fn golden_vectors_pass_the_mask_level() {
    let stats = replay::check_mask_level(&Corpus::checked_in()).unwrap();
    assert!(stats.vectors > 100, "corpus unexpectedly small: {stats:?}");
}

#[test]
fn golden_vectors_pass_the_slab_level() {
    let stats = replay::check_slab_level(&Corpus::checked_in()).unwrap();
    assert!(stats.bursts > 500, "corpus unexpectedly small: {stats:?}");
}

#[test]
fn golden_vectors_pass_the_session_level() {
    let stats = replay::check_session_level(&Corpus::checked_in()).unwrap();
    assert!(stats.vectors > 0);
}

#[test]
fn golden_vectors_pass_the_tcp_level() {
    let stats = replay::check_tcp_level(&Corpus::checked_in()).unwrap();
    assert!(stats.vectors > 0);
}
