//! The CI fuzz smoke: a fixed-seed, 10 000-case structure-aware run that
//! must find zero encode→decode mismatches, zero reference divergences
//! and zero cost-invariant violations. `DBI_FUZZ_CASES` scales the run
//! up for deeper local soaks without touching the code.

use dbi_conformance::{fuzz, FuzzConfig};

#[test]
fn seeded_fuzz_smoke_finds_no_mismatches() {
    let cases = std::env::var("DBI_FUZZ_CASES")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(FuzzConfig::default().cases);
    let report = fuzz::run(&FuzzConfig {
        cases,
        ..FuzzConfig::default()
    })
    .unwrap();
    assert_eq!(report.cases, cases);
    assert!(
        report.bursts >= cases,
        "every case checks at least one burst: {report:?}"
    );
    assert!(report.swaps > 0, "plan swaps must be exercised: {report:?}");
    assert!(
        report.exhaustive > 0,
        "exhaustive certifications must run: {report:?}"
    );
}
