//! Drift check of the durable-store byte formats: the checked-in
//! `vectors/persist_v1.hex` images must match what the persistence
//! writers produce today, and must read back through the production
//! parsers. A failing first test means the on-disk format changed —
//! which breaks restore across builds — so the diff must be deliberate.

use dbi_conformance::persist_golden::{
    from_hex_document, golden_journal_image, golden_snapshot_image, to_hex_document,
    CHECKED_IN_PERSIST, PERSIST_GOLDEN_GENERATION,
};
use dbi_core::Scheme;
use dbi_service::persist::journal::replay_journal;
use dbi_service::persist::snapshot::parse_snapshot;

#[test]
fn checked_in_persist_images_match_a_fresh_generation() {
    let (snapshot, journal) = from_hex_document(CHECKED_IN_PERSIST);
    assert_eq!(
        snapshot,
        golden_snapshot_image(),
        "vectors/persist_v1.hex: the snapshot byte format has drifted; \
         regenerate with `cargo run -p dbi-conformance --bin gen_golden` \
         and review the diff — old stores must stay restorable"
    );
    assert_eq!(
        journal,
        golden_journal_image(),
        "vectors/persist_v1.hex: the journal byte format has drifted; \
         regenerate with `cargo run -p dbi-conformance --bin gen_golden` \
         and review the diff — old stores must stay restorable"
    );
    // And the hex rendering itself is stable.
    assert_eq!(to_hex_document(&snapshot, &journal), CHECKED_IN_PERSIST);
}

#[test]
fn checked_in_snapshot_parses_through_the_production_reader() {
    let (snapshot, _) = from_hex_document(CHECKED_IN_PERSIST);
    let parsed = parse_snapshot(&snapshot).expect("golden snapshot must parse");
    assert_eq!(parsed.generation, PERSIST_GOLDEN_GENERATION);
    let schemes = Scheme::paper_set();
    assert_eq!(parsed.sessions.len(), schemes.len());
    for (index, session) in parsed.sessions.iter().enumerate() {
        assert_eq!(session.session_id, 0x90_1D00 + index as u64);
        assert_eq!(session.scheme, schemes[index]);
        assert_eq!(session.groups, 1 + index as u16);
        assert_eq!(session.states.len(), session.groups as usize);
    }
}

#[test]
fn checked_in_journal_replays_the_same_sessions_as_the_snapshot() {
    let dir = std::env::temp_dir().join(format!("dbi-persist-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("golden-journal.bin");

    let (snapshot, journal) = from_hex_document(CHECKED_IN_PERSIST);
    std::fs::write(&path, &journal).unwrap();
    let replay = replay_journal(&path)
        .expect("golden journal must replay")
        .expect("golden journal has a header");
    assert_eq!(replay.generation, PERSIST_GOLDEN_GENERATION + 1);
    assert_eq!(replay.dropped_bytes, 0);

    // The record layer is shared byte for byte: the journal replays
    // exactly the sessions the snapshot restores.
    let parsed = parse_snapshot(&snapshot).unwrap();
    assert_eq!(replay.records, parsed.sessions);

    std::fs::remove_dir_all(&dir).unwrap();
}
