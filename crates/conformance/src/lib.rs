//! # dbi-conformance
//!
//! The conformance oracle of the workspace: everything else proves the
//! layers agree with **each other** (differential tests against the
//! repo's own serial paths), which a bug shared by both sides would pass
//! silently. This crate pins correctness to something *external*:
//!
//! * [`reference`](mod@crate::reference) — encoders written straight from the paper's scheme
//!   definitions in plain lane-word arithmetic: no cost LUTs, no
//!   survivor-mask kernels, no slabs. The independent implementation the
//!   production stack is judged against.
//! * [`corpus`] — checked-in **golden vectors** (JSON, parsed by the
//!   dependency-free [`json`] reader): carried-state chains per scheme ×
//!   burst length, generated once from the reference implementation by
//!   `cargo run -p dbi-conformance --bin gen_golden`.
//! * [`replay`] — replays the corpus through all four production levels:
//!   the per-burst mask path, the batched slab kernels, multi-group
//!   [`dbi_mem::BusSession`] streams, and the TCP service with verify
//!   mode on. Encode *and* decode at every level.
//! * [`fuzz`] — a seeded, structure-aware fuzz harness (deterministic
//!   vendored RNG) asserting encode→decode identity, reference-oracle
//!   equality, optimal-cost invariants and plan-swap coherence over
//!   randomised geometries, payload families and mutations.
//! * [`persist_golden`] — checked-in golden images of the durable-store
//!   byte formats (version-1 snapshot + journal), so the on-disk layout
//!   cannot drift silently either.
//!
//! CI runs the corpus replay and a 10 000-case fuzz smoke on every push
//! (`tests/golden.rs`, `tests/fuzz_smoke.rs`); the `conformance` binary
//! runs the same suite standalone.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod fuzz;
pub mod json;
pub mod persist_golden;
pub mod reference;
pub mod replay;

pub use corpus::{Corpus, GoldenVector, GOLDEN_SEED};
pub use fuzz::{FuzzConfig, FuzzReport};
pub use replay::ReplayStats;
