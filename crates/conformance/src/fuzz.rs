//! Seeded structure-aware fuzzing of the encode→decode chain.
//!
//! Deterministic (vendored [`rand::rngs::StdRng`], no crates.io, no OS
//! entropy): a given seed and case count always exercises the identical
//! inputs, so a CI failure is reproducible locally by seed alone. The
//! fuzzer is **structure-aware** rather than byte-blind: cases draw from
//! the payload families DBI exists for — uniform noise, the
//! [`dbi_workloads::LoadProfile`] traffic mixes (GPU, server, stress),
//! sparse `00`/`FF` runs, checkerboards and walking bits, and bit-flip
//! mutations of the previous burst — across random geometries, carried
//! chains, and mid-stream plan swaps.
//!
//! Every case asserts, for a panel of schemes over the same chain:
//!
//! * **oracle equality** — the production mask equals the
//!   [`reference`](mod@crate::reference) implementation's, burst for burst
//!   (carried state included), and the priced activity matches;
//! * **encode→decode identity** — the wire image decodes back to the
//!   payload at the mask level, the [`dbi_core::EncodedBurst`] level and the slab
//!   level, with the receiver's carried state tracking the
//!   transmitter's;
//! * **cost-model invariants** — the optimal scheme's weighted cost never
//!   exceeds any other scheme's for the same burst and entry state, and
//!   (on small bursts) equals the exhaustive 2ⁿ minimum;
//! * **plan-swap coherence** — a [`BusSession`] whose plan is swapped at
//!   a burst boundary stays bit-identical to the hand-stitched chain;
//! * **kernel-tier equality** — every available slab kernel
//!   ([`dbi_core::simd::available_kernels`]: bit-sliced, SSE2, AVX2, NEON)
//!   produces bit-identical masks, pricing and carried chain states to
//!   the serial reference on multi-chain lane sweeps, encode and decode,
//!   priced and masks-only.

use crate::corpus::ref_scheme;
use crate::reference;
use dbi_core::{
    Burst, BurstSlab, BusState, CostWeights, DbiDecoder, DbiEncoder, InversionMask, LaneWord,
    Scheme,
};
use dbi_mem::BusSession;
use dbi_workloads::LoadProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Seed of the deterministic case stream.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
}

impl Default for FuzzConfig {
    /// The CI smoke configuration: 10 000 cases on a fixed seed.
    fn default() -> Self {
        FuzzConfig {
            seed: 0xF0_55ED,
            cases: 10_000,
        }
    }
}

/// What a completed fuzz run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: usize,
    /// Scheme × burst encode/decode round trips checked.
    pub bursts: usize,
    /// Mid-stream plan swaps exercised.
    pub swaps: usize,
    /// Bursts certified against the exhaustive 2ⁿ oracle.
    pub exhaustive: usize,
    /// Multi-chain kernel-tier sweeps (every available kernel checked
    /// bit-identical to the serial reference, encode and decode).
    pub lanes: usize,
}

/// Runs the fuzzer.
///
/// # Errors
///
/// Returns a description of the first violated invariant, including the
/// case number and enough context (scheme, bytes, entry state) to
/// reproduce it from the seed.
pub fn run(config: &FuzzConfig) -> Result<FuzzReport, String> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut profiles = LoadProfile::standard_profiles(config.seed ^ 0x10AD);
    let mut report = FuzzReport::default();
    let mut scratch = Scratch::default();
    for case in 0..config.cases {
        run_case(case, &mut rng, &mut profiles, &mut scratch, &mut report)
            .map_err(|err| format!("case {case} (seed {:#x}): {err}", config.seed))?;
        report.cases += 1;
    }
    Ok(report)
}

/// Reusable buffers across cases.
#[derive(Default)]
struct Scratch {
    chain: Vec<Vec<u8>>,
    wire: Vec<u8>,
    decoded: Vec<u8>,
}

/// Draws one chain of bursts from a randomly chosen payload family.
fn draw_chain(
    rng: &mut StdRng,
    profiles: &mut [LoadProfile],
    burst_len: usize,
    bursts: usize,
    chain: &mut Vec<Vec<u8>>,
) {
    chain.clear();
    let family = rng.gen_range(0u32..5);
    for index in 0..bursts {
        let mut bytes = Vec::with_capacity(burst_len);
        match family {
            // Uniform noise.
            0 => bytes.extend((0..burst_len).map(|_| rng.gen::<u8>())),
            // A real traffic mix (GPU / server / stress / uniform).
            1 => {
                let at = rng.gen_range(0..profiles.len());
                profiles[at].fill_burst(burst_len, &mut bytes);
            }
            // Sparse runs: long stretches of 0x00 / 0xFF with rare noise.
            2 => bytes.extend((0..burst_len).map(|_| match rng.gen_range(0u32..10) {
                0 => rng.gen::<u8>(),
                n if n < 6 => 0x00,
                _ => 0xFF,
            })),
            // Checkerboards and walking bits.
            3 => {
                let walking = rng.gen::<bool>();
                let phase = rng.gen_range(0u32..8);
                bytes.extend((0..burst_len).map(|beat| {
                    if walking {
                        1u8 << ((beat as u32 + phase) % 8)
                    } else if beat % 2 == 0 {
                        0x55
                    } else {
                        0xAA
                    }
                }));
            }
            // Bit-flip mutations of the previous burst (or noise first).
            _ => match chain.last() {
                Some(prev) => {
                    bytes.extend_from_slice(prev);
                    for _ in 0..rng.gen_range(1..5) {
                        let at = rng.gen_range(0..burst_len);
                        bytes[at] ^= 1 << rng.gen_range(0u32..8);
                    }
                }
                None => bytes.extend((0..burst_len).map(|_| rng.gen::<u8>())),
            },
        }
        debug_assert_eq!(bytes.len(), burst_len, "family {family} burst {index}");
        chain.push(bytes);
    }
}

fn run_case(
    case: usize,
    rng: &mut StdRng,
    profiles: &mut [LoadProfile],
    scratch: &mut Scratch,
    report: &mut FuzzReport,
) -> Result<(), String> {
    let burst_len = rng.gen_range(1..33usize);
    let bursts = rng.gen_range(1..9usize);
    draw_chain(rng, profiles, burst_len, bursts, &mut scratch.chain);

    // A fresh operating point per case, plus the fixed panel.
    let alpha = rng.gen_range(1..10u32);
    let beta = rng.gen_range(1..10u32);
    let weights = CostWeights::new(alpha, beta).map_err(|err| err.to_string())?;
    let panel: [Scheme; 7] = [
        Scheme::Raw,
        Scheme::Dc,
        Scheme::Ac,
        Scheme::AcDc,
        Scheme::Greedy(weights),
        Scheme::Opt(weights),
        Scheme::OptFixed,
    ];

    // A random (valid) entry state shared by every scheme's chain.
    let entry = BusState::new(LaneWord::encode_byte(rng.gen(), rng.gen()));

    // Per-burst masks of each scheme, for the cost invariant below.
    let mut opt_entry_words: Vec<u16> = Vec::with_capacity(bursts);
    let mut masks_by_scheme: Vec<Vec<InversionMask>> = Vec::with_capacity(panel.len());

    for scheme in panel {
        let oracle = ref_scheme(scheme);
        let mut state = entry;
        let mut masks = Vec::with_capacity(bursts);
        if scheme == Scheme::Opt(weights) {
            opt_entry_words.clear();
        }
        for bytes in &scratch.chain {
            if scheme == Scheme::Opt(weights) {
                opt_entry_words.push(state.last().bits());
            }
            let burst = Burst::from_slice(bytes).expect("chains are non-empty");
            let mask = scheme.encode_mask(&burst, &state);

            // Oracle equality, burst for burst.
            let expected = reference::encode(oracle, bytes, state.last().bits());
            if mask.bits() != expected.mask {
                return Err(format!(
                    "{scheme}: mask {:#b} != reference {:#b} on {bytes:02x?} from {}",
                    mask.bits(),
                    expected.mask,
                    state.last()
                ));
            }
            let priced = mask.breakdown(&burst, &state);
            if (priced.zeros, priced.transitions) != (expected.zeros, expected.transitions) {
                return Err(format!(
                    "{scheme}: activity {priced} != reference ({}, {}) on {bytes:02x?}",
                    expected.zeros, expected.transitions
                ));
            }

            // Encode→decode identity at the mask and symbol levels.
            scratch.wire.clear();
            scratch.wire.extend_from_slice(bytes);
            mask.apply_in_place(&mut scratch.wire);
            scheme
                .decode_mask(&scratch.wire, mask, &mut scratch.decoded)
                .map_err(|err| format!("{scheme}: decode_mask: {err}"))?;
            if &scratch.decoded != bytes {
                return Err(format!("{scheme}: decode_mask lost {bytes:02x?}"));
            }
            let encoded = scheme.encode(&burst, &state);
            if encoded.decode() != burst {
                return Err(format!("{scheme}: EncodedBurst::decode lost {bytes:02x?}"));
            }

            let next = mask.final_state(&burst, &state);
            if next.last().bits() != expected.final_word {
                return Err(format!("{scheme}: carried state diverges on {bytes:02x?}"));
            }
            state = next;
            masks.push(mask);
            report.bursts += 1;
        }

        // Slab chain: bit-identical to the per-burst chain, and the wire
        // image decodes back with matching receiver state.
        let mut slab = BurstSlab::new(burst_len);
        for bytes in &scratch.chain {
            slab.push_bytes(bytes).expect("chain bursts fit the slab");
        }
        let mut slab_state = entry;
        scheme.encode_slab_into(&mut slab, &mut slab_state);
        if slab.masks() != masks {
            return Err(format!("{scheme}: slab masks diverge from the chain"));
        }
        if slab_state != state {
            return Err(format!("{scheme}: slab carried state diverges"));
        }
        // Rebuild the slab's payload area as the wire image and decode it.
        let mut rx_wire = BurstSlab::new(burst_len);
        for (bytes, mask) in scratch.chain.iter().zip(slab.masks()) {
            scratch.wire.clear();
            scratch.wire.extend_from_slice(bytes);
            mask.apply_in_place(&mut scratch.wire);
            rx_wire.push_bytes(&scratch.wire).expect("wire bursts fit");
        }
        rx_wire
            .load_masks(slab.masks())
            .map_err(|err| format!("{scheme}: load_masks: {err}"))?;
        let mut rx_state = entry;
        scheme
            .decode_slab_into(&mut rx_wire, &mut rx_state)
            .map_err(|err| format!("{scheme}: slab decode: {err}"))?;
        if rx_wire.bytes() != slab.bytes() {
            return Err(format!("{scheme}: slab decode lost the payload"));
        }
        if rx_state != state {
            return Err(format!("{scheme}: slab receiver state diverges"));
        }

        masks_by_scheme.push(masks);
    }

    // Cost-model invariant: under (α, β), OPT's cost never exceeds any
    // other scheme's for the same burst and OPT-chain entry state.
    let opt_at = 5; // index of Scheme::Opt(weights) in the panel
    for (burst_at, bytes) in scratch.chain.iter().enumerate() {
        let prev = opt_entry_words[burst_at];
        let opt_cost = reference::cost(
            bytes,
            masks_by_scheme[opt_at][burst_at].bits(),
            prev,
            u64::from(alpha),
            u64::from(beta),
        );
        for (scheme_at, scheme) in panel.iter().enumerate() {
            let rival = reference::encode(ref_scheme(*scheme), bytes, prev);
            let rival_cost = u64::from(alpha) * rival.transitions + u64::from(beta) * rival.zeros;
            if opt_cost > rival_cost {
                return Err(format!(
                    "OPT({alpha},{beta}) cost {opt_cost} exceeds {scheme} cost {rival_cost} \
                     on {bytes:02x?} (scheme {scheme_at})"
                ));
            }
        }
        // Exhaustive certification on small bursts, occasionally.
        if bytes.len() <= 10 && case.is_multiple_of(97) {
            let floor =
                reference::exhaustive_min_cost(bytes, prev, u64::from(alpha), u64::from(beta));
            if opt_cost != floor {
                return Err(format!(
                    "OPT({alpha},{beta}) cost {opt_cost} != exhaustive minimum {floor} \
                     on {bytes:02x?}"
                ));
            }
            report.exhaustive += 1;
        }
    }

    // Mid-stream plan swap under a session: swapping at a burst boundary
    // equals hand-stitching the two chains, encode and decode.
    if bursts >= 2 && case.is_multiple_of(7) {
        let first = panel[rng.gen_range(0..panel.len())];
        let second = panel[rng.gen_range(0..panel.len())];
        let boundary = rng.gen_range(1..bursts);
        let data: Vec<u8> = scratch.chain.concat();
        let split = boundary * burst_len;

        let mut swapped = BusSession::with_geometry(1, burst_len, first);
        let mut per_group = Vec::new();
        let mut masks_a = Vec::new();
        let mut masks_b = Vec::new();
        swapped
            .encode_stream_into(&data[..split], &mut per_group, Some(&mut masks_a))
            .map_err(|err| format!("swap encode: {err}"))?;
        swapped.swap_plan(second.plan());
        swapped
            .encode_stream_into(&data[split..], &mut per_group, Some(&mut masks_b))
            .map_err(|err| format!("swap encode: {err}"))?;

        // Hand-stitched reference chain.
        let mut state = BusState::idle();
        for (burst_at, bytes) in scratch.chain.iter().enumerate() {
            let scheme = if burst_at < boundary { first } else { second };
            let burst = Burst::from_slice(bytes).expect("non-empty");
            let mask = scheme.encode_mask(&burst, &state);
            let recorded = if burst_at < boundary {
                masks_a[burst_at]
            } else {
                masks_b[burst_at - boundary]
            };
            if mask != recorded {
                return Err(format!(
                    "plan swap {first}->{second} at {boundary}: burst {burst_at} diverges"
                ));
            }
            state = mask.final_state(&burst, &state);
        }
        if swapped.group_state(0) != Some(state) {
            return Err(format!(
                "plan swap {first}->{second} at {boundary}: carried state diverges"
            ));
        }

        // And the swapped stream still decodes.
        let all_masks: Vec<InversionMask> = masks_a.iter().chain(masks_b.iter()).copied().collect();
        let mut wire = Vec::new();
        swapped
            .transmit_stream_into(&data, &all_masks, &mut wire)
            .map_err(|err| format!("swap transmit: {err}"))?;
        let mut receiver = BusSession::with_geometry(1, burst_len, first);
        let (_, decoded) = receiver
            .decode_stream(&wire, &all_masks)
            .map_err(|err| format!("swap decode: {err}"))?;
        if decoded != data {
            return Err(format!(
                "plan swap {first}->{second} at {boundary}: decode lost the stream"
            ));
        }
        report.swaps += 1;
    }

    // Kernel-tier differential: the multi-chain lanes encode and the SWAR
    // decode must be bit-identical to the serial per-chain reference on
    // EVERY available kernel (bit-sliced, SSE2, AVX2, NEON — whatever the
    // CPU offers), priced and masks-only, whatever the geometry. This is
    // what lets `DBI_FORCE_SCALAR` be an escape hatch rather than a
    // different codec.
    if case.is_multiple_of(3) {
        let chains = rng.gen_range(1..10usize);
        let pricing = rng.gen::<bool>();
        let encoder = dbi_core::schemes::OptEncoder::new(weights);

        // Chain 0 replays the structured chain; the rest are fresh draws
        // so neighbouring lanes carry uncorrelated survivor masks.
        let mut slab = BurstSlab::with_capacity(burst_len, chains * bursts);
        slab.set_pricing(pricing);
        for bytes in &scratch.chain {
            slab.push_bytes(bytes).expect("chain bursts fit the slab");
        }
        let mut extra = Vec::new();
        for _ in 1..chains {
            draw_chain(rng, profiles, burst_len, bursts, &mut extra);
            for bytes in &extra {
                slab.push_bytes(bytes).expect("chain bursts fit the slab");
            }
        }
        let initial: Vec<BusState> = (0..chains)
            .map(|_| BusState::new(LaneWord::encode_byte(rng.gen(), rng.gen())))
            .collect();

        let mut reference = slab.clone();
        let mut reference_states = initial.clone();
        reference.encode_chains_with(&mut reference_states, |burst, state| {
            encoder.encode_mask(burst, state)
        });

        for &kernel in dbi_core::simd::available_kernels() {
            let mut lanes = slab.clone();
            let mut states = initial.clone();
            encoder.encode_lanes_into_with(kernel, &mut lanes, &mut states);
            if lanes.masks() != reference.masks()
                || lanes.costs() != reference.costs()
                || states != reference_states
            {
                return Err(format!(
                    "lanes kernel {kernel} diverges from the serial reference \
                     (len {burst_len}, {chains}x{bursts}, pricing {pricing})"
                ));
            }

            // Decode arm: the wire image must come back bit-identical
            // through the same kernel tier, receiver states included.
            let mut rx = BurstSlab::with_capacity(burst_len, chains * bursts);
            rx.set_pricing(pricing);
            for (index, mask) in lanes.masks().iter().enumerate() {
                let bytes = lanes.burst_bytes(index).expect("burst was pushed above");
                scratch.wire.clear();
                scratch.wire.extend_from_slice(bytes);
                mask.apply_in_place(&mut scratch.wire);
                rx.push_bytes(&scratch.wire).expect("wire bursts fit");
            }
            rx.load_masks(lanes.masks())
                .map_err(|err| format!("lanes {kernel}: load_masks: {err}"))?;
            let mut rx_states = initial.clone();
            rx.decode_in_place_with(kernel, &mut rx_states)
                .map_err(|err| format!("lanes {kernel}: decode: {err}"))?;
            if rx.bytes() != slab.bytes() || rx_states != states {
                return Err(format!(
                    "lanes kernel {kernel} decode diverges \
                     (len {burst_len}, {chains}x{bursts}, pricing {pricing})"
                ));
            }
            if pricing && rx.costs() != reference.costs() {
                return Err(format!(
                    "lanes kernel {kernel} wire re-pricing diverges \
                     (len {burst_len}, {chains}x{bursts})"
                ));
            }
        }
        report.lanes += 1;
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_is_deterministic_and_clean() {
        let config = FuzzConfig {
            seed: 0xBEEF,
            cases: 100,
        };
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cases, 100);
        assert!(a.bursts > 0);
        assert!(a.swaps > 0);
        assert!(a.lanes > 0);
    }
}
