//! Replays the golden corpus through every level of the production
//! stack.
//!
//! Four levels, lowest to highest:
//!
//! 1. **mask** — the per-burst [`DbiEncoder::encode_mask`] fast path plus
//!    the decode plane's [`DbiDecoder::decode_mask`];
//! 2. **slab** — the batched [`DbiEncoder::encode_slab_into`] kernels and
//!    [`DbiDecoder::decode_slab_into`];
//! 3. **session** — multi-group [`dbi_mem::BusSession`] streams, encode
//!    and decode, with chains interleaved across lane groups;
//! 4. **tcp** — the full service: a [`dbi_service::TcpServer`] round trip
//!    with masks and **verify mode** on, so the engine's own receiver
//!    replay runs on golden traffic as well.
//!
//! Every check compares against the reference implementation's recorded
//! expectations — masks bit for bit, per-burst zeros/transitions, carried
//! lane words — and every level also proves decode recovers the payload.
//! Failures return an `Err` describing the first divergence; the golden
//! tests and the `conformance` binary fail on any.

use crate::corpus::{Corpus, GoldenVector};
use dbi_core::{
    Burst, BurstSlab, BusState, CostBreakdown, DbiDecoder, DbiEncoder, InversionMask, LaneWord,
    Scheme,
};
use dbi_mem::BusSession;
use dbi_service::{
    CostModel, EncodeReply, EncodeRequest, Engine, ServiceConfig, TcpClient, TcpServer, VerifyMode,
};
use std::collections::BTreeMap;

/// Outcome of one replay level: how many individual checks ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Golden vectors (or vector groups) exercised.
    pub vectors: usize,
    /// Individual bursts whose expectations were checked.
    pub bursts: usize,
}

/// Level 1: the per-burst mask path, encode and decode.
///
/// # Errors
///
/// Describes the first burst whose mask, activity, carried state or
/// decode round trip diverges from the golden expectation.
pub fn check_mask_level(corpus: &Corpus) -> Result<ReplayStats, String> {
    let mut stats = ReplayStats::default();
    let mut decoded = Vec::new();
    for (index, vector) in corpus.vectors.iter().enumerate() {
        let scheme = vector.parsed_scheme();
        let mut state = BusState::idle();
        for (burst_at, bytes) in vector.bursts.iter().enumerate() {
            let context = || format!("vector {index} ({}), burst {burst_at}", vector.scheme);
            let burst = Burst::from_slice(bytes).expect("golden bursts are non-empty");
            let mask = scheme.encode_mask(&burst, &state);
            if mask.bits() != vector.masks[burst_at] {
                return Err(format!(
                    "{}: mask {:#034b} != golden {:#034b}",
                    context(),
                    mask.bits(),
                    vector.masks[burst_at]
                ));
            }
            let breakdown = mask.breakdown(&burst, &state);
            let golden = CostBreakdown::new(vector.zeros[burst_at], vector.transitions[burst_at]);
            if breakdown != golden {
                return Err(format!("{}: {breakdown} != golden {golden}", context()));
            }
            let next = mask.final_state(&burst, &state);
            if next.last().bits() != vector.final_words[burst_at] {
                return Err(format!(
                    "{}: final word {:#011b} != golden {:#011b}",
                    context(),
                    next.last().bits(),
                    vector.final_words[burst_at]
                ));
            }
            // The decode plane inverts the wire image exactly.
            let mut wire = bytes.clone();
            mask.apply_in_place(&mut wire);
            scheme
                .decode_mask(&wire, mask, &mut decoded)
                .map_err(|err| format!("{}: decode failed: {err}", context()))?;
            if &decoded != bytes {
                return Err(format!("{}: decode did not recover the payload", context()));
            }
            state = next;
            stats.bursts += 1;
        }
        stats.vectors += 1;
    }
    Ok(stats)
}

/// Level 2: the batched slab kernels, encode and decode.
///
/// # Errors
///
/// Describes the first vector whose slab results diverge.
pub fn check_slab_level(corpus: &Corpus) -> Result<ReplayStats, String> {
    let mut stats = ReplayStats::default();
    let mut slab = BurstSlab::new(8);
    for (index, vector) in corpus.vectors.iter().enumerate() {
        let context = |what: &str| format!("vector {index} ({}): {what}", vector.scheme);
        let scheme = vector.parsed_scheme();
        slab.reset(vector.burst_len);
        slab.set_pricing(true);
        for bytes in &vector.bursts {
            slab.push_bytes(bytes).expect("golden bursts fit the slab");
        }
        let mut state = BusState::idle();
        scheme.encode_slab_into(&mut slab, &mut state);

        let masks: Vec<u32> = slab.masks().iter().map(|m| m.bits()).collect();
        if masks != vector.masks {
            return Err(context("slab masks diverge from golden"));
        }
        let golden_costs: Vec<CostBreakdown> = vector
            .zeros
            .iter()
            .zip(&vector.transitions)
            .map(|(&z, &t)| CostBreakdown::new(z, t))
            .collect();
        if slab.costs() != golden_costs {
            return Err(context("slab cost rows diverge from golden"));
        }
        if state.last().bits() != *vector.final_words.last().expect("non-empty chain") {
            return Err(context("slab carried state diverges from golden"));
        }

        // Decode the wire image of the whole chain in one slab call.
        let mut rx_slab = BurstSlab::new(vector.burst_len);
        for (bytes, mask) in vector.bursts.iter().zip(slab.masks()) {
            let mut wire = bytes.clone();
            mask.apply_in_place(&mut wire);
            rx_slab.push_bytes(&wire).expect("wire bursts fit");
        }
        rx_slab
            .load_masks(slab.masks())
            .map_err(|err| context(&format!("load_masks: {err}")))?;
        let mut rx_state = BusState::idle();
        scheme
            .decode_slab_into(&mut rx_slab, &mut rx_state)
            .map_err(|err| context(&format!("slab decode: {err}")))?;
        let payload: Vec<u8> = vector.bursts.concat();
        if rx_slab.bytes() != payload {
            return Err(context("slab decode did not recover the payload"));
        }
        if rx_state != state {
            return Err(context("receiver slab state diverges from the transmitter"));
        }
        if rx_slab.costs() != golden_costs {
            return Err(context("receiver wire pricing diverges from golden"));
        }
        stats.vectors += 1;
        stats.bursts += vector.bursts.len();
    }
    Ok(stats)
}

/// Groups vectors by (scheme, burst length, chain length) so chains can
/// ride the lane groups of one multi-group session.
fn session_groups(corpus: &Corpus) -> BTreeMap<(String, usize, usize), Vec<&GoldenVector>> {
    let mut groups: BTreeMap<(String, usize, usize), Vec<&GoldenVector>> = BTreeMap::new();
    for vector in &corpus.vectors {
        groups
            .entry((vector.scheme.clone(), vector.burst_len, vector.bursts.len()))
            .or_default()
            .push(vector);
    }
    groups
}

/// Beat-interleaves a group of chains into one stream: access `a`, group
/// `g`, beat `b` carries byte `b` of chain `g`'s burst `a`.
fn interleave(chains: &[&GoldenVector]) -> Vec<u8> {
    let groups = chains.len();
    let burst_len = chains[0].burst_len;
    let accesses = chains[0].bursts.len();
    let mut data = vec![0u8; accesses * groups * burst_len];
    for (group, chain) in chains.iter().enumerate() {
        for (access, bytes) in chain.bursts.iter().enumerate() {
            let base = access * groups * burst_len;
            for (beat, &byte) in bytes.iter().enumerate() {
                data[base + beat * groups + group] = byte;
            }
        }
    }
    data
}

/// The expected mask stream (transmission order) and per-group activity
/// of an interleaved group of golden chains.
fn golden_expectations(chains: &[&GoldenVector]) -> (Vec<InversionMask>, Vec<CostBreakdown>) {
    let groups = chains.len();
    let accesses = chains[0].bursts.len();
    let mut masks = Vec::with_capacity(accesses * groups);
    for access in 0..accesses {
        for chain in chains {
            masks.push(InversionMask::from_bits(chain.masks[access]));
        }
    }
    let per_group = chains
        .iter()
        .map(|chain| CostBreakdown::new(chain.zeros.iter().sum(), chain.transitions.iter().sum()))
        .collect();
    (masks, per_group)
}

/// Level 3: multi-group [`BusSession`] streams, encode and decode, each
/// golden chain riding its own lane group.
///
/// # Errors
///
/// Describes the first session group that diverges.
pub fn check_session_level(corpus: &Corpus) -> Result<ReplayStats, String> {
    let mut stats = ReplayStats::default();
    for ((scheme_name, burst_len, _), chains) in session_groups(corpus) {
        let context = |what: &str| format!("session {scheme_name} len {burst_len}: {what}");
        let scheme: Scheme = scheme_name.parse().expect("golden spellings parse");
        let groups = chains.len();
        let data = interleave(&chains);
        let (golden_masks, golden_groups) = golden_expectations(&chains);

        let mut session = BusSession::with_geometry(groups, burst_len, scheme);
        let mut per_group = Vec::new();
        let mut masks = Vec::new();
        let bursts = session
            .encode_stream_into(&data, &mut per_group, Some(&mut masks))
            .map_err(|err| context(&format!("encode: {err}")))?;
        if masks != golden_masks {
            return Err(context("mask stream diverges from golden"));
        }
        if per_group != golden_groups {
            return Err(context("per-group activity diverges from golden"));
        }
        for (group, chain) in chains.iter().enumerate() {
            let expected = LaneWord::new(*chain.final_words.last().expect("non-empty"))
                .expect("golden words are 9-bit");
            if session.group_state(group) != Some(BusState::new(expected)) {
                return Err(context(&format!("carried state of group {group} diverges")));
            }
        }

        // Receiver: transmit the wire image and decode it back.
        let mut wire = Vec::new();
        session
            .transmit_stream_into(&data, &masks, &mut wire)
            .map_err(|err| context(&format!("transmit: {err}")))?;
        let mut receiver = BusSession::with_geometry(groups, burst_len, scheme);
        let (activity, decoded) = receiver
            .decode_stream(&wire, &masks)
            .map_err(|err| context(&format!("decode: {err}")))?;
        if decoded != data {
            return Err(context("decode did not recover the stream"));
        }
        if activity.per_group != golden_groups || activity.bursts != bursts {
            return Err(context("receiver activity diverges from golden"));
        }
        for group in 0..groups {
            if receiver.group_state(group) != session.group_state(group) {
                return Err(context(&format!(
                    "receiver state of group {group} diverges"
                )));
            }
        }
        stats.vectors += 1;
        stats.bursts += bursts as usize;
    }
    Ok(stats)
}

/// Level 4: the TCP service with masks **and verify mode** on — the
/// engine decodes its own output on every golden request, and the reply's
/// masks and activity must still match the reference expectations.
///
/// # Errors
///
/// Describes the first golden request whose reply diverges.
pub fn check_tcp_level(corpus: &Corpus) -> Result<ReplayStats, String> {
    let engine = Engine::start(ServiceConfig {
        shards: 2,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let server = TcpServer::bind(&engine, "127.0.0.1:0").map_err(|err| format!("bind: {err}"))?;
    let mut client = TcpClient::connect(server.addr()).map_err(|err| format!("connect: {err}"))?;
    let mut reply = EncodeReply::new();
    let mut stats = ReplayStats::default();

    let result = (|| {
        for (session_id, ((scheme_name, burst_len, _), chains)) in
            session_groups(corpus).into_iter().enumerate()
        {
            let context = |what: &str| format!("tcp {scheme_name} len {burst_len}: {what}");
            let scheme: Scheme = scheme_name.parse().expect("golden spellings parse");
            let data = interleave(&chains);
            let (golden_masks, golden_groups) = golden_expectations(&chains);
            client
                .encode(
                    &EncodeRequest {
                        session_id: session_id as u64,
                        scheme,
                        cost_model: CostModel::Inline,
                        groups: chains.len() as u16,
                        burst_len: burst_len as u8,
                        want_masks: true,
                        verify: VerifyMode::RoundTrip,
                        payload: &data,
                    },
                    &mut reply,
                )
                .map_err(|err| context(&format!("request: {err}")))?;
            if reply.masks != golden_masks {
                return Err(context("reply masks diverge from golden"));
            }
            if reply.per_group != golden_groups {
                return Err(context("reply activity diverges from golden"));
            }
            stats.vectors += 1;
            stats.bursts += reply.bursts as usize;
        }
        Ok(stats)
    })();

    drop(client);
    server.shutdown();
    // Every golden request ran with verify on and none may have failed.
    let totals = engine.metrics().totals();
    engine.shutdown();
    let stats = result?;
    if totals.verified != stats.vectors as u64 || totals.verify_failures != 0 {
        return Err(format!(
            "verify counters diverge: {} verified, {} failures over {} requests",
            totals.verified, totals.verify_failures, stats.vectors
        ));
    }
    Ok(stats)
}

/// Runs all four levels, in order.
///
/// # Errors
///
/// The first failing level's description, prefixed with its name.
pub fn check_all(corpus: &Corpus) -> Result<[ReplayStats; 4], String> {
    Ok([
        check_mask_level(corpus).map_err(|err| format!("mask level: {err}"))?,
        check_slab_level(corpus).map_err(|err| format!("slab level: {err}"))?,
        check_session_level(corpus).map_err(|err| format!("session level: {err}"))?,
        check_tcp_level(corpus).map_err(|err| format!("tcp level: {err}"))?,
    ])
}
