//! Standalone conformance run: replays the checked-in golden corpus
//! through all four production levels, then runs the seeded fuzz smoke.
//!
//! ```text
//! cargo run --release -p dbi-conformance --bin conformance
//! DBI_FUZZ_CASES=100000 cargo run --release -p dbi-conformance --bin conformance
//! ```
//!
//! Exits non-zero on the first divergence.

use dbi_conformance::{fuzz, replay, Corpus, FuzzConfig};

fn main() {
    let corpus = Corpus::checked_in();
    println!(
        "golden corpus: {} vectors (seed {:#x})",
        corpus.vectors.len(),
        corpus.seed
    );
    match replay::check_all(&corpus) {
        Ok([mask, slab, session, tcp]) => {
            println!(
                "  mask level:    {} vectors, {} bursts",
                mask.vectors, mask.bursts
            );
            println!(
                "  slab level:    {} vectors, {} bursts",
                slab.vectors, slab.bursts
            );
            println!(
                "  session level: {} groups, {} bursts",
                session.vectors, session.bursts
            );
            println!(
                "  tcp level:     {} requests, {} bursts (verify on)",
                tcp.vectors, tcp.bursts
            );
        }
        Err(err) => {
            eprintln!("golden replay FAILED: {err}");
            std::process::exit(1);
        }
    }

    let cases = std::env::var("DBI_FUZZ_CASES")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(FuzzConfig::default().cases);
    let config = FuzzConfig {
        cases,
        ..FuzzConfig::default()
    };
    match fuzz::run(&config) {
        Ok(report) => println!(
            "fuzz: {} cases, {} bursts, {} plan swaps, {} exhaustive certifications — clean",
            report.cases, report.bursts, report.swaps, report.exhaustive
        ),
        Err(err) => {
            eprintln!("fuzz FAILED: {err}");
            std::process::exit(1);
        }
    }
}
