//! Regenerates the checked-in golden corpus from the reference
//! implementation.
//!
//! ```text
//! cargo run -p dbi-conformance --bin gen_golden
//! ```
//!
//! Generation is deterministic in [`dbi_conformance::GOLDEN_SEED`], so an
//! unchanged generator reproduces `vectors/golden.json` byte for byte;
//! a diff under version control therefore always means the reference
//! implementation (or the corpus shape) deliberately changed.

use dbi_conformance::{persist_golden, Corpus, GOLDEN_SEED};

fn main() {
    let corpus = Corpus::generate(GOLDEN_SEED);
    let json = corpus.to_json();
    // Self-check before touching the file: the document must round-trip.
    let parsed = Corpus::from_json(&json).expect("generated corpus must parse");
    assert_eq!(parsed, corpus, "generated corpus must round-trip");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/vectors/golden.json");
    std::fs::write(path, &json).expect("writing the corpus file");
    println!(
        "wrote {} vectors ({} bytes) to {path}",
        corpus.vectors.len(),
        json.len()
    );

    // The durable-store format pin rides the same generator: hex images
    // of a version-1 snapshot and its paired journal.
    let snapshot = persist_golden::golden_snapshot_image();
    let journal = persist_golden::golden_journal_image();
    let doc = persist_golden::to_hex_document(&snapshot, &journal);
    let (re_snapshot, re_journal) = persist_golden::from_hex_document(&doc);
    assert_eq!(re_snapshot, snapshot, "hex document must round-trip");
    assert_eq!(re_journal, journal, "hex document must round-trip");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/vectors/persist_v1.hex");
    std::fs::write(path, &doc).expect("writing the persist image file");
    println!(
        "wrote persist images ({} + {} bytes) to {path}",
        snapshot.len(),
        journal.len()
    );
}
