//! Regenerates the checked-in golden corpus from the reference
//! implementation.
//!
//! ```text
//! cargo run -p dbi-conformance --bin gen_golden
//! ```
//!
//! Generation is deterministic in [`dbi_conformance::GOLDEN_SEED`], so an
//! unchanged generator reproduces `vectors/golden.json` byte for byte;
//! a diff under version control therefore always means the reference
//! implementation (or the corpus shape) deliberately changed.

use dbi_conformance::{Corpus, GOLDEN_SEED};

fn main() {
    let corpus = Corpus::generate(GOLDEN_SEED);
    let json = corpus.to_json();
    // Self-check before touching the file: the document must round-trip.
    let parsed = Corpus::from_json(&json).expect("generated corpus must parse");
    assert_eq!(parsed, corpus, "generated corpus must round-trip");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/vectors/golden.json");
    std::fs::write(path, &json).expect("writing the corpus file");
    println!(
        "wrote {} vectors ({} bytes) to {path}",
        corpus.vectors.len(),
        json.len()
    );
}
