//! Golden images of the durable-store formats: a version-1 snapshot and
//! the matching journal, generated deterministically and checked in as
//! `vectors/persist_v1.hex`.
//!
//! The on-disk formats are a compatibility promise — a snapshot written
//! by yesterday's build must restore under tomorrow's. The corpus in
//! [`crate::corpus`] pins the *coding* behaviour; this module pins the
//! *byte layout* of the persistence layer the same way: an unchanged
//! writer reproduces the checked-in image bit for bit, so any diff under
//! version control is a deliberate (and reviewable) format change.
//! Regenerate with `cargo run -p dbi-conformance --bin gen_golden`.

use dbi_core::persist::push_session_record;
use dbi_core::word::LANE_MASK;
use dbi_core::{BusState, LaneWord, Scheme};
use dbi_service::persist::journal::encode_journal_header;
use dbi_service::persist::snapshot::encode_snapshot;

/// Generation the golden snapshot is written at. The paired journal is
/// one generation ahead, matching the engine's invariant that a live
/// journal always runs at `snapshot generation + 1`.
pub const PERSIST_GOLDEN_GENERATION: u64 = 41;

/// The checked-in golden image (hex text, snapshot then journal,
/// separated by a blank line).
pub const CHECKED_IN_PERSIST: &str = include_str!("../vectors/persist_v1.hex");

/// One session per paper scheme, with geometry and carried states varied
/// deterministically so every record field (id, scheme tag, weights,
/// group count, burst length, per-group states) takes a distinguishing
/// value in the image.
fn golden_records() -> Vec<u8> {
    let mut records = Vec::new();
    for (index, &scheme) in Scheme::paper_set().iter().enumerate() {
        let groups = 1 + index as u16;
        let burst_len = [4u8, 8, 16][index % 3];
        let states: Vec<BusState> = (0..groups)
            .map(|g| {
                let raw = (0x0157_u16
                    .wrapping_mul(index as u16 + 1)
                    .wrapping_add(g * 11))
                    & LANE_MASK;
                BusState::new(LaneWord::new(raw).expect("masked to lane width"))
            })
            .collect();
        push_session_record(
            &mut records,
            0x90_1D00 + index as u64,
            scheme,
            burst_len,
            &states,
        );
    }
    records
}

/// The golden snapshot image: a version-1 header at
/// [`PERSIST_GOLDEN_GENERATION`] over one record per paper scheme.
#[must_use]
pub fn golden_snapshot_image() -> Vec<u8> {
    let records = golden_records();
    encode_snapshot(
        PERSIST_GOLDEN_GENERATION,
        Scheme::paper_set().len() as u32,
        &records,
    )
}

/// The golden journal image: a version-1 journal header one generation
/// ahead of the snapshot, followed by the same session records — the two
/// stores share the record layer byte for byte.
#[must_use]
pub fn golden_journal_image() -> Vec<u8> {
    let mut image = encode_journal_header(PERSIST_GOLDEN_GENERATION + 1).to_vec();
    image.extend_from_slice(&golden_records());
    image
}

/// Renders both golden images as the checked-in hex document.
#[must_use]
pub fn to_hex_document(snapshot: &[u8], journal: &[u8]) -> String {
    let mut doc = String::new();
    for (i, image) in [snapshot, journal].into_iter().enumerate() {
        if i > 0 {
            doc.push('\n');
        }
        for chunk in image.chunks(32) {
            for byte in chunk {
                doc.push_str(&format!("{byte:02x}"));
            }
            doc.push('\n');
        }
    }
    doc
}

/// Parses a hex document back into its (snapshot, journal) images.
///
/// # Panics
///
/// Panics when the document is not two blank-line-separated blocks of
/// hex — the file is checked in, so malformation means a bad edit.
#[must_use]
pub fn from_hex_document(doc: &str) -> (Vec<u8>, Vec<u8>) {
    let mut images = doc.split("\n\n").map(|block| {
        block
            .split_whitespace()
            .flat_map(|line| {
                line.as_bytes().chunks(2).map(|pair| {
                    let text = std::str::from_utf8(pair).expect("hex is ASCII");
                    u8::from_str_radix(text, 16).expect("checked-in image must be hex")
                })
            })
            .collect::<Vec<u8>>()
    });
    let snapshot = images.next().expect("snapshot block");
    let journal = images.next().expect("journal block");
    assert!(images.next().is_none(), "exactly two blocks expected");
    (snapshot, journal)
}
