//! A minimal JSON subset reader for the golden corpus.
//!
//! The build environment has no serialisation crates, so — like the
//! service's handwritten metrics JSON on the write side — the corpus is
//! parsed by a small recursive-descent reader covering exactly the subset
//! the corpus uses: objects, arrays, strings (with `\"`, `\\`, `\/`,
//! `\n`, `\t`, `\r` and `\uXXXX` escapes), unsigned integers, booleans
//! and `null`. Anything else is a typed parse error with a byte offset,
//! never a panic.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the corpus uses).
    Number(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (keys are unique).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A member of an object, if the value is an object holding the key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.get(key),
            _ => None,
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the violation.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(self.error("only unsigned integers are supported"));
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse()
            .map(Value::Number)
            .map_err(|_| self.error("integer out of range"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = core::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unsupported escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = core::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input was a valid &str");
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if members.insert(key, value).is_some() {
                return Err(self.error("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in JSON output.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_corpus_subset() {
        let doc = r#"{"format": 1, "name": "x\ny", "items": [1, 2, 3], "flag": true, "none": null, "empty": [], "nested": {"a": 0}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("format").unwrap().as_u64(), Some(1));
        assert_eq!(value.get("name").unwrap().as_str(), Some("x\ny"));
        assert_eq!(value.get("items").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(value.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(value.get("none"), Some(&Value::Null));
        assert_eq!(value.get("empty").unwrap().as_array(), Some(&[][..]));
        assert_eq!(
            value.get("nested").unwrap().get("a").unwrap().as_u64(),
            Some(0)
        );
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let text = "tab\t quote\" slash\\ newline\n unicode \u{1F600}";
        let doc = format!("{{\"s\": \"{}\"}}", escape(text));
        let value = parse(&doc).unwrap();
        assert_eq!(value.get("s").unwrap().as_str(), Some(text));
    }

    #[test]
    fn rejects_malformed_documents_typed() {
        for (doc, needle) in [
            ("", "expected a value"),
            ("{", "expected '\"'"),
            ("[1,]", "expected a value"),
            ("{\"a\":1,\"a\":2}", "duplicate"),
            ("1.5", "unsigned"),
            ("-3", "expected a value"),
            ("\"abc", "unterminated"),
            ("[1] junk", "trailing"),
            ("{\"a\" 1}", "expected ':'"),
            ("\"\\q\"", "unsupported escape"),
            ("18446744073709551616", "out of range"),
        ] {
            let err = parse(doc).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{doc:?}: {err} should mention {needle:?}"
            );
        }
    }
}
