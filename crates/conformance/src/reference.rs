//! Straight-from-the-paper reference encoders.
//!
//! Everything here is written directly from the scheme definitions in
//! *"Optimal DC/AC Data Bus Inversion Coding"* (Section II for the
//! conventional schemes, Section III for the trellis) using nothing but
//! plain integer arithmetic on 9-bit lane words — **no** `dbi-core` code:
//! no [`dbi_core::CostLut`] tables, no survivor-mask kernels, no slab
//! paths. This is the independent oracle the golden corpus is generated
//! from and the fuzz harness compares against; a bug shared between the
//! production LUT kernel and this module would have to be introduced
//! twice, in two unrelated shapes.
//!
//! Conventions match the paper and the JEDEC standards: a lane word is
//! 9 bits — bits 0–7 the DQ lanes, bit 8 the DBI lane, DBI **low** marks
//! an inverted payload — and the bus idles with every lane high.

/// Number of lanes of one DBI group (8 DQ + the DBI lane).
pub const LANES: u32 = 9;

/// The idle lane word: all nine lanes high.
pub const IDLE: u16 = 0x1FF;

/// The lane word transmitted for `byte` under the given inversion
/// decision: the (possibly complemented) payload on bits 0–7 plus the
/// DBI level on bit 8 (low = inverted).
#[must_use]
pub fn lane_word(byte: u8, inverted: bool) -> u16 {
    let payload = if inverted { !byte } else { byte };
    u16::from(payload) | (u16::from(!inverted) << 8)
}

/// Zeros a lane word transmits (termination cost in a POD interface).
#[must_use]
pub fn zeros(word: u16) -> u64 {
    u64::from(LANES - word.count_ones())
}

/// Lanes that toggle between two consecutive words (switching cost).
#[must_use]
pub fn transitions(prev: u16, word: u16) -> u64 {
    u64::from((prev ^ word).count_ones())
}

/// The data byte a receiver recovers from a lane word: undo the
/// complement when the DBI lane (bit 8) is low.
#[must_use]
pub fn decode(word: u16) -> u8 {
    let payload = (word & 0xFF) as u8;
    if word & 0x100 == 0 {
        !payload
    } else {
        payload
    }
}

/// The schemes the reference implements, with their (α, β) coefficients
/// where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefScheme {
    /// No encoding.
    Raw,
    /// Invert bytes with five or more zero bits.
    Dc,
    /// Invert when inversion yields strictly fewer lane toggles.
    Ac,
    /// Hollis: first byte by the DC rule, the rest by the AC rule.
    AcDc,
    /// Per-byte weighted minimisation, no look-ahead (ties to plain).
    Greedy(u64, u64),
    /// The paper's burst-global optimum of α·transitions + β·zeros.
    Opt(u64, u64),
}

/// The per-burst result of a reference encode: the inversion decisions
/// (bit *i* = byte *i* inverted), the activity of the burst, and the lane
/// word left on the wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefBurst {
    /// Inversion decisions, one bit per byte.
    pub mask: u32,
    /// Zeros transmitted over the burst.
    pub zeros: u64,
    /// Lanes toggled over the burst (from the entry state).
    pub transitions: u64,
    /// The 9-bit lane word after the burst's last beat.
    pub final_word: u16,
}

/// Encodes one burst with a reference scheme, entering from the lane word
/// `prev` (what the wires carried before the burst).
///
/// # Panics
///
/// Panics on an empty burst or one longer than the 32-bit mask width.
#[must_use]
pub fn encode(scheme: RefScheme, bytes: &[u8], prev: u16) -> RefBurst {
    assert!(
        !bytes.is_empty() && bytes.len() <= 32,
        "reference bursts are 1..=32 bytes"
    );
    let mask = match scheme {
        RefScheme::Raw => 0,
        RefScheme::Dc => dc_mask(bytes),
        RefScheme::Ac => ac_mask(bytes, prev, false),
        RefScheme::AcDc => ac_mask(bytes, prev, true),
        RefScheme::Greedy(alpha, beta) => greedy_mask(bytes, prev, alpha, beta),
        RefScheme::Opt(alpha, beta) => opt_mask(bytes, prev, alpha, beta),
    };
    price(bytes, mask, prev)
}

/// Prices a burst under explicit inversion decisions: walks the lane
/// words the decisions produce and counts zeros and transitions.
#[must_use]
pub fn price(bytes: &[u8], mask: u32, prev: u16) -> RefBurst {
    let mut word = prev;
    let mut z = 0;
    let mut t = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        let next = lane_word(byte, mask >> i & 1 == 1);
        z += zeros(next);
        t += transitions(word, next);
        word = next;
    }
    RefBurst {
        mask,
        zeros: z,
        transitions: t,
        final_word: word,
    }
}

/// The weighted cost of a burst under explicit decisions.
#[must_use]
pub fn cost(bytes: &[u8], mask: u32, prev: u16, alpha: u64, beta: u64) -> u64 {
    let burst = price(bytes, mask, prev);
    alpha * burst.transitions + beta * burst.zeros
}

/// DBI DC (Section II): invert every byte carrying five or more zeros.
fn dc_mask(bytes: &[u8]) -> u32 {
    let mut mask = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        if byte.count_zeros() >= 5 {
            mask |= 1 << i;
        }
    }
    mask
}

/// DBI AC (Section II), optionally with Hollis' DC first beat: invert a
/// byte exactly when the inverted word toggles strictly fewer lanes than
/// the plain word from what was actually driven before it.
fn ac_mask(bytes: &[u8], prev: u16, dc_first: bool) -> u32 {
    let mut word = prev;
    let mut mask = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        let invert = if dc_first && i == 0 {
            byte.count_zeros() >= 5
        } else {
            transitions(word, lane_word(byte, true)) < transitions(word, lane_word(byte, false))
        };
        if invert {
            mask |= 1 << i;
        }
        word = lane_word(byte, invert);
    }
    mask
}

/// Greedy weighted heuristic (related work): per byte, keep the cheaper
/// of the two candidate words under α·transitions + β·zeros, ties to the
/// plain word.
fn greedy_mask(bytes: &[u8], prev: u16, alpha: u64, beta: u64) -> u32 {
    let mut word = prev;
    let mut mask = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        let plain = lane_word(byte, false);
        let inv = lane_word(byte, true);
        let plain_cost = alpha * transitions(word, plain) + beta * zeros(plain);
        let inv_cost = alpha * transitions(word, inv) + beta * zeros(inv);
        let invert = inv_cost < plain_cost;
        if invert {
            mask |= 1 << i;
        }
        word = if invert { inv } else { plain };
    }
    mask
}

/// DBI OPT (Section III): the shortest path through the two-state trellis,
/// as a plain dynamic program over explicitly materialised lane words with
/// a backtrack pass — the textbook form of the paper's Fig. 2, with the
/// same tie policy as the hardware comparators (ties towards the
/// non-inverted predecessor and the non-inverted end state).
fn opt_mask(bytes: &[u8], prev: u16, alpha: u64, beta: u64) -> u32 {
    let n = bytes.len();
    let words: Vec<[u16; 2]> = bytes
        .iter()
        .map(|&b| [lane_word(b, false), lane_word(b, true)])
        .collect();

    // cost[s] after byte i; from[i][s] = the predecessor state that
    // realised it (ties to state 0, the non-inverted predecessor).
    let mut cost = [0u64; 2];
    for (s, c) in cost.iter_mut().enumerate() {
        *c = alpha * transitions(prev, words[0][s]) + beta * zeros(words[0][s]);
    }
    let mut from = vec![[0usize; 2]; n];
    for i in 1..n {
        let mut next = [0u64; 2];
        for s in 0..2 {
            let via_plain = cost[0] + alpha * transitions(words[i - 1][0], words[i][s]);
            let via_inv = cost[1] + alpha * transitions(words[i - 1][1], words[i][s]);
            let (best, pred) = if via_inv < via_plain {
                (via_inv, 1)
            } else {
                (via_plain, 0)
            };
            next[s] = best + beta * zeros(words[i][s]);
            from[i][s] = pred;
        }
        cost = next;
    }

    // Backtrack from the cheaper end state (tie to non-inverted).
    let mut state = usize::from(cost[1] < cost[0]);
    let mut mask = 0;
    for i in (0..n).rev() {
        if state == 1 {
            mask |= 1 << i;
        }
        state = from[i][state];
    }
    mask
}

/// Brute-force oracle: the cheapest of all 2ⁿ decision vectors (first
/// found wins ties, enumerating plain-first lexicographically). Used at
/// corpus-generation time to certify the DP; exponential, so only for
/// short bursts.
#[must_use]
pub fn exhaustive_min_cost(bytes: &[u8], prev: u16, alpha: u64, beta: u64) -> u64 {
    assert!(bytes.len() <= 16, "exhaustive oracle is 2^n");
    (0u32..1 << bytes.len())
        .map(|mask| cost(bytes, mask, prev, alpha, beta))
        .min()
        .expect("at least the all-plain vector exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 2 of the paper: the worked example burst.
    const FIG2: [u8; 8] = [
        0b1000_1110,
        0b1000_0110,
        0b1001_0110,
        0b1110_1001,
        0b0111_1101,
        0b1011_0111,
        0b0101_0111,
        0b1100_0100,
    ];

    #[test]
    fn fig2_costs_match_the_paper() {
        let dc = encode(RefScheme::Dc, &FIG2, IDLE);
        assert_eq!((dc.zeros, dc.transitions), (26, 42));
        let ac = encode(RefScheme::Ac, &FIG2, IDLE);
        assert_eq!((ac.zeros, ac.transitions), (43, 22));
        let opt = encode(RefScheme::Opt(1, 1), &FIG2, IDLE);
        // The paper reports the 28-zeros/24-transitions member of the
        // cost-52 tie class; the hardware tie policy (non-inverted wins)
        // lands on 29/23 — same optimum, certified against brute force.
        assert_eq!(opt.zeros + opt.transitions, 52);
        assert_eq!(exhaustive_min_cost(&FIG2, IDLE, 1, 1), 52);
    }

    #[test]
    fn opt_dp_equals_the_exhaustive_oracle() {
        let mut seed = 0x1234_5678u32;
        let mut next = || {
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (seed >> 24) as u8
        };
        for (alpha, beta) in [(1, 1), (3, 1), (1, 4), (7, 2)] {
            for len in 1..=10usize {
                let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
                let prev = lane_word(next(), next() & 1 == 1);
                let dp = encode(RefScheme::Opt(alpha, beta), &bytes, prev);
                let dp_cost = alpha * dp.transitions + beta * dp.zeros;
                assert_eq!(
                    dp_cost,
                    exhaustive_min_cost(&bytes, prev, alpha, beta),
                    "alpha={alpha} beta={beta} bytes={bytes:02x?}"
                );
            }
        }
    }

    #[test]
    fn lane_arithmetic_is_self_consistent() {
        for byte in [0x00u8, 0xFF, 0xA5, 0x8E] {
            for inverted in [false, true] {
                let word = lane_word(byte, inverted);
                assert_eq!(decode(word), byte);
                assert!(zeros(word) <= 9);
            }
        }
        assert_eq!(zeros(IDLE), 0);
        assert_eq!(transitions(IDLE, 0), 9);
        // Fig. 2 first byte from idle, alpha = beta = 1: plain 8, inverted 10.
        let plain = lane_word(FIG2[0], false);
        let inv = lane_word(FIG2[0], true);
        assert_eq!(transitions(IDLE, plain) + zeros(plain), 8);
        assert_eq!(transitions(IDLE, inv) + zeros(inv), 10);
    }

    #[test]
    fn price_and_cost_agree() {
        let burst = price(&FIG2, 0b1010_0101, IDLE);
        assert_eq!(
            cost(&FIG2, 0b1010_0101, IDLE, 2, 3),
            2 * burst.transitions + 3 * burst.zeros
        );
    }
}
