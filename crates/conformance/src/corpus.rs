//! The golden-vector corpus: checked-in, externally checkable encode
//! expectations.
//!
//! Each vector is one **carried-state chain**: a sequence of bursts for a
//! single DBI group under one scheme, starting from the idle bus, with
//! the reference implementation's per-burst inversion masks, zero and
//! transition counts, and post-burst lane words recorded. The corpus is
//! generated **once** by [`Corpus::generate`] from the
//! [`reference`](mod@crate::reference) encoders (plain lane-word arithmetic,
//! not the production LUT kernel), written to
//! `crates/conformance/vectors/golden.json`, and checked in; the
//! conformance tests replay it through every layer of the production
//! stack. Regenerate with `cargo run -p dbi-conformance --bin
//! gen_golden` (the output is deterministic, so an unchanged generator
//! reproduces the file byte for byte).

use crate::json::{self, Value};
use crate::reference::{self, RefScheme};
use dbi_core::Scheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The seed the checked-in corpus was generated with.
pub const GOLDEN_SEED: u64 = 0xDB1_C0DE;

/// Bursts per golden chain: enough to exercise carried state through
/// several inversion decisions without bloating the corpus.
pub const CHAIN_LEN: usize = 6;

/// The checked-in corpus document.
pub const CHECKED_IN: &str = include_str!("../vectors/golden.json");

/// The corpus format this build reads and writes.
pub const FORMAT: u64 = 1;

/// One golden chain: `bursts[i]` is encoded after `bursts[..i]` with the
/// carried lane state, and `masks`/`zeros`/`transitions`/`final_words`
/// record the reference implementation's expectations per burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenVector {
    /// The scheme, in its `Scheme::from_str` spelling (e.g. `"opt:2,3"`).
    pub scheme: String,
    /// Burst length in bytes, 1..=32.
    pub burst_len: usize,
    /// The payload bytes of each burst in the chain.
    pub bursts: Vec<Vec<u8>>,
    /// Expected inversion decisions per burst (bit *i* = byte *i*).
    pub masks: Vec<u32>,
    /// Expected zeros transmitted per burst.
    pub zeros: Vec<u64>,
    /// Expected lane transitions per burst (from the carried state).
    pub transitions: Vec<u64>,
    /// Expected 9-bit lane word after each burst.
    pub final_words: Vec<u16>,
}

impl GoldenVector {
    /// The parsed [`Scheme`] this vector exercises.
    ///
    /// # Panics
    ///
    /// Panics when the recorded spelling does not parse — a corrupt
    /// corpus, which the conformance run must fail loudly on.
    #[must_use]
    pub fn parsed_scheme(&self) -> Scheme {
        self.scheme
            .parse()
            .unwrap_or_else(|err| panic!("golden scheme {:?}: {err}", self.scheme))
    }
}

/// A whole corpus: format tag, generation seed and the vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corpus {
    /// Format version of the document ([`FORMAT`]).
    pub format: u64,
    /// The seed the random chains were drawn with.
    pub seed: u64,
    /// The golden chains.
    pub vectors: Vec<GoldenVector>,
}

/// Maps a parsed [`Scheme`] onto its reference counterpart.
///
/// # Panics
///
/// Panics on a scheme variant the reference does not implement (none
/// exist today; the panic future-proofs the oracle).
#[must_use]
pub fn ref_scheme(scheme: Scheme) -> RefScheme {
    match scheme {
        Scheme::Raw => RefScheme::Raw,
        Scheme::Dc => RefScheme::Dc,
        Scheme::Ac => RefScheme::Ac,
        Scheme::AcDc => RefScheme::AcDc,
        Scheme::Greedy(w) => RefScheme::Greedy(u64::from(w.alpha()), u64::from(w.beta())),
        Scheme::Opt(w) => RefScheme::Opt(u64::from(w.alpha()), u64::from(w.beta())),
        Scheme::OptFixed => RefScheme::Opt(1, 1),
        other => panic!("scheme {other} has no reference implementation"),
    }
}

/// The scheme spellings the corpus covers: every non-parametric scheme
/// plus a spread of greedy/optimal operating points (all parse through
/// `Scheme::from_str`, so the corpus also pins the spelling contract).
pub const GOLDEN_SCHEMES: &[&str] = &[
    "raw",
    "dc",
    "ac",
    "acdc",
    "greedy",
    "greedy:3,1",
    "opt",
    "opt-fixed",
    "opt:2,3",
    "opt:1,4",
    "opt:7,2",
];

/// The burst lengths the corpus covers: the degenerate single-beat case,
/// odd lengths, the standard BL8/BL16 and the 32-byte mask limit.
pub const GOLDEN_BURST_LENS: &[usize] = &[1, 2, 3, 5, 8, 16, 32];

/// Structured payload families every (scheme × length) pair is exercised
/// with, besides a seeded random chain: the adversarial patterns DBI
/// exists for.
fn structured_chain(burst_len: usize) -> Vec<Vec<u8>> {
    let patterns: [fn(usize, usize) -> u8; CHAIN_LEN] = [
        |_, _| 0x00,                                       // worst-case termination
        |_, _| 0xFF,                                       // best-case termination
        |_, beat| if beat % 2 == 0 { 0x55 } else { 0xAA }, // checkerboard
        |_, beat| 1u8 << (beat % 8),                       // walking one
        |_, beat| !(1u8 << (beat % 8)),                    // walking zero
        |burst, beat| (burst * 31 + beat * 7) as u8,       // mild structure
    ];
    (0..CHAIN_LEN)
        .map(|burst| {
            (0..burst_len)
                .map(|beat| patterns[burst](burst, beat))
                .collect()
        })
        .collect()
}

impl Corpus {
    /// Generates the corpus from the reference implementation. Fully
    /// deterministic in `seed`.
    ///
    /// Generation cross-checks itself: for short bursts the optimal
    /// schemes' chain costs are certified against the exhaustive 2ⁿ
    /// oracle, and every optimal mask is checked to cost no more than
    /// every other scheme's mask for the same burst and entry state —
    /// the paper's defining property.
    #[must_use]
    pub fn generate(seed: u64) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vectors = Vec::new();
        for &scheme_name in GOLDEN_SCHEMES {
            let scheme: Scheme = scheme_name.parse().expect("golden spellings parse");
            for &burst_len in GOLDEN_BURST_LENS {
                let random_chain: Vec<Vec<u8>> = (0..CHAIN_LEN)
                    .map(|_| (0..burst_len).map(|_| rng.gen::<u8>()).collect())
                    .collect();
                for chain in [random_chain, structured_chain(burst_len)] {
                    vectors.push(golden_chain(scheme_name, scheme, burst_len, chain));
                }
            }
        }
        Corpus {
            format: FORMAT,
            seed,
            vectors,
        }
    }

    /// Parses the checked-in corpus.
    ///
    /// # Panics
    ///
    /// Panics when the checked-in document is malformed — the corpus is a
    /// build artefact under version control, so that is a repository
    /// defect, not an input error.
    #[must_use]
    pub fn checked_in() -> Corpus {
        Corpus::from_json(CHECKED_IN).expect("checked-in golden corpus must parse")
    }

    /// Serialises the corpus; [`Corpus::from_json`] round-trips it.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"format\": {},", self.format);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"vectors\": [");
        for (index, vector) in self.vectors.iter().enumerate() {
            let comma = if index + 1 == self.vectors.len() {
                ""
            } else {
                ","
            };
            let bursts: Vec<String> = vector
                .bursts
                .iter()
                .map(|bytes| {
                    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
                    format!("\"{hex}\"")
                })
                .collect();
            let _ = writeln!(
                out,
                "    {{\"scheme\": \"{}\", \"burst_len\": {}, \"bursts\": [{}], \
                 \"masks\": {:?}, \"zeros\": {:?}, \"transitions\": {:?}, \
                 \"final_words\": {:?}}}{comma}",
                json::escape(&vector.scheme),
                vector.burst_len,
                bursts.join(", "),
                vector.masks,
                vector.zeros,
                vector.transitions,
                vector.final_words,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out.push('\n');
        out
    }

    /// Parses a corpus document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first structural
    /// violation (bad JSON, wrong format tag, missing or mistyped
    /// fields, inconsistent chain lengths).
    pub fn from_json(text: &str) -> Result<Corpus, String> {
        let doc = json::parse(text).map_err(|err| err.to_string())?;
        let format = field_u64(&doc, "format")?;
        if format != FORMAT {
            return Err(format!("unsupported corpus format {format}"));
        }
        let seed = field_u64(&doc, "seed")?;
        let vectors_json = doc
            .get("vectors")
            .and_then(Value::as_array)
            .ok_or("missing \"vectors\" array")?;
        let mut vectors = Vec::with_capacity(vectors_json.len());
        for (index, entry) in vectors_json.iter().enumerate() {
            vectors.push(parse_vector(entry).map_err(|err| format!("vector {index}: {err}"))?);
        }
        Ok(Corpus {
            format,
            seed,
            vectors,
        })
    }
}

/// Encodes one chain with the reference implementation and certifies it.
fn golden_chain(
    scheme_name: &str,
    scheme: Scheme,
    burst_len: usize,
    chain: Vec<Vec<u8>>,
) -> GoldenVector {
    let reference = ref_scheme(scheme);
    let mut prev = reference::IDLE;
    let mut masks = Vec::new();
    let mut zeros = Vec::new();
    let mut transitions = Vec::new();
    let mut final_words = Vec::new();
    for bytes in &chain {
        let burst = reference::encode(reference, bytes, prev);

        // Certify optimality where the paper claims it: the optimal mask
        // costs no more than any other scheme's for this burst and entry
        // state, and — for short bursts — exactly matches the 2ⁿ oracle.
        if let RefScheme::Opt(alpha, beta) = reference {
            let opt_cost = alpha * burst.transitions + beta * burst.zeros;
            for other in [
                RefScheme::Raw,
                RefScheme::Dc,
                RefScheme::Ac,
                RefScheme::AcDc,
                RefScheme::Greedy(alpha, beta),
            ] {
                let rival = reference::encode(other, bytes, prev);
                assert!(
                    opt_cost <= alpha * rival.transitions + beta * rival.zeros,
                    "OPT must not lose to {other:?} on {bytes:02x?}"
                );
            }
            if bytes.len() <= 12 {
                assert_eq!(
                    opt_cost,
                    reference::exhaustive_min_cost(bytes, prev, alpha, beta),
                    "OPT DP must match the exhaustive oracle on {bytes:02x?}"
                );
            }
        }

        masks.push(burst.mask);
        zeros.push(burst.zeros);
        transitions.push(burst.transitions);
        final_words.push(burst.final_word);
        prev = burst.final_word;
    }
    GoldenVector {
        scheme: scheme_name.to_owned(),
        burst_len,
        bursts: chain,
        masks,
        zeros,
        transitions,
        final_words,
    }
}

fn field_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or mistyped \"{key}\""))
}

fn field_u64_array(value: &Value, key: &str) -> Result<Vec<u64>, String> {
    value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing \"{key}\" array"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| format!("non-integer entry in \"{key}\""))
        })
        .collect()
}

fn parse_vector(entry: &Value) -> Result<GoldenVector, String> {
    let scheme = entry
        .get("scheme")
        .and_then(Value::as_str)
        .ok_or("missing \"scheme\"")?
        .to_owned();
    let burst_len = field_u64(entry, "burst_len")? as usize;
    if !(1..=32).contains(&burst_len) {
        return Err(format!("burst_len {burst_len} out of range"));
    }
    let bursts: Vec<Vec<u8>> = entry
        .get("bursts")
        .and_then(Value::as_array)
        .ok_or("missing \"bursts\" array")?
        .iter()
        .map(|item| {
            let hex = item.as_str().ok_or("non-string burst")?;
            parse_hex(hex)
        })
        .collect::<Result<_, String>>()?;
    let masks: Vec<u32> = field_u64_array(entry, "masks")?
        .into_iter()
        .map(|m| u32::try_from(m).map_err(|_| "mask exceeds 32 bits".to_owned()))
        .collect::<Result<_, String>>()?;
    let zeros = field_u64_array(entry, "zeros")?;
    let transitions = field_u64_array(entry, "transitions")?;
    let final_words: Vec<u16> = field_u64_array(entry, "final_words")?
        .into_iter()
        .map(|w| {
            u16::try_from(w)
                .ok()
                .filter(|w| *w <= 0x1FF)
                .ok_or_else(|| "final word exceeds 9 bits".to_owned())
        })
        .collect::<Result<_, String>>()?;
    let count = bursts.len();
    if count == 0 {
        return Err("empty chain".to_owned());
    }
    if bursts.iter().any(|b| b.len() != burst_len) {
        return Err("burst length disagrees with burst_len".to_owned());
    }
    if [
        masks.len(),
        zeros.len(),
        transitions.len(),
        final_words.len(),
    ] != [count; 4]
    {
        return Err("expectation arrays disagree with the chain length".to_owned());
    }
    Ok(GoldenVector {
        scheme,
        burst_len,
        bursts,
        masks,
        zeros,
        transitions,
        final_words,
    })
}

fn parse_hex(hex: &str) -> Result<Vec<u8>, String> {
    if hex.is_empty() || !hex.len().is_multiple_of(2) {
        return Err(format!("hex burst {hex:?} has odd or zero length"));
    }
    (0..hex.len())
        .step_by(2)
        .map(|at| {
            u8::from_str_radix(&hex[at..at + 2], 16)
                .map_err(|_| format!("invalid hex byte in {hex:?}"))
        })
        .collect()
}

/// The corpus double-checked against the production [`CostWeights`]
/// limits: golden weights must be constructible, or the replay layers
/// could not even build their encoders.
#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::CostWeights;

    #[test]
    fn generation_is_deterministic_and_round_trips_through_json() {
        let a = Corpus::generate(GOLDEN_SEED);
        let b = Corpus::generate(GOLDEN_SEED);
        assert_eq!(a, b);
        let parsed = Corpus::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(
            a.vectors.len(),
            GOLDEN_SCHEMES.len() * GOLDEN_BURST_LENS.len() * 2
        );
    }

    #[test]
    fn every_golden_scheme_spelling_parses_and_maps() {
        for name in GOLDEN_SCHEMES {
            let scheme: Scheme = name.parse().unwrap();
            let _ = ref_scheme(scheme);
            if let Scheme::Opt(w) | Scheme::Greedy(w) = scheme {
                let _ = CostWeights::new(w.alpha(), w.beta()).unwrap();
            }
        }
    }

    #[test]
    fn from_json_rejects_structural_violations() {
        let good = Corpus::generate(1).to_json();
        assert!(Corpus::from_json(&good).is_ok());
        for (mutation, needle) in [
            (good.replace("\"format\": 1", "\"format\": 9"), "format 9"),
            (good.replace("\"seed\"", "\"seed_\""), "seed"),
            (
                good.replacen("\"burst_len\": 1,", "\"burst_len\": 0,", 1),
                "vector 0",
            ),
        ] {
            let err = Corpus::from_json(&mutation).unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle:?}");
        }
        assert!(Corpus::from_json("{").is_err());
    }
}
