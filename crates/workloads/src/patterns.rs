//! Deterministic stress patterns.
//!
//! These are the classic memory-interface test patterns: they bound the
//! best and worst cases of the DBI schemes (all-zeros is the termination
//! worst case, checkerboards and walking bits are the switching worst
//! cases) and make handy fixtures for unit tests and benchmarks.

use crate::generator::BurstSource;
use core::fmt;
use dbi_core::{Burst, STANDARD_BURST_LEN};

/// The deterministic pattern families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Pattern {
    /// Every byte is `0x00` — the POD termination worst case.
    AllZeros,
    /// Every byte is `0xFF` — the POD termination best case.
    AllOnes,
    /// Alternating `0xAA`/`0x55` bytes — maximum toggling on every lane.
    Checkerboard,
    /// A single one bit walking through the byte (`0x01, 0x02, 0x04, ...`).
    WalkingOnes,
    /// A single zero bit walking through the byte (`0xFE, 0xFD, 0xFB, ...`).
    WalkingZeros,
    /// Monotonically incrementing byte values.
    Ramp,
    /// Each byte is the complement of the previous one, starting from `0x00`.
    AlternatingInversion,
}

impl Pattern {
    /// All pattern families, for exhaustive sweeps.
    #[must_use]
    pub const fn all() -> [Pattern; 7] {
        [
            Pattern::AllZeros,
            Pattern::AllOnes,
            Pattern::Checkerboard,
            Pattern::WalkingOnes,
            Pattern::WalkingZeros,
            Pattern::Ramp,
            Pattern::AlternatingInversion,
        ]
    }

    /// The byte this pattern places at stream position `index`.
    #[must_use]
    pub fn byte_at(self, index: usize) -> u8 {
        match self {
            Pattern::AllZeros => 0x00,
            Pattern::AllOnes => 0xFF,
            Pattern::Checkerboard => {
                if index.is_multiple_of(2) {
                    0xAA
                } else {
                    0x55
                }
            }
            Pattern::WalkingOnes => 1u8 << (index % 8),
            Pattern::WalkingZeros => !(1u8 << (index % 8)),
            Pattern::Ramp => (index % 256) as u8,
            Pattern::AlternatingInversion => {
                if index.is_multiple_of(2) {
                    0x00
                } else {
                    0xFF
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Pattern::AllZeros => "all zeros",
            Pattern::AllOnes => "all ones",
            Pattern::Checkerboard => "checkerboard",
            Pattern::WalkingOnes => "walking ones",
            Pattern::WalkingZeros => "walking zeros",
            Pattern::Ramp => "ramp",
            Pattern::AlternatingInversion => "alternating inversion",
        };
        write!(f, "{name}")
    }
}

/// A [`BurstSource`] producing an endless stream of one pattern family.
#[derive(Debug, Clone)]
pub struct PatternBursts {
    pattern: Pattern,
    position: usize,
    burst_len: usize,
    name: String,
}

impl PatternBursts {
    /// Creates a pattern stream with the standard burst length.
    #[must_use]
    pub fn new(pattern: Pattern) -> Self {
        PatternBursts {
            pattern,
            position: 0,
            burst_len: STANDARD_BURST_LEN,
            name: pattern.to_string(),
        }
    }

    /// Creates a pattern stream with a custom burst length.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero.
    #[must_use]
    pub fn with_len(pattern: Pattern, burst_len: usize) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        PatternBursts {
            pattern,
            position: 0,
            burst_len,
            name: pattern.to_string(),
        }
    }

    /// The pattern family of this stream.
    #[must_use]
    pub const fn pattern(&self) -> Pattern {
        self.pattern
    }
}

impl BurstSource for PatternBursts {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_burst(&mut self) -> Burst {
        let bytes: Vec<u8> = (0..self.burst_len)
            .map(|i| self.pattern.byte_at(self.position + i))
            .collect();
        self.position += self.burst_len;
        Burst::new(bytes).expect("burst length is validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::{BusState, DbiEncoder, Scheme};

    #[test]
    fn pattern_bytes() {
        assert_eq!(Pattern::AllZeros.byte_at(3), 0x00);
        assert_eq!(Pattern::AllOnes.byte_at(0), 0xFF);
        assert_eq!(Pattern::Checkerboard.byte_at(0), 0xAA);
        assert_eq!(Pattern::Checkerboard.byte_at(1), 0x55);
        assert_eq!(Pattern::WalkingOnes.byte_at(0), 0x01);
        assert_eq!(Pattern::WalkingOnes.byte_at(7), 0x80);
        assert_eq!(Pattern::WalkingOnes.byte_at(8), 0x01);
        assert_eq!(Pattern::WalkingZeros.byte_at(0), 0xFE);
        assert_eq!(Pattern::Ramp.byte_at(300), 44);
        assert_eq!(Pattern::AlternatingInversion.byte_at(5), 0xFF);
        assert_eq!(Pattern::all().len(), 7);
    }

    #[test]
    fn stream_walks_through_the_pattern() {
        let mut stream = PatternBursts::new(Pattern::Ramp);
        assert_eq!(stream.pattern(), Pattern::Ramp);
        let first = stream.next_burst();
        let second = stream.next_burst();
        assert_eq!(first.bytes(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(second.bytes(), &[8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn custom_length_and_name() {
        let mut stream = PatternBursts::with_len(Pattern::Checkerboard, 4);
        assert_eq!(stream.next_burst().len(), 4);
        assert_eq!(stream.name(), "checkerboard");
    }

    #[test]
    #[should_panic(expected = "burst length must be positive")]
    fn zero_length_is_rejected() {
        let _ = PatternBursts::with_len(Pattern::Ramp, 0);
    }

    #[test]
    fn dbi_dc_tames_the_all_zero_pattern() {
        // All-zero data is the worst case for POD termination; DBI DC caps
        // the damage to at most 4 zeros per interval (36 per 8-byte burst
        // including the DBI lane) versus 64 unencoded.
        let mut stream = PatternBursts::new(Pattern::AllZeros);
        let burst = stream.next_burst();
        let state = BusState::idle();
        let raw = Scheme::Raw.encode(&burst, &state).breakdown(&state);
        let dc = Scheme::Dc.encode(&burst, &state).breakdown(&state);
        assert_eq!(raw.zeros, 64);
        assert!(dc.zeros <= 36);
    }

    #[test]
    fn dbi_ac_tames_the_alternating_inversion_pattern() {
        // Bytes alternating between 0x00 and 0xFF toggle every DQ lane each
        // interval when sent raw; DBI AC removes nearly all of that.
        let mut stream = PatternBursts::new(Pattern::AlternatingInversion);
        let burst = stream.next_burst();
        let state = BusState::idle();
        let raw = Scheme::Raw.encode(&burst, &state).breakdown(&state);
        let ac = Scheme::Ac.encode(&burst, &state).breakdown(&state);
        assert!(ac.transitions * 4 < raw.transitions);
    }
}
