//! Uniform random bursts — the paper's evaluation workload.
//!
//! Section III: "We simulated the different DBI encoding schemes on 10000
//! random bursts." This module provides exactly that stream, seeded so the
//! experiment harness is reproducible.

use crate::generator::BurstSource;
use dbi_core::{Burst, STANDARD_BURST_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random bursts the paper evaluates per sweep point.
pub const PAPER_BURST_COUNT: usize = 10_000;

/// Seed used by the experiment harness so every run of the figures sees the
/// same burst stream.
pub const DEFAULT_SEED: u64 = 0x0DB1_C0DE;

/// A stream of uniformly random bursts.
///
/// ```
/// use dbi_workloads::{BurstSource, UniformRandomBursts};
///
/// let mut gen = UniformRandomBursts::with_seed(42);
/// let a = gen.take_bursts(3);
/// let mut again = UniformRandomBursts::with_seed(42);
/// assert_eq!(a, again.take_bursts(3), "same seed, same stream");
/// ```
#[derive(Debug, Clone)]
pub struct UniformRandomBursts {
    rng: StdRng,
    burst_len: usize,
}

impl UniformRandomBursts {
    /// Creates a generator with the harness default seed and the standard
    /// burst length of eight bytes.
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(DEFAULT_SEED)
    }

    /// Creates a generator with an explicit seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        UniformRandomBursts {
            rng: StdRng::seed_from_u64(seed),
            burst_len: STANDARD_BURST_LEN,
        }
    }

    /// Creates a generator producing bursts of a non-standard length.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero.
    #[must_use]
    pub fn with_seed_and_len(seed: u64, burst_len: usize) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        UniformRandomBursts {
            rng: StdRng::seed_from_u64(seed),
            burst_len,
        }
    }

    /// The burst length produced by this generator.
    #[must_use]
    pub const fn burst_len(&self) -> usize {
        self.burst_len
    }

    /// Convenience: the paper's 10 000-burst evaluation set with the default
    /// seed.
    #[must_use]
    pub fn paper_evaluation_set() -> Vec<Burst> {
        UniformRandomBursts::new().take_bursts(PAPER_BURST_COUNT)
    }
}

impl Default for UniformRandomBursts {
    fn default() -> Self {
        UniformRandomBursts::new()
    }
}

impl BurstSource for UniformRandomBursts {
    fn name(&self) -> &str {
        "uniform random"
    }

    fn next_burst(&mut self) -> Burst {
        let bytes: Vec<u8> = (0..self.burst_len).map(|_| self.rng.gen()).collect();
        Burst::new(bytes).expect("burst length is validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_length_is_standard() {
        let mut gen = UniformRandomBursts::new();
        assert_eq!(gen.burst_len(), STANDARD_BURST_LEN);
        assert_eq!(gen.next_burst().len(), STANDARD_BURST_LEN);
        assert_eq!(gen.name(), "uniform random");
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a = UniformRandomBursts::with_seed(1).take_bursts(16);
        let b = UniformRandomBursts::with_seed(1).take_bursts(16);
        let c = UniformRandomBursts::with_seed(2).take_bursts(16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn custom_length() {
        let mut gen = UniformRandomBursts::with_seed_and_len(7, 16);
        assert_eq!(gen.next_burst().len(), 16);
    }

    #[test]
    #[should_panic(expected = "burst length must be positive")]
    fn zero_length_is_rejected() {
        let _ = UniformRandomBursts::with_seed_and_len(7, 0);
    }

    #[test]
    fn random_bytes_are_roughly_uniform() {
        // With 2000 bursts of 8 bytes the mean popcount per byte should be
        // very close to 4 and the mean byte value close to 127.5.
        let bursts = UniformRandomBursts::with_seed(3).take_bursts(2000);
        let (mut ones, mut sum, mut n) = (0u64, 0u64, 0u64);
        for burst in &bursts {
            for byte in burst.iter() {
                ones += u64::from(byte.count_ones());
                sum += u64::from(byte);
                n += 1;
            }
        }
        let mean_ones = ones as f64 / n as f64;
        let mean_value = sum as f64 / n as f64;
        assert!((mean_ones - 4.0).abs() < 0.1, "mean popcount {mean_ones}");
        assert!((mean_value - 127.5).abs() < 3.0, "mean byte {mean_value}");
    }
}
