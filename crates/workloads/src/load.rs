//! Load profiles: traffic mixes for driving the encode service.
//!
//! A [`LoadProfile`] is a weighted blend of [`BurstSource`]s that models
//! the write traffic one client of the DBI encode service produces — a GPU
//! client mostly writes framebuffer rows and float arrays, a server client
//! mostly text and pointer-correlated data, and so on. Each burst is drawn
//! from one of the member sources, chosen by a seeded weighted coin, so a
//! profile is itself a deterministic [`BurstSource`] and can be plugged
//! anywhere a single generator is accepted.
//!
//! For the service wire format, [`LoadProfile::fill_access`] lays bursts
//! out as one beat-interleaved channel access (byte `k` travels on group
//! `k mod groups`), which is exactly how `dbi_mem::BusSession` and the
//! `dbi-service` engine split payloads back into per-group bursts.
//!
//! ```
//! use dbi_workloads::{BurstSource, LoadProfile};
//!
//! let mut profile = LoadProfile::gpu(42);
//! let burst = profile.next_burst();
//! assert_eq!(burst.len(), dbi_core::STANDARD_BURST_LEN);
//!
//! let mut payload = Vec::new();
//! profile.fill_access(4, 8, &mut payload); // one x32 BL8 access
//! assert_eq!(payload.len(), 32);
//! ```

use crate::generator::BurstSource;
use crate::patterns::{Pattern, PatternBursts};
use crate::random::UniformRandomBursts;
use crate::synthetic::{
    FloatArrayBursts, FramebufferBursts, MarkovBursts, TextBursts, ZeroHeavyBursts,
};
use core::fmt;
use dbi_core::{Burst, BurstSlab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, weighted mix of burst generators modelling one client's write
/// traffic.
pub struct LoadProfile {
    name: String,
    sources: Vec<(u32, Box<dyn BurstSource + Send>)>,
    total_weight: u32,
    rng: StdRng,
}

impl fmt::Debug for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoadProfile")
            .field("name", &self.name)
            .field("sources", &self.sources.len())
            .finish_non_exhaustive()
    }
}

impl LoadProfile {
    /// Creates an empty profile; add generators with
    /// [`LoadProfile::with_source`]. The seed drives only the source
    /// selection; member generators carry their own seeds.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        LoadProfile {
            name: name.into(),
            sources: Vec::new(),
            total_weight: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Adds a member generator with the given selection weight (relative to
    /// the other members; zero-weight sources are never drawn).
    #[must_use]
    pub fn with_source(mut self, weight: u32, source: impl BurstSource + Send + 'static) -> Self {
        self.total_weight += weight;
        self.sources.push((weight, Box::new(source)));
        self
    }

    /// Pure uniform random traffic — the paper's evaluation workload.
    #[must_use]
    pub fn uniform(seed: u64) -> Self {
        LoadProfile::new("uniform", seed).with_source(1, UniformRandomBursts::with_seed(seed ^ 1))
    }

    /// GPU-like traffic: framebuffer rows, vertex floats, zero-compressed
    /// tensors and a little uniform noise.
    #[must_use]
    pub fn gpu(seed: u64) -> Self {
        LoadProfile::new("gpu", seed)
            .with_source(5, FramebufferBursts::new(seed ^ 1))
            .with_source(3, FloatArrayBursts::new(seed ^ 2))
            .with_source(2, ZeroHeavyBursts::new(seed ^ 3, 0.6))
            .with_source(1, UniformRandomBursts::with_seed(seed ^ 4))
    }

    /// Server-like traffic: text, pointer-correlated words, sparse buffers.
    #[must_use]
    pub fn server(seed: u64) -> Self {
        LoadProfile::new("server", seed)
            .with_source(4, TextBursts::new(seed ^ 1))
            .with_source(3, MarkovBursts::new(seed ^ 2, 0.9))
            .with_source(2, ZeroHeavyBursts::new(seed ^ 3, 0.5))
            .with_source(1, UniformRandomBursts::with_seed(seed ^ 4))
    }

    /// Worst-case stress traffic: checkerboards and walking ones, the
    /// patterns that maximise raw wire activity.
    #[must_use]
    pub fn stress(seed: u64) -> Self {
        LoadProfile::new("stress", seed)
            .with_source(2, PatternBursts::new(Pattern::Checkerboard))
            .with_source(1, PatternBursts::new(Pattern::WalkingOnes))
            .with_source(1, UniformRandomBursts::with_seed(seed ^ 1))
    }

    /// The standard profile set used by the service load generator, in
    /// reporting order.
    #[must_use]
    pub fn standard_profiles(seed: u64) -> Vec<LoadProfile> {
        vec![
            LoadProfile::uniform(seed),
            LoadProfile::gpu(seed ^ 0x10),
            LoadProfile::server(seed ^ 0x20),
            LoadProfile::stress(seed ^ 0x30),
        ]
    }

    /// Appends one beat-interleaved channel access (`groups × burst_len`
    /// bytes) to `out`: each group receives its own burst from the mix, and
    /// byte `beat · groups + group` of the appended slice is beat `beat` of
    /// that group's burst. Bursts longer than the generators' standard
    /// length wrap around their 8 source bytes.
    ///
    /// # Panics
    ///
    /// Panics if `groups` or `burst_len` is zero, or if the profile has no
    /// positively weighted source.
    pub fn fill_access(&mut self, groups: usize, burst_len: usize, out: &mut Vec<u8>) {
        assert!(groups > 0, "an access spans at least one lane group");
        assert!(burst_len > 0, "an access spans at least one beat");
        let base = out.len();
        out.resize(base + groups * burst_len, 0);
        for group in 0..groups {
            let burst = self.next_burst();
            let bytes = burst.bytes();
            for beat in 0..burst_len {
                out[base + beat * groups + group] = bytes[beat % bytes.len()];
            }
        }
    }

    /// Appends one `burst_len`-byte burst drawn from the mix to `out` —
    /// the single-burst form of [`LoadProfile::fill_access`], for harnesses
    /// (such as the conformance fuzzer) that drive per-burst chains rather
    /// than whole channel accesses. Bursts longer than the generators'
    /// standard length wrap around their 8 source bytes.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero or the profile has no positively
    /// weighted source.
    pub fn fill_burst(&mut self, burst_len: usize, out: &mut Vec<u8>) {
        assert!(burst_len > 0, "a burst spans at least one beat");
        let burst = self.next_burst();
        let bytes = burst.bytes();
        out.extend((0..burst_len).map(|beat| bytes[beat % bytes.len()]));
    }

    /// Appends `count` bursts drawn from the mix straight into `slab` —
    /// the batched counterpart of [`LoadProfile::fill_access`]: traffic
    /// lands in slab layout directly, with no per-burst payload
    /// interleaving and no intermediate access buffer, ready for
    /// [`dbi_core::DbiEncoder::encode_slab_into`] or a service
    /// `EncodeBatch` frame. Bursts longer than the generators' standard
    /// length wrap around their 8 source bytes, exactly as
    /// [`LoadProfile::fill_access`] does.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no positively weighted source.
    pub fn fill_slab(&mut self, count: usize, slab: &mut BurstSlab) {
        let burst_len = slab.burst_len();
        for _ in 0..count {
            let burst = self.next_burst();
            let bytes = burst.bytes();
            slab.push_with(|out| out.extend((0..burst_len).map(|beat| bytes[beat % bytes.len()])));
        }
    }

    /// Picks the source for the next burst by weighted selection.
    fn pick(&mut self) -> &mut (dyn BurstSource + Send) {
        assert!(
            self.total_weight > 0,
            "a load profile needs at least one positively weighted source"
        );
        let mut roll = self.rng.gen_range(0..self.total_weight);
        for (weight, source) in &mut self.sources {
            if roll < *weight {
                return source.as_mut();
            }
            roll -= *weight;
        }
        unreachable!("the roll is bounded by the total weight")
    }
}

impl BurstSource for LoadProfile {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_burst(&mut self) -> Burst {
        self.pick().next_burst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::STANDARD_BURST_LEN;

    #[test]
    fn profiles_are_deterministic_and_standard_length() {
        for make in [
            LoadProfile::uniform,
            LoadProfile::gpu,
            LoadProfile::server,
            LoadProfile::stress,
        ] {
            let a = make(7).take_bursts(50);
            let b = make(7).take_bursts(50);
            assert_eq!(a, b);
            assert!(a.iter().all(|burst| burst.len() == STANDARD_BURST_LEN));
            let c = make(8).take_bursts(50);
            assert_ne!(a, c, "different seeds must differ");
        }
    }

    #[test]
    fn standard_profiles_have_distinct_names() {
        let profiles = LoadProfile::standard_profiles(1);
        let mut names: Vec<&str> = profiles.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), profiles.len());
    }

    #[test]
    fn fill_access_interleaves_one_burst_per_group() {
        let mut profile = LoadProfile::uniform(3);
        let mut reference = LoadProfile::uniform(3);
        let (groups, burst_len) = (4, 8);
        let mut payload = Vec::new();
        profile.fill_access(groups, burst_len, &mut payload);
        assert_eq!(payload.len(), groups * burst_len);

        // De-interleaving recovers exactly the bursts the mix produced.
        for group in 0..groups {
            let expected = reference.next_burst();
            let recovered: Vec<u8> = (0..burst_len)
                .map(|beat| payload[beat * groups + group])
                .collect();
            assert_eq!(recovered, expected.bytes());
        }

        // fill_access appends rather than overwriting.
        profile.fill_access(groups, burst_len, &mut payload);
        assert_eq!(payload.len(), 2 * groups * burst_len);
    }

    #[test]
    fn fill_slab_draws_the_same_bursts_as_the_mix() {
        let mut profile = LoadProfile::gpu(11);
        let mut reference = LoadProfile::gpu(11);
        let mut slab = BurstSlab::new(8);
        profile.fill_slab(6, &mut slab);
        assert_eq!(slab.burst_count(), 6);
        for index in 0..6 {
            let expected = reference.next_burst();
            assert_eq!(slab.burst_bytes(index).unwrap(), expected.bytes());
        }

        // Longer slab bursts wrap the 8 source bytes, like fill_access.
        let mut wide = BurstSlab::new(16);
        profile.fill_slab(1, &mut wide);
        let expected = reference.next_burst();
        let got = wide.burst_bytes(0).unwrap();
        assert_eq!(&got[..8], expected.bytes());
        assert_eq!(&got[8..], expected.bytes());
    }

    #[test]
    fn weighted_selection_visits_every_source() {
        let mut profile = LoadProfile::new("mix", 5)
            .with_source(1, PatternBursts::new(Pattern::Checkerboard))
            .with_source(1, ZeroHeavyBursts::new(9, 1.0));
        let bursts = profile.take_bursts(64);
        let zero_heavy = bursts.iter().filter(|b| b.iter().all(|x| x == 0)).count();
        assert!(zero_heavy > 0, "the zero-heavy member must be drawn");
        assert!(
            zero_heavy < bursts.len(),
            "the pattern member must be drawn"
        );
    }

    #[test]
    #[should_panic(expected = "positively weighted source")]
    fn empty_profiles_panic_on_use() {
        let _ = LoadProfile::new("empty", 1).next_burst();
    }

    #[test]
    fn profiles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<LoadProfile>();
    }
}
