//! Streaming trace encoding: whole traces in one call, bus state carried
//! across bursts, no per-burst allocation.
//!
//! The paper evaluates encoders on isolated bursts with the bus reset to
//! idle in between; a real interface carries the lane levels of one burst
//! into the next. [`TraceEncoder`] models that: it owns a
//! [`BusState`], encodes each burst through the allocation-free
//! [`DbiEncoder::encode_mask`] fast path, prices it with
//! [`InversionMask::breakdown`] and chains the final lane state into the
//! next burst — so encoding a million-burst trace performs no heap
//! allocation at all beyond the trace itself.
//!
//! ```
//! use dbi_core::schemes::OptFixedEncoder;
//! use dbi_workloads::{BurstSource, Trace, TraceEncoder, UniformRandomBursts};
//!
//! let trace = Trace::record(&mut UniformRandomBursts::with_seed(7), 100);
//! let mut encoder = TraceEncoder::new(OptFixedEncoder::new());
//! let summary = encoder.encode_trace(&trace);
//! assert_eq!(summary.bursts, 100);
//! assert!(summary.activity.zeros > 0);
//! ```

use crate::trace::Trace;
use core::fmt;
use dbi_core::{
    Burst, BurstSlab, BusState, CostBreakdown, CostWeights, DbiEncoder, EncodePlan, InversionMask,
    Scheme,
};
use std::sync::Arc;

/// Aggregate result of encoding a burst stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Number of bursts encoded.
    pub bursts: u64,
    /// Total wire activity (zeros driven, lanes toggled).
    pub activity: CostBreakdown,
}

impl TraceSummary {
    /// Weighted integer cost of the whole stream.
    #[must_use]
    pub fn cost(&self, weights: &CostWeights) -> u64 {
        self.activity.weighted(weights)
    }

    /// Mean weighted cost per burst (0 for an empty summary).
    #[must_use]
    pub fn mean_cost(&self, weights: &CostWeights) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            self.cost(weights) as f64 / self.bursts as f64
        }
    }

    /// Folds another summary into this one.
    pub fn merge(&mut self, other: &TraceSummary) {
        self.bursts += other.bursts;
        self.activity += other.activity;
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bursts, {}", self.bursts, self.activity)
    }
}

/// A stateful streaming encoder: one DBI group, bus state carried across
/// bursts, allocation-free per burst.
#[derive(Debug, Clone)]
pub struct TraceEncoder<E> {
    encoder: E,
    state: BusState,
}

impl<E: DbiEncoder> TraceEncoder<E> {
    /// Creates a trace encoder starting from the idle bus (all lanes high).
    #[must_use]
    pub fn new(encoder: E) -> Self {
        Self::with_state(encoder, BusState::idle())
    }

    /// Creates a trace encoder with an explicit initial bus state.
    #[must_use]
    pub fn with_state(encoder: E, state: BusState) -> Self {
        TraceEncoder { encoder, state }
    }

    /// The wrapped encoder.
    #[must_use]
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// Replaces the encoder at a burst boundary, returning the previous
    /// one. The carried [`BusState`] is **preserved**: the lane levels on
    /// the wires are a physical fact independent of which encoder chose
    /// them, so the next burst continues from the true state under the
    /// new encoder.
    pub fn swap_encoder(&mut self, encoder: E) -> E {
        core::mem::replace(&mut self.encoder, encoder)
    }

    /// The lane levels currently on the bus.
    #[must_use]
    pub const fn state(&self) -> BusState {
        self.state
    }

    /// Forces the bus back to idle (e.g. between independent traces).
    pub fn reset(&mut self) {
        self.state = BusState::idle();
    }

    /// Encodes one burst from the current bus state, advances the state and
    /// returns the decisions plus the activity the burst added. The
    /// building block of the trace loops; performs no heap allocation.
    pub fn encode_burst(&mut self, burst: &Burst) -> (InversionMask, CostBreakdown) {
        let mask = self.encoder.encode_mask(burst, &self.state);
        let breakdown = mask.breakdown(burst, &self.state);
        self.state = mask.final_state(burst, &self.state);
        (mask, breakdown)
    }

    /// Encodes every burst of `trace` in order, carrying the bus state
    /// across burst boundaries, and returns the aggregate activity.
    pub fn encode_trace(&mut self, trace: &Trace) -> TraceSummary {
        self.encode_bursts(trace.bursts())
    }

    /// Encodes a plain burst slice the same way.
    pub fn encode_bursts(&mut self, bursts: &[Burst]) -> TraceSummary {
        let mut summary = TraceSummary::default();
        for burst in bursts {
            let (_, breakdown) = self.encode_burst(burst);
            summary.bursts += 1;
            summary.activity += breakdown;
        }
        summary
    }

    /// Encodes every burst currently loaded in `slab` in **one** call
    /// through [`DbiEncoder::encode_slab_into`], carrying the bus state
    /// exactly as the per-burst loops do, and returns the aggregate
    /// activity. The slab's mask and cost rows are left filled, so callers
    /// get the per-burst decisions for free. Bit-identical to
    /// [`TraceEncoder::encode_bursts`] over the same bursts; the summary
    /// includes real activity, so pricing is (re-)enabled on the slab
    /// whatever the caller last used it for.
    pub fn encode_slab(&mut self, slab: &mut BurstSlab) -> TraceSummary {
        slab.set_pricing(true);
        let mut state = self.state;
        self.encoder.encode_slab_into(slab, &mut state);
        self.state = state;
        TraceSummary {
            bursts: slab.burst_count() as u64,
            activity: slab.total(),
        }
    }

    /// Loads `bursts` into `slab` (reset to the first burst's length) and
    /// encodes them in one slab pass — the batched counterpart of
    /// [`TraceEncoder::encode_bursts`].
    ///
    /// # Errors
    ///
    /// Returns [`dbi_core::DbiError::BurstTooLong`] when the bursts do not
    /// all share one length, or [`dbi_core::DbiError::EmptyBurst`] when
    /// `bursts` is empty; the carried state is untouched on error.
    pub fn encode_bursts_slab(
        &mut self,
        bursts: &[Burst],
        slab: &mut BurstSlab,
    ) -> dbi_core::Result<TraceSummary> {
        let first = bursts.first().ok_or(dbi_core::DbiError::EmptyBurst)?;
        slab.reset(first.len());
        slab.extend_from_bursts(bursts)?;
        Ok(self.encode_slab(slab))
    }

    /// Encodes `trace` and appends each burst's mask to `masks` (cleared
    /// first), for callers that need the decisions as well as the totals.
    /// Reuses the vector's capacity across calls.
    pub fn encode_trace_masks(
        &mut self,
        trace: &Trace,
        masks: &mut Vec<InversionMask>,
    ) -> TraceSummary {
        masks.clear();
        masks.reserve(trace.len());
        let mut summary = TraceSummary::default();
        for burst in trace.bursts() {
            let (mask, breakdown) = self.encode_burst(burst);
            masks.push(mask);
            summary.bursts += 1;
            summary.activity += breakdown;
        }
        summary
    }
}

/// A trace encoder driven by a shared runtime [`EncodePlan`] — the form
/// the streaming layers hold when the operating point is chosen (and
/// re-chosen) at runtime.
pub type PlanTraceEncoder = TraceEncoder<Arc<EncodePlan>>;

impl PlanTraceEncoder {
    /// Creates a plan-driven trace encoder starting from the idle bus.
    #[must_use]
    pub fn with_plan(plan: Arc<EncodePlan>) -> PlanTraceEncoder {
        TraceEncoder::new(plan)
    }

    /// Creates a plan-driven trace encoder for a scheme, with the plan
    /// served from the process-wide plan cache.
    #[must_use]
    pub fn for_scheme(scheme: Scheme) -> PlanTraceEncoder {
        TraceEncoder::new(scheme.plan())
    }

    /// The current plan.
    #[must_use]
    pub fn plan(&self) -> &Arc<EncodePlan> {
        self.encoder()
    }

    /// Replaces the plan at a burst boundary, preserving the carried bus
    /// state (see [`TraceEncoder::swap_encoder`]). Returns the previous
    /// plan.
    pub fn swap_plan(&mut self, plan: Arc<EncodePlan>) -> Arc<EncodePlan> {
        self.swap_encoder(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::UniformRandomBursts;
    use dbi_core::schemes::{AcEncoder, OptFixedEncoder};
    use dbi_core::Scheme;

    #[test]
    fn carried_state_matches_a_manual_chain() {
        let trace = Trace::record(&mut UniformRandomBursts::with_seed(21), 64);
        let mut streaming = TraceEncoder::new(OptFixedEncoder::new());
        let summary = streaming.encode_trace(&trace);

        // Reference: chain encode() calls by hand.
        let encoder = OptFixedEncoder::new();
        let mut state = BusState::idle();
        let mut expected = CostBreakdown::ZERO;
        for burst in trace.bursts() {
            let encoded = encoder.encode(burst, &state);
            expected += encoded.breakdown(&state);
            state = encoded.final_state(&state);
        }
        assert_eq!(summary.activity, expected);
        assert_eq!(summary.bursts, 64);
        assert_eq!(streaming.state(), state);
    }

    #[test]
    fn carrying_state_is_never_pricier_than_it_reports() {
        // The reported activity must equal re-pricing the mask stream.
        let trace = Trace::record(&mut UniformRandomBursts::with_seed(5), 32);
        let mut encoder = TraceEncoder::new(Scheme::OptFixed);
        let mut masks = Vec::new();
        let summary = encoder.encode_trace_masks(&trace, &mut masks);
        assert_eq!(masks.len(), trace.len());

        let mut state = BusState::idle();
        let mut repriced = CostBreakdown::ZERO;
        for (burst, mask) in trace.bursts().iter().zip(&masks) {
            repriced += mask.breakdown(burst, &state);
            state = mask.final_state(burst, &state);
        }
        assert_eq!(summary.activity, repriced);
    }

    #[test]
    fn reset_restores_the_idle_boundary_condition() {
        let trace = Trace::record(&mut UniformRandomBursts::with_seed(9), 16);
        let mut encoder = TraceEncoder::new(AcEncoder::new());
        let first = encoder.encode_trace(&trace);
        assert_ne!(encoder.state(), BusState::idle());
        encoder.reset();
        let second = encoder.encode_trace(&trace);
        assert_eq!(first, second, "idle start makes identical traces identical");
    }

    #[test]
    fn summary_arithmetic() {
        let mut a = TraceSummary {
            bursts: 2,
            activity: CostBreakdown::new(10, 6),
        };
        let b = TraceSummary {
            bursts: 1,
            activity: CostBreakdown::new(5, 4),
        };
        a.merge(&b);
        assert_eq!(a.bursts, 3);
        assert_eq!(a.activity, CostBreakdown::new(15, 10));
        assert_eq!(a.cost(&CostWeights::FIXED), 25);
        assert!((a.mean_cost(&CostWeights::FIXED) - 25.0 / 3.0).abs() < 1e-12);
        assert_eq!(TraceSummary::default().mean_cost(&CostWeights::FIXED), 0.0);
        assert!(a.to_string().contains("3 bursts"));
    }

    #[test]
    fn plan_trace_encoder_matches_scheme_dispatch_and_swaps_mid_stream() {
        let trace = Trace::record(&mut UniformRandomBursts::with_seed(33), 48);
        let first = Scheme::Dc;
        let second = Scheme::Opt(dbi_core::CostWeights::new(3, 1).unwrap());

        // Plan-driven encoding equals scheme dispatch burst for burst.
        let mut by_plan = PlanTraceEncoder::for_scheme(first);
        let mut by_scheme = TraceEncoder::new(first);
        assert_eq!(by_plan.plan().scheme(), first);
        assert_eq!(by_plan.encode_trace(&trace), by_scheme.encode_trace(&trace));
        assert_eq!(by_plan.state(), by_scheme.state());

        // Swap at a burst boundary: the carried state survives, and the
        // tail is what a second-scheme encoder seeded with that state
        // would produce.
        by_plan.reset();
        let (head, tail) = trace.bursts().split_at(trace.len() / 2);
        let head_summary = by_plan.encode_bursts(head);
        let old = by_plan.swap_plan(second.plan());
        assert_eq!(old.scheme(), first);
        let tail_summary = by_plan.encode_bursts(tail);

        let mut reference = TraceEncoder::new(first);
        let expected_head = reference.encode_bursts(head);
        let mut continued = TraceEncoder::with_state(second.plan(), reference.state());
        let expected_tail = continued.encode_bursts(tail);
        assert_eq!(head_summary, expected_head);
        assert_eq!(tail_summary, expected_tail);
        assert_eq!(by_plan.state(), continued.state());
    }

    #[test]
    fn slab_encoding_matches_the_per_burst_loop() {
        let trace = Trace::record(&mut UniformRandomBursts::with_seed(61), 80);
        for scheme in Scheme::paper_set().iter().copied() {
            let mut per_burst = TraceEncoder::new(scheme);
            let expected = per_burst.encode_trace(&trace);

            let mut slabbed = TraceEncoder::new(scheme);
            let mut slab = BurstSlab::new(8);
            let summary = slabbed
                .encode_bursts_slab(trace.bursts(), &mut slab)
                .unwrap();
            assert_eq!(summary, expected, "{scheme}");
            assert_eq!(slabbed.state(), per_burst.state(), "{scheme}");
            assert_eq!(slab.masks().len(), trace.len());

            // The slab rows are exactly the per-burst decisions.
            let mut reference = TraceEncoder::new(scheme);
            let mut masks = Vec::new();
            reference.encode_trace_masks(&trace, &mut masks);
            assert_eq!(slab.masks(), masks.as_slice(), "{scheme}");
        }

        // A slab left in masks-only mode by an earlier caller still yields
        // a real summary: encode_slab re-enables pricing.
        let mut stale = TraceEncoder::new(Scheme::OptFixed);
        let mut reference = TraceEncoder::new(Scheme::OptFixed);
        let mut slab = BurstSlab::new(8);
        slab.extend_from_bursts(trace.bursts()).unwrap();
        slab.set_pricing(false);
        let summary = stale.encode_slab(&mut slab);
        assert_eq!(summary, reference.encode_trace(&trace));
        assert!(slab.pricing());

        // Errors: empty input, mixed lengths; state untouched.
        let mut encoder = TraceEncoder::new(Scheme::Dc);
        let mut slab = BurstSlab::new(8);
        assert!(encoder.encode_bursts_slab(&[], &mut slab).is_err());
        let mixed = [
            Burst::paper_example(),
            Burst::from_slice(&[1, 2, 3]).unwrap(),
        ];
        assert!(encoder.encode_bursts_slab(&mixed, &mut slab).is_err());
        assert_eq!(encoder.state(), BusState::idle());
    }

    #[test]
    fn swap_encoder_returns_the_previous_encoder() {
        let mut encoder = TraceEncoder::new(Scheme::Ac);
        let old = encoder.swap_encoder(Scheme::Dc);
        assert_eq!(old, Scheme::Ac);
        assert_eq!(encoder.encoder().name(), "DBI DC");
    }

    #[test]
    fn empty_trace_reports_zero_and_keeps_state() {
        let empty = Trace::new("empty", vec![]);
        let mut encoder = TraceEncoder::new(Scheme::Dc);
        let summary = encoder.encode_trace(&empty);
        assert_eq!(summary, TraceSummary::default());
        assert_eq!(encoder.state(), BusState::idle());
        assert_eq!(encoder.encoder().name(), "DBI DC");
    }
}
