//! Structured synthetic workloads.
//!
//! The paper evaluates on uniformly random bursts; real write traffic is
//! rarely uniform. These generators produce data with the statistical
//! structure of common GPU/CPU memory contents — zero-dominated buffers,
//! floating-point arrays, ASCII text, framebuffer pixels and bit-correlated
//! streams — so that the examples and extension experiments can show how
//! the advantage of optimal DBI coding shifts with data statistics. They
//! are substitutes for proprietary application traces, as documented in
//! DESIGN.md.

use crate::generator::BurstSource;
use dbi_core::{Burst, STANDARD_BURST_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zero-dominated data: each byte is `0x00` with probability `zero_fraction`
/// and uniformly random otherwise. Models sparsely initialised buffers and
/// zero-compressed tensors.
#[derive(Debug, Clone)]
pub struct ZeroHeavyBursts {
    rng: StdRng,
    zero_fraction: f64,
}

impl ZeroHeavyBursts {
    /// Creates a zero-heavy stream. `zero_fraction` is clamped to `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, zero_fraction: f64) -> Self {
        ZeroHeavyBursts {
            rng: StdRng::seed_from_u64(seed),
            zero_fraction: zero_fraction.clamp(0.0, 1.0),
        }
    }

    /// The fraction of bytes forced to zero.
    #[must_use]
    pub const fn zero_fraction(&self) -> f64 {
        self.zero_fraction
    }
}

impl BurstSource for ZeroHeavyBursts {
    fn name(&self) -> &str {
        "zero-heavy"
    }

    fn next_burst(&mut self) -> Burst {
        let bytes: Vec<u8> = (0..STANDARD_BURST_LEN)
            .map(|_| {
                if self.rng.gen_bool(self.zero_fraction) {
                    0x00
                } else {
                    self.rng.gen()
                }
            })
            .collect();
        Burst::new(bytes).expect("standard burst length is non-zero")
    }
}

/// IEEE-754 single-precision values drawn from a unit normal distribution
/// (approximated by summing uniforms), laid out little-endian. Models HPC
/// and graphics vertex data: exponent bytes are highly correlated while
/// mantissa bytes look random.
#[derive(Debug, Clone)]
pub struct FloatArrayBursts {
    rng: StdRng,
}

impl FloatArrayBursts {
    /// Creates a float-array stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FloatArrayBursts {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next_f32(&mut self) -> f32 {
        // Irwin–Hall approximation of a normal distribution: the sum of 12
        // uniforms minus 6 has zero mean and unit variance.
        let sum: f32 = (0..12).map(|_| self.rng.gen::<f32>()).sum();
        sum - 6.0
    }
}

impl BurstSource for FloatArrayBursts {
    fn name(&self) -> &str {
        "float array"
    }

    fn next_burst(&mut self) -> Burst {
        let mut bytes = Vec::with_capacity(STANDARD_BURST_LEN);
        while bytes.len() < STANDARD_BURST_LEN {
            bytes.extend_from_slice(&self.next_f32().to_le_bytes());
        }
        bytes.truncate(STANDARD_BURST_LEN);
        Burst::new(bytes).expect("standard burst length is non-zero")
    }
}

/// Printable ASCII text with an English-like letter/space mix. Models log
/// buffers and string-heavy heaps: the high bit is always clear and the
/// byte entropy is low.
#[derive(Debug, Clone)]
pub struct TextBursts {
    rng: StdRng,
}

impl TextBursts {
    /// Creates a text stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TextBursts {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next_char(&mut self) -> u8 {
        // Rough English statistics: 15 % spaces, 2 % digits/punctuation,
        // the rest lowercase letters weighted towards the common ones.
        let roll: f64 = self.rng.gen();
        if roll < 0.15 {
            b' '
        } else if roll < 0.17 {
            b'0' + self.rng.gen_range(0..10)
        } else {
            const COMMON: &[u8] = b"etaoinshrdlcumwfgypbvkjxqz";
            let idx = (self.rng.gen::<f64>().powi(2) * COMMON.len() as f64) as usize;
            COMMON[idx.min(COMMON.len() - 1)]
        }
    }
}

impl BurstSource for TextBursts {
    fn name(&self) -> &str {
        "ascii text"
    }

    fn next_burst(&mut self) -> Burst {
        let bytes: Vec<u8> = (0..STANDARD_BURST_LEN).map(|_| self.next_char()).collect();
        Burst::new(bytes).expect("standard burst length is non-zero")
    }
}

/// RGBA8888 framebuffer rows with a smooth horizontal gradient plus a small
/// amount of noise. Models GPU colour-buffer writes: adjacent pixels differ
/// in only a few low-order bits, which strongly favours AC-style coding.
#[derive(Debug, Clone)]
pub struct FramebufferBursts {
    rng: StdRng,
    x: u32,
    base: [u8; 3],
}

impl FramebufferBursts {
    /// Creates a framebuffer stream with a random base colour.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = [rng.gen(), rng.gen(), rng.gen()];
        FramebufferBursts { rng, x: 0, base }
    }

    fn next_pixel(&mut self) -> [u8; 4] {
        let gradient = (self.x % 256) as u8;
        self.x = self.x.wrapping_add(1);
        let noise = |rng: &mut StdRng| rng.gen_range(0..4u8);
        [
            self.base[0]
                .wrapping_add(gradient)
                .wrapping_add(noise(&mut self.rng)),
            self.base[1]
                .wrapping_add(gradient / 2)
                .wrapping_add(noise(&mut self.rng)),
            self.base[2]
                .wrapping_add(gradient / 4)
                .wrapping_add(noise(&mut self.rng)),
            0xFF,
        ]
    }
}

impl BurstSource for FramebufferBursts {
    fn name(&self) -> &str {
        "framebuffer gradient"
    }

    fn next_burst(&mut self) -> Burst {
        let mut bytes = Vec::with_capacity(STANDARD_BURST_LEN);
        while bytes.len() < STANDARD_BURST_LEN {
            bytes.extend_from_slice(&self.next_pixel());
        }
        bytes.truncate(STANDARD_BURST_LEN);
        Burst::new(bytes).expect("standard burst length is non-zero")
    }
}

/// A first-order Markov bit stream: each byte repeats the previous byte's
/// bits with probability `correlation` per bit position. Models the
/// temporally correlated traffic (pointers, counters) where consecutive
/// words share most of their bits.
#[derive(Debug, Clone)]
pub struct MarkovBursts {
    rng: StdRng,
    correlation: f64,
    previous: u8,
}

impl MarkovBursts {
    /// Creates a correlated stream. `correlation` is the per-bit probability
    /// of repeating the previous byte's bit, clamped to `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, correlation: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let previous = rng.gen();
        MarkovBursts {
            rng,
            correlation: correlation.clamp(0.0, 1.0),
            previous,
        }
    }

    fn next_byte(&mut self) -> u8 {
        let mut byte = 0u8;
        for bit in 0..8 {
            let prev_bit = (self.previous >> bit) & 1;
            let new_bit = if self.rng.gen_bool(self.correlation) {
                prev_bit
            } else {
                u8::from(self.rng.gen_bool(0.5))
            };
            byte |= new_bit << bit;
        }
        self.previous = byte;
        byte
    }
}

impl BurstSource for MarkovBursts {
    fn name(&self) -> &str {
        "markov correlated"
    }

    fn next_burst(&mut self) -> Burst {
        let bytes: Vec<u8> = (0..STANDARD_BURST_LEN).map(|_| self.next_byte()).collect();
        Burst::new(bytes).expect("standard burst length is non-zero")
    }
}

/// The named synthetic workload suite used by the extension experiments and
/// the examples: one representative instance of every generator in this
/// module plus the uniform random baseline.
#[must_use]
pub fn standard_suite(seed: u64) -> Vec<(String, Vec<Burst>)> {
    let count = 2_000;
    let mut suite: Vec<(String, Vec<Burst>)> = Vec::new();
    let mut push = |mut source: Box<dyn BurstSource>| {
        let name = source.name().to_owned();
        let bursts: Vec<Burst> = (0..count).map(|_| source.next_burst()).collect();
        suite.push((name, bursts));
    };
    push(Box::new(crate::random::UniformRandomBursts::with_seed(
        seed,
    )));
    push(Box::new(ZeroHeavyBursts::new(seed ^ 1, 0.6)));
    push(Box::new(FloatArrayBursts::new(seed ^ 2)));
    push(Box::new(TextBursts::new(seed ^ 3)));
    push(Box::new(FramebufferBursts::new(seed ^ 4)));
    push(Box::new(MarkovBursts::new(seed ^ 5, 0.9)));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::{BusState, DbiEncoder, Scheme};

    #[test]
    fn zero_heavy_is_mostly_zero() {
        let mut gen = ZeroHeavyBursts::new(1, 0.7);
        assert!((gen.zero_fraction() - 0.7).abs() < 1e-12);
        let bursts = gen.take_bursts(500);
        let zero_bytes: usize = bursts
            .iter()
            .flat_map(|b| b.iter())
            .filter(|&b| b == 0)
            .count();
        let total = 500 * STANDARD_BURST_LEN;
        let fraction = zero_bytes as f64 / total as f64;
        assert!((0.6..0.8).contains(&fraction), "zero fraction {fraction}");
    }

    #[test]
    fn zero_fraction_is_clamped() {
        assert_eq!(ZeroHeavyBursts::new(1, 2.0).zero_fraction(), 1.0);
        assert_eq!(ZeroHeavyBursts::new(1, -1.0).zero_fraction(), 0.0);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = FloatArrayBursts::new(9).take_bursts(10);
        let b = FloatArrayBursts::new(9).take_bursts(10);
        assert_eq!(a, b);
        let a = TextBursts::new(9).take_bursts(10);
        let b = TextBursts::new(9).take_bursts(10);
        assert_eq!(a, b);
        let a = FramebufferBursts::new(9).take_bursts(10);
        let b = FramebufferBursts::new(9).take_bursts(10);
        assert_eq!(a, b);
        let a = MarkovBursts::new(9, 0.9).take_bursts(10);
        let b = MarkovBursts::new(9, 0.9).take_bursts(10);
        assert_eq!(a, b);
    }

    #[test]
    fn text_is_printable_ascii() {
        let bursts = TextBursts::new(4).take_bursts(200);
        for byte in bursts.iter().flat_map(|b| b.iter()) {
            assert!(
                (0x20..0x7F).contains(&byte),
                "byte {byte:#x} is not printable ASCII"
            );
        }
    }

    #[test]
    fn framebuffer_alpha_channel_is_opaque() {
        let bursts = FramebufferBursts::new(4).take_bursts(50);
        for burst in &bursts {
            assert_eq!(burst.bytes()[3], 0xFF);
            assert_eq!(burst.bytes()[7], 0xFF);
        }
    }

    #[test]
    fn markov_correlation_reduces_transitions() {
        // Highly correlated data toggles far fewer lanes than random data.
        let state = BusState::idle();
        let correlated = MarkovBursts::new(11, 0.95).take_bursts(300);
        let random = crate::random::UniformRandomBursts::with_seed(11).take_bursts(300);
        let transitions = |bursts: &[Burst]| -> u64 {
            bursts
                .iter()
                .map(|b| Scheme::Raw.encode(b, &state).breakdown(&state).transitions)
                .sum()
        };
        assert!(transitions(&correlated) * 2 < transitions(&random));
    }

    #[test]
    fn zero_heavy_data_widens_the_dc_gap() {
        // On zero-dominated data the DC scheme saves far more termination
        // energy relative to RAW than on uniform data.
        let state = BusState::idle();
        let heavy = ZeroHeavyBursts::new(2, 0.7).take_bursts(300);
        let zeros = |bursts: &[Burst], scheme: Scheme| -> u64 {
            bursts
                .iter()
                .map(|b| scheme.encode(b, &state).breakdown(&state).zeros)
                .sum()
        };
        let raw = zeros(&heavy, Scheme::Raw);
        let dc = zeros(&heavy, Scheme::Dc);
        assert!(
            dc * 2 < raw,
            "DC should halve the zero count on zero-heavy data"
        );
    }

    #[test]
    fn standard_suite_has_six_named_workloads() {
        let suite = standard_suite(7);
        assert_eq!(suite.len(), 6);
        for (name, bursts) in &suite {
            assert!(!name.is_empty());
            assert_eq!(bursts.len(), 2_000);
        }
        let names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"uniform random"));
        assert!(names.contains(&"framebuffer gradient"));
    }
}
