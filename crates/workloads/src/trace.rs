//! Burst traces: capture, replay and a simple text serialisation.
//!
//! A [`Trace`] is an ordered list of bursts — what a logic analyser on the
//! DQ bus (before DBI encoding) would record. Traces let experiments be
//! replayed bit-for-bit, exchanged as plain text files, and summarised
//! without re-running a generator.

use crate::generator::BurstSource;
use core::fmt;
use dbi_core::Burst;
use std::str::FromStr;

/// An ordered sequence of bursts with a human-readable label.
///
/// ```
/// use dbi_core::Burst;
/// use dbi_workloads::Trace;
///
/// let trace = Trace::new("demo", vec![Burst::from_array([0xAB; 8])]);
/// let text = trace.to_string();
/// let parsed: Trace = text.parse().unwrap();
/// assert_eq!(parsed, trace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    label: String,
    bursts: Vec<Burst>,
}

/// Error produced when parsing a textual trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Creates a trace from existing bursts.
    #[must_use]
    pub fn new(label: impl Into<String>, bursts: Vec<Burst>) -> Self {
        Trace {
            label: label.into(),
            bursts,
        }
    }

    /// Records `count` bursts from a generator into a trace labelled with
    /// the generator's name.
    #[must_use]
    pub fn record<S: BurstSource>(source: &mut S, count: usize) -> Self {
        let label = source.name().to_owned();
        let bursts = source.take_bursts(count);
        Trace { label, bursts }
    }

    /// The trace label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The recorded bursts in order.
    #[must_use]
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// Number of bursts in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// `true` when the trace contains no bursts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Total number of payload bytes in the trace.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.bursts.iter().map(Burst::len).sum()
    }

    /// Mean number of zero bits per payload byte — a quick measure of how
    /// zero-dominated the data is (4.0 for uniform random data).
    #[must_use]
    pub fn mean_zero_bits_per_byte(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes == 0 {
            return 0.0;
        }
        let zeros: u32 = self.bursts.iter().map(Burst::raw_zero_bits).sum();
        f64::from(zeros) / bytes as f64
    }

    /// Iterates over the bursts.
    pub fn iter(&self) -> core::slice::Iter<'_, Burst> {
        self.bursts.iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Burst;
    type IntoIter = core::slice::Iter<'a, Burst>;

    fn into_iter(self) -> Self::IntoIter {
        self.bursts.iter()
    }
}

impl fmt::Display for Trace {
    /// Serialises the trace as text: a header line `# trace: <label>`
    /// followed by one line of space-separated hex bytes per burst.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# trace: {}", self.label)?;
        for burst in &self.bursts {
            let line: Vec<String> = burst.iter().map(|b| format!("{b:02x}")).collect();
            writeln!(f, "{}", line.join(" "))?;
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut label = String::from("unnamed");
        let mut bursts = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# trace:") {
                label = rest.trim().to_owned();
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let bytes: Result<Vec<u8>, _> = line
                .split_whitespace()
                .map(|tok| u8::from_str_radix(tok, 16))
                .collect();
            let bytes = bytes.map_err(|e| ParseTraceError {
                line: number + 1,
                message: format!("bad hex byte: {e}"),
            })?;
            let burst = Burst::new(bytes).map_err(|e| ParseTraceError {
                line: number + 1,
                message: e.to_string(),
            })?;
            bursts.push(burst);
        }
        Ok(Trace { label, bursts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::UniformRandomBursts;

    #[test]
    fn record_uses_the_generator_name() {
        let mut gen = UniformRandomBursts::with_seed(5);
        let trace = Trace::record(&mut gen, 10);
        assert_eq!(trace.label(), "uniform random");
        assert_eq!(trace.len(), 10);
        assert!(!trace.is_empty());
        assert_eq!(trace.total_bytes(), 80);
        assert_eq!(trace.iter().count(), 10);
        assert_eq!((&trace).into_iter().count(), 10);
    }

    #[test]
    fn text_round_trip() {
        let mut gen = UniformRandomBursts::with_seed(6);
        let trace = Trace::record(&mut gen, 25);
        let text = trace.to_string();
        let parsed: Trace = text.parse().unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parser_skips_comments_and_blank_lines() {
        let text = "# trace: demo\n\n# a comment\nde ad be ef 00 11 22 33\n";
        let trace: Trace = text.parse().unwrap();
        assert_eq!(trace.label(), "demo");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.bursts()[0].bytes()[0], 0xDE);
    }

    #[test]
    fn parser_reports_bad_lines() {
        let err = "zz 00".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
        let err = "# trace: x\n00 11\nnot hex".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn parser_defaults_the_label() {
        let trace: Trace = "00 11 22 33 44 55 66 77".parse().unwrap();
        assert_eq!(trace.label(), "unnamed");
    }

    #[test]
    fn zero_bit_statistics() {
        let trace = Trace::new(
            "stats",
            vec![Burst::from_array([0x00; 8]), Burst::from_array([0xFF; 8])],
        );
        assert!((trace.mean_zero_bits_per_byte() - 4.0).abs() < 1e-12);
        let empty = Trace::new("empty", vec![]);
        assert_eq!(empty.mean_zero_bits_per_byte(), 0.0);
        assert!(empty.is_empty());
    }
}
