//! The workload-generator abstraction.

use dbi_core::Burst;

/// A source of bursts for DBI evaluation.
///
/// Generators are deterministic given their construction parameters (all
/// random generators take an explicit seed), so every figure in the
/// experiment harness is reproducible bit-for-bit.
pub trait BurstSource {
    /// Short human-readable name used in reports ("uniform random",
    /// "framebuffer gradient", ...).
    fn name(&self) -> &str;

    /// Produces the next burst of the stream.
    fn next_burst(&mut self) -> Burst;

    /// Collects `count` bursts into a vector.
    fn take_bursts(&mut self, count: usize) -> Vec<Burst>
    where
        Self: Sized,
    {
        (0..count).map(|_| self.next_burst()).collect()
    }
}

impl<T: BurstSource + ?Sized> BurstSource for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_burst(&mut self) -> Burst {
        (**self).next_burst()
    }
}

/// Adapts any infinite iterator of bursts into a [`BurstSource`].
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    name: String,
    iter: I,
}

impl<I> IterSource<I>
where
    I: Iterator<Item = Burst>,
{
    /// Wraps an iterator as a burst source.
    pub fn new(name: impl Into<String>, iter: I) -> Self {
        IterSource {
            name: name.into(),
            iter,
        }
    }
}

impl<I> BurstSource for IterSource<I>
where
    I: Iterator<Item = Burst>,
{
    fn name(&self) -> &str {
        &self.name
    }

    /// # Panics
    ///
    /// Panics if the underlying iterator is exhausted; wrap finite iterators
    /// with [`Iterator::cycle`] when an endless stream is required.
    fn next_burst(&mut self) -> Burst {
        self.iter
            .next()
            .expect("the wrapped iterator must not be exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_source_yields_the_wrapped_bursts() {
        let bursts = vec![Burst::from_array([1; 8]), Burst::from_array([2; 8])];
        let mut source = IterSource::new("fixed", bursts.clone().into_iter().cycle());
        assert_eq!(source.name(), "fixed");
        assert_eq!(source.next_burst(), bursts[0]);
        assert_eq!(source.next_burst(), bursts[1]);
        assert_eq!(source.next_burst(), bursts[0]);
        let taken = source.take_bursts(3);
        assert_eq!(taken.len(), 3);
    }

    #[test]
    #[should_panic(expected = "must not be exhausted")]
    fn iter_source_panics_when_exhausted() {
        let mut source = IterSource::new("finite", Vec::<Burst>::new().into_iter());
        let _ = source.next_burst();
    }

    #[test]
    fn boxed_sources_forward() {
        let bursts = vec![Burst::from_array([7; 8])];
        let mut boxed: Box<dyn BurstSource> =
            Box::new(IterSource::new("boxed", bursts.into_iter().cycle()));
        assert_eq!(boxed.name(), "boxed");
        assert_eq!(boxed.next_burst().bytes()[0], 7);
    }
}
