//! # dbi-workloads
//!
//! Workload generators and traces for evaluating data bus inversion
//! schemes.
//!
//! The paper's figures are computed over 10 000 uniformly random bursts
//! ([`UniformRandomBursts`], [`random::PAPER_BURST_COUNT`]). This crate
//! additionally provides deterministic stress patterns
//! ([`patterns::PatternBursts`]) and structured synthetic data
//! ([`synthetic`]) that stand in for proprietary application traces, plus a
//! plain-text [`Trace`] format so burst streams can be captured and
//! replayed, and a streaming [`TraceEncoder`] that encodes whole traces in
//! one call with the bus state carried across bursts and no per-burst
//! allocation.
//!
//! ```
//! use dbi_workloads::{BurstSource, UniformRandomBursts};
//!
//! let mut source = UniformRandomBursts::with_seed(1);
//! let bursts = source.take_bursts(100);
//! assert_eq!(bursts.len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod load;
pub mod patterns;
pub mod random;
pub mod synthetic;
pub mod trace;
pub mod trace_encoder;

pub use generator::{BurstSource, IterSource};
pub use load::LoadProfile;
pub use patterns::{Pattern, PatternBursts};
pub use random::UniformRandomBursts;
pub use synthetic::{
    standard_suite, FloatArrayBursts, FramebufferBursts, MarkovBursts, TextBursts, ZeroHeavyBursts,
};
pub use trace::{ParseTraceError, Trace};
pub use trace_encoder::{PlanTraceEncoder, TraceEncoder, TraceSummary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generator_produces_standard_bursts() {
        let mut sources: Vec<Box<dyn BurstSource>> = vec![
            Box::new(UniformRandomBursts::with_seed(1)),
            Box::new(PatternBursts::new(Pattern::Checkerboard)),
            Box::new(ZeroHeavyBursts::new(1, 0.5)),
            Box::new(FloatArrayBursts::new(1)),
            Box::new(TextBursts::new(1)),
            Box::new(FramebufferBursts::new(1)),
            Box::new(MarkovBursts::new(1, 0.8)),
        ];
        for source in &mut sources {
            let burst = source.next_burst();
            assert_eq!(
                burst.len(),
                dbi_core::STANDARD_BURST_LEN,
                "{}",
                source.name()
            );
        }
    }
}
