//! Memory-channel benchmark: full write-path simulation under every scheme.
//!
//! Measures the cost of pushing a 16 KiB pseudo-random buffer through the
//! GDDR5X write channel (controller + bus + device) with each DBI scheme,
//! and prints the resulting channel energy so the system-level comparison
//! of the extension study can be regenerated from the bench harness.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbi_bench::random_buffer;
use dbi_core::Scheme;
use dbi_mem::{ChannelConfig, MemoryController};

fn memory_channel(c: &mut Criterion) {
    let data = random_buffer(16 * 1024);
    let schemes = [Scheme::Raw, Scheme::Dc, Scheme::Ac, Scheme::OptFixed];

    // Print the channel energy per scheme once.
    for scheme in schemes {
        let mut controller = MemoryController::new(ChannelConfig::gddr5x(), scheme);
        controller
            .write_buffer(0, &data)
            .expect("buffer is access-aligned");
        println!(
            "[channel] {:<18} {:8.3} nJ interface energy for 16 KiB",
            format!("{scheme}"),
            controller.totals().interface_energy_j * 1e9
        );
    }

    let mut group = c.benchmark_group("memory_channel_16KiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for scheme in schemes {
        group.bench_with_input(
            BenchmarkId::new("write", format!("{scheme}")),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut controller = MemoryController::new(ChannelConfig::gddr5x(), scheme);
                    controller
                        .write_buffer(0, black_box(&data))
                        .expect("buffer is access-aligned");
                    black_box(controller.totals().interface_energy_j)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, memory_channel);
criterion_main!(benches);
