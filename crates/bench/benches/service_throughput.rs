//! Service load generator: throughput and latency of the sharded encode
//! service under concurrent multi-client traffic.
//!
//! Spins the whole service up **in-process** and drives it with the
//! `dbi_workloads` traffic mixes ([`LoadProfile`]) at varying client
//! counts, over four transports:
//!
//! * `local` — each client thread owns a [`LocalClient`] (the
//!   allocation-free in-process path; measures engine + sharding),
//! * `tcp` — each client thread owns a [`TcpClient`] over loopback
//!   (adds the wire protocol and socket round trip),
//! * `local-batch` / `tcp-batch` — the protocol-3 **batched data
//!   plane**: each request is one `EncodeBatch` submission carrying
//!   [`BATCH_ACCESSES`] accesses (one header + contiguous payload per
//!   whole batch), the throughput headline of the slab refactor,
//! * `pipelined` — the protocol-5 **high-fan-in rows**: one driver
//!   multiplexing 64/256/1024 [`PipelinedClient`] connections into the
//!   event-driven connection plane, keeping a constant
//!   [`FAN_IN_WINDOW`]-deep aggregate pipeline in flight so the series
//!   isolates what fan-in itself costs,
//! * `local-contend` — the **many-session contention rows**:
//!   [`CONTEND_SESSIONS`] client threads, each its own session, firing
//!   small ([`CONTEND_ACCESSES`]-access) requests at once. This is the
//!   profile the packed worker pass and the lock-free shard queues are
//!   built for — many shallow streams contending for the same shards —
//!   and `stage_queue_p99_us` is its headline column.
//!
//! Per-request latency is recorded and the run's requests/s, bursts/s
//! and p50/p99 latency land in `BENCH_service.json` at the repository
//! root, next to `BENCH_encode.json`. Each row also carries the
//! **server-side stage latencies** for its window — queue-wait, encode
//! and total percentiles read as deltas of the engine's stage histograms
//! around the run — so client-observed latency can be decomposed into
//! where the service actually spent it.
//!
//! Environment knobs: `DBI_SERVICE_SCHEME` (any name `Scheme::from_str`
//! accepts, e.g. `opt-fixed`, `dc`, `opt:2,3`; default `opt-fixed`),
//! `DBI_SERVICE_BENCH_REQUESTS` (requests per client per run) and
//! `DBI_SERVICE_BENCH_SMOKE` (when set: 1 client, a small bounded
//! request count, no timing gate and no JSON rewrite — the CI mode that
//! fails the workflow on batch-path regressions without timing noise;
//! it additionally asserts that every stage histogram that should have
//! run reports non-zero counts and percentiles).
//!
//! Full (non-smoke) runs also gate against the previously recorded
//! `BENCH_service.json`: if any `local-batch` row's bursts/s falls below
//! [`GATE_TOLERANCE`] of its recorded value the run prints a regression
//! warning — or fails outright when `DBI_ENFORCE_SPEEDUP=1`, the CI mode
//! for machines whose baseline was recorded on the same hardware.

use dbi_core::Scheme;
use dbi_service::telemetry::LatencyStats;
use dbi_service::{
    CostModel, EncodeBatchRequest, EncodeReply, EncodeRequest, Engine, PipelinedClient,
    ServiceConfig, StageLatency, TcpClient, TcpServer, VerifyMode,
};
use dbi_workloads::LoadProfile;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

const GROUPS: u16 = 4;
const BURST_LEN: u8 = 8;
const ACCESSES_PER_REQUEST: usize = 16;
/// Accesses per `EncodeBatch` submission on the batch transports: 256
/// accesses = 1024 bursts = 8 KiB per frame, amortising the header, the
/// queue hop and the syscall across a whole slab.
const BATCH_ACCESSES: usize = 256;
const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
const BENCH_SEED: u64 = 0x5E41_11CE;

/// Sessions in the many-session contention rows: enough concurrent
/// shallow streams that shard queues stay deep and worker passes can
/// pack cross-session rounds.
const CONTEND_SESSIONS: usize = 64;
/// Accesses per request on the contention rows: small on purpose, so
/// queue handling and dispatch packing dominate over raw encode time.
const CONTEND_ACCESSES: usize = 4;
/// A `local-batch` row may drop to this fraction of its recorded
/// bursts/s before the regression gate trips; headroom for ordinary
/// run-to-run bench noise.
const GATE_TOLERANCE: f64 = 0.90;

/// Connection counts for the high-fan-in rows: the same aggregate load
/// spread over ever more pipelined connections, all multiplexed onto the
/// fixed I/O-thread pool.
const FAN_IN_CONNS: [usize; 3] = [64, 256, 1024];
/// Aggregate in-flight pipeline depth for the fan-in runs. Holding this
/// constant across connection counts means the row series isolates the
/// connection-plane cost of fan-in (poller tables, per-connection buffer
/// bookkeeping) from queueing depth.
const FAN_IN_WINDOW: usize = 256;
/// Requests each connection carries over a fan-in run.
const FAN_IN_ROUNDS_PER_CONN: usize = 8;

/// One measured configuration.
struct Row {
    transport: &'static str,
    profile: String,
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    bursts: u64,
    p50_us: f64,
    p99_us: f64,
    /// Server-side stage percentiles over this run's window, read as
    /// deltas of the engine's stage histograms (microseconds).
    stage_queue_p99_us: f64,
    stage_encode_p50_us: f64,
    stage_encode_p99_us: f64,
    stage_total_p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

/// What one client thread reports back: per-request latencies, the
/// bursts it encoded, and how long its (pre-generated) request loop ran.
struct ClientReport {
    latencies_ns: Vec<u64>,
    bursts: u64,
    elapsed_s: f64,
}

/// Payloads each client pre-generates and cycles through, so the timed
/// loop measures the service rather than the traffic generator (the
/// text-heavy `server` profile costs more to *generate* than to encode).
const PAYLOAD_POOL: usize = 32;

/// Drives `requests` encode calls through `call`, cycling payloads drawn
/// up front from the client's own seeded profile instance.
fn drive_client(
    mut profile: LoadProfile,
    session_id: u64,
    scheme: Scheme,
    requests: usize,
    accesses_per_request: usize,
    mut call: impl FnMut(&EncodeRequest<'_>, &mut EncodeReply) -> bool,
) -> ClientReport {
    let pool: Vec<Vec<u8>> = (0..PAYLOAD_POOL.min(requests.max(1)))
        .map(|_| {
            let mut payload = Vec::new();
            for _ in 0..accesses_per_request {
                profile.fill_access(usize::from(GROUPS), usize::from(BURST_LEN), &mut payload);
            }
            payload
        })
        .collect();
    let mut reply = EncodeReply::new();
    let mut report = ClientReport {
        latencies_ns: Vec::with_capacity(requests),
        bursts: 0,
        elapsed_s: 0.0,
    };
    let run_start = Instant::now();
    for index in 0..requests {
        let request = EncodeRequest {
            session_id,
            scheme,
            cost_model: CostModel::Inline,
            groups: GROUPS,
            burst_len: BURST_LEN,
            want_masks: false,
            verify: VerifyMode::Off,
            payload: &pool[index % pool.len()],
        };
        let start = Instant::now();
        // Overload responses are explicit backpressure: retry until
        // admitted, counting the whole wait as request latency.
        while !call(&request, &mut reply) {
            std::thread::yield_now();
        }
        report.latencies_ns.push(start.elapsed().as_nanos() as u64);
        report.bursts += reply.bursts;
    }
    report.elapsed_s = run_start.elapsed().as_secs_f64();
    report
}

fn profile_by_name(name: &str, seed: u64) -> LoadProfile {
    match name {
        "uniform" => LoadProfile::uniform(seed),
        "gpu" => LoadProfile::gpu(seed),
        "server" => LoadProfile::server(seed),
        "stress" => LoadProfile::stress(seed),
        other => panic!("unknown profile {other}"),
    }
}

/// Converts a per-burst request into its protocol-3 batch form.
fn to_batch<'a>(request: &EncodeRequest<'a>) -> EncodeBatchRequest<'a> {
    EncodeBatchRequest::from_request(request).expect("bench payloads divide into whole bursts")
}

/// The samples one stage histogram gained between two snapshots.
fn stage_delta(after: &LatencyStats, before: &LatencyStats) -> LatencyStats {
    let mut delta = *after;
    for (mine, earlier) in delta.buckets.iter_mut().zip(&before.buckets) {
        *mine -= *earlier;
    }
    delta.count -= before.count;
    delta.sum_ns -= before.sum_ns;
    delta
}

fn percentile_delta_us(after: &LatencyStats, before: &LatencyStats, p: f64) -> f64 {
    stage_delta(after, before).percentile_ns(p) as f64 / 1_000.0
}

fn run_config(
    engine: &Engine,
    tcp_addr: SocketAddr,
    transport: &'static str,
    profile_name: &str,
    scheme: Scheme,
    clients: usize,
    requests_per_client: usize,
) -> Row {
    let accesses_per_request = if transport.ends_with("batch") {
        BATCH_ACCESSES
    } else if transport == "local-contend" {
        CONTEND_ACCESSES
    } else {
        ACCESSES_PER_REQUEST
    };
    let stages_before: StageLatency = engine.metrics().totals().latency;
    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let profile = profile_by_name(profile_name, BENCH_SEED ^ (client as u64) << 8);
                let session_id = 0xB00 + client as u64;
                s.spawn(move || match transport {
                    "local" | "local-contend" => {
                        let mut local = engine.local_client();
                        drive_client(
                            profile,
                            session_id,
                            scheme,
                            requests_per_client,
                            accesses_per_request,
                            |req, reply| match local.encode(req, reply) {
                                Ok(()) => true,
                                Err(dbi_service::ServiceError::Overloaded { .. }) => false,
                                Err(err) => panic!("local client failed: {err}"),
                            },
                        )
                    }
                    "local-batch" => {
                        let mut local = engine.local_client();
                        drive_client(
                            profile,
                            session_id,
                            scheme,
                            requests_per_client,
                            accesses_per_request,
                            |req, reply| match local.encode_batch(&to_batch(req), reply) {
                                Ok(()) => true,
                                Err(dbi_service::ServiceError::Overloaded { .. }) => false,
                                Err(err) => panic!("local batch client failed: {err}"),
                            },
                        )
                    }
                    "tcp-batch" => {
                        let mut tcp =
                            TcpClient::connect(tcp_addr).expect("connect to the bench server");
                        drive_client(
                            profile,
                            session_id,
                            scheme,
                            requests_per_client,
                            accesses_per_request,
                            |req, reply| match tcp.encode_batch(&to_batch(req), reply) {
                                Ok(()) => true,
                                Err(dbi_service::ClientError::Remote {
                                    code: dbi_service::wire::ErrorCode::Overloaded,
                                    ..
                                }) => false,
                                Err(err) => panic!("tcp batch client failed: {err}"),
                            },
                        )
                    }
                    _ => {
                        let mut tcp =
                            TcpClient::connect(tcp_addr).expect("connect to the bench server");
                        drive_client(
                            profile,
                            session_id,
                            scheme,
                            requests_per_client,
                            accesses_per_request,
                            |req, reply| match tcp.encode(req, reply) {
                                Ok(()) => true,
                                Err(dbi_service::ClientError::Remote {
                                    code: dbi_service::wire::ErrorCode::Overloaded,
                                    ..
                                }) => false,
                                Err(err) => panic!("tcp client failed: {err}"),
                            },
                        )
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // The clients run concurrently; the slowest request loop bounds the
    // measurement window (pool generation happens before each client's
    // clock starts).
    let elapsed_s = reports
        .iter()
        .map(|r| r.elapsed_s)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);

    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let stages_after: StageLatency = engine.metrics().totals().latency;
    Row {
        transport,
        profile: profile_name.to_owned(),
        clients,
        requests: latencies.len() as u64,
        elapsed_s,
        bursts: reports.iter().map(|r| r.bursts).sum(),
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        stage_queue_p99_us: percentile_delta_us(
            &stages_after.queue_wait,
            &stages_before.queue_wait,
            0.99,
        ),
        stage_encode_p50_us: percentile_delta_us(&stages_after.encode, &stages_before.encode, 0.50),
        stage_encode_p99_us: percentile_delta_us(&stages_after.encode, &stages_before.encode, 0.99),
        stage_total_p99_us: percentile_delta_us(&stages_after.total, &stages_before.total, 0.99),
    }
}

/// High-fan-in run: one driver thread multiplexing `conns` pipelined v5
/// connections, keeping a constant [`FAN_IN_WINDOW`]-deep aggregate
/// pipeline in flight in waves. Each wave submits one request per
/// round-robin-chosen connection and then drains those completions in
/// submission order, asserting that every response comes back under the
/// id it was submitted with.
fn run_fan_in(
    engine: &Engine,
    tcp_addr: SocketAddr,
    profile_name: &str,
    scheme: Scheme,
    conns: usize,
    rounds_per_conn: usize,
) -> Row {
    let mut profile = profile_by_name(profile_name, BENCH_SEED ^ 0xFA_u64);
    let pool: Vec<Vec<u8>> = (0..PAYLOAD_POOL)
        .map(|_| {
            let mut payload = Vec::new();
            for _ in 0..ACCESSES_PER_REQUEST {
                profile.fill_access(usize::from(GROUPS), usize::from(BURST_LEN), &mut payload);
            }
            payload
        })
        .collect();
    let mut clients: Vec<PipelinedClient> = (0..conns)
        .map(|index| {
            PipelinedClient::connect(tcp_addr)
                .unwrap_or_else(|err| panic!("fan-in connection {index}/{conns} failed: {err}"))
        })
        .collect();

    let stages_before: StageLatency = engine.metrics().totals().latency;
    let total = conns * rounds_per_conn;
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut bursts = 0u64;
    let mut reply = EncodeReply::new();
    let mut next_conn = 0usize;
    let mut submitted = 0usize;
    let run_start = Instant::now();
    while submitted < total {
        let wave = FAN_IN_WINDOW.min(total - submitted);
        let mut in_flight = Vec::with_capacity(wave);
        for _ in 0..wave {
            let index = next_conn % conns;
            next_conn += 1;
            let request = EncodeRequest {
                session_id: index as u64 + 1,
                scheme,
                cost_model: CostModel::Inline,
                groups: GROUPS,
                burst_len: BURST_LEN,
                want_masks: false,
                verify: VerifyMode::Off,
                payload: &pool[submitted % pool.len()],
            };
            let start = Instant::now();
            let id = clients[index].submit(&request).expect("fan-in submit");
            in_flight.push((index, id, start));
            submitted += 1;
        }
        for (index, id, start) in in_flight {
            let done = clients[index]
                .next_completion(&mut reply)
                .expect("fan-in completion");
            assert!(done.is_ok(), "connection {index}: {:?}", done.error);
            assert_eq!(
                done.request_id, id,
                "connection {index}: completion id mismatch"
            );
            latencies.push(start.elapsed().as_nanos() as u64);
            bursts += reply.bursts;
        }
    }
    let elapsed_s = run_start.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

    latencies.sort_unstable();
    let stages_after: StageLatency = engine.metrics().totals().latency;
    Row {
        transport: "pipelined",
        profile: profile_name.to_owned(),
        clients: conns,
        requests: total as u64,
        elapsed_s,
        bursts,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        stage_queue_p99_us: percentile_delta_us(
            &stages_after.queue_wait,
            &stages_before.queue_wait,
            0.99,
        ),
        stage_encode_p50_us: percentile_delta_us(&stages_after.encode, &stages_before.encode, 0.50),
        stage_encode_p99_us: percentile_delta_us(&stages_after.encode, &stages_before.encode, 0.99),
        stage_total_p99_us: percentile_delta_us(&stages_after.total, &stages_before.total, 0.99),
    }
}

fn main() {
    // `cargo bench` passes harness flags; this custom harness ignores
    // everything except `--bench`-style invocations.
    let scheme: Scheme = std::env::var("DBI_SERVICE_SCHEME")
        .unwrap_or_else(|_| "opt-fixed".to_owned())
        .parse()
        .expect("DBI_SERVICE_SCHEME must be a valid scheme name");
    // Smoke mode (CI): 1 client, a small bounded request count, all four
    // transports exercised end to end — a functional regression in the
    // batch path fails the workflow — but no timing gate and no JSON
    // rewrite, so a noisy runner cannot corrupt the recorded numbers.
    let smoke = std::env::var_os("DBI_SERVICE_BENCH_SMOKE").is_some();
    let requests_per_client: usize = std::env::var("DBI_SERVICE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 64 } else { 2_000 });
    let client_counts: &[usize] = if smoke { &[1] } else { &CLIENT_COUNTS };

    let engine = Engine::start(ServiceConfig {
        shards: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        queue_capacity: 256,
        max_payload: 1 << 20,
        ..ServiceConfig::default()
    });
    let server = TcpServer::bind(&engine, "127.0.0.1:0").expect("bind the bench server");
    let addr = server.addr();

    let profiles = ["uniform", "gpu", "server", "stress"];
    let mut rows = Vec::new();
    for transport in ["local", "tcp", "local-batch", "tcp-batch"] {
        for profile in profiles {
            for &clients in client_counts {
                // A batch submission carries 16x the accesses of a
                // per-burst request; fewer submissions measure the same
                // traffic volume.
                let requests = if transport.ends_with("batch") {
                    (requests_per_client / 8).max(8)
                } else {
                    requests_per_client
                };
                let row = run_config(&engine, addr, transport, profile, scheme, clients, requests);
                println!(
                    "{:<11} {:<8} {:>2} clients: {:>9.0} req/s {:>12.0} bursts/s  p50 {:>7.1} us  p99 {:>7.1} us  [stage p99: queue {:>6.1} encode {:>6.1} total {:>6.1} us]",
                    row.transport,
                    row.profile,
                    row.clients,
                    row.requests as f64 / row.elapsed_s,
                    row.bursts as f64 / row.elapsed_s,
                    row.p50_us,
                    row.p99_us,
                    row.stage_queue_p99_us,
                    row.stage_encode_p99_us,
                    row.stage_total_p99_us,
                );
                rows.push(row);
            }
        }
    }

    // High-fan-in rows: the same aggregate pipeline depth spread over
    // 64/256/1024 pipelined connections. Both socket ends live in this
    // process, so make sure the fd table can hold the largest run.
    let fan_in_counts: &[usize] = if smoke { &[32] } else { &FAN_IN_CONNS };
    let rounds_per_conn = if smoke { 4 } else { FAN_IN_ROUNDS_PER_CONN };
    let largest = *fan_in_counts.iter().max().unwrap() as u64;
    let granted = poller::raise_nofile_limit(largest * 2 + 256).expect("query fd limit");
    assert!(
        granted >= largest * 2 + 256,
        "fd limit {granted} cannot hold {largest} in-process fan-in connections"
    );
    for profile in profiles {
        for &conns in fan_in_counts {
            let row = run_fan_in(&engine, addr, profile, scheme, conns, rounds_per_conn);
            println!(
                "{:<11} {:<8} {:>4} conns:  {:>9.0} req/s {:>12.0} bursts/s  p50 {:>7.1} us  p99 {:>7.1} us  [stage p99: queue {:>6.1} encode {:>6.1} total {:>6.1} us]",
                row.transport,
                row.profile,
                row.clients,
                row.requests as f64 / row.elapsed_s,
                row.bursts as f64 / row.elapsed_s,
                row.p50_us,
                row.p99_us,
                row.stage_queue_p99_us,
                row.stage_encode_p99_us,
                row.stage_total_p99_us,
            );
            rows.push(row);
        }
    }

    // Many-session contention rows: every session is its own client
    // thread firing small requests, so shard queues stay deep and worker
    // passes pack cross-session rounds. Queue-wait p99 is the headline.
    let contend_clients = if smoke { 8 } else { CONTEND_SESSIONS };
    let contend_requests = (requests_per_client / 4).max(8);
    for profile in profiles {
        let row = run_config(
            &engine,
            addr,
            "local-contend",
            profile,
            scheme,
            contend_clients,
            contend_requests,
        );
        println!(
            "{:<11} {:<8} {:>2} clients: {:>9.0} req/s {:>12.0} bursts/s  p50 {:>7.1} us  p99 {:>7.1} us  [stage p99: queue {:>6.1} encode {:>6.1} total {:>6.1} us]",
            row.transport,
            row.profile,
            row.clients,
            row.requests as f64 / row.elapsed_s,
            row.bursts as f64 / row.elapsed_s,
            row.p50_us,
            row.p99_us,
            row.stage_queue_p99_us,
            row.stage_encode_p99_us,
            row.stage_total_p99_us,
        );
        rows.push(row);
    }

    if smoke {
        // The CI gate for the telemetry plane: every stage that executed
        // must have seen every request, with believable (non-zero)
        // percentiles. Verify mode is off here, so that stage stays
        // legitimately empty.
        let latency = engine.metrics().totals().latency;
        let executed = engine.metrics().totals().requests;
        for (stage, stats) in latency.stages() {
            if stage == "verify" {
                assert_eq!(stats.count, 0, "verify never ran in this bench");
                continue;
            }
            assert_eq!(
                stats.count, executed,
                "stage {stage} must have one sample per executed request"
            );
            assert!(
                stats.percentile_ns(0.5) > 0 && stats.percentile_ns(0.999) > 0,
                "stage {stage} percentiles must be non-zero"
            );
            assert!(stats.mean_ns() > 0, "stage {stage} mean must be non-zero");
        }
        println!("smoke mode: stage histograms consistent ({executed} samples per stage); skipping the BENCH_service.json rewrite");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
        // Gate against the recorded baseline *before* overwriting it.
        if let Ok(previous) = std::fs::read_to_string(path) {
            gate_against_baseline(&previous, &rows);
        }
        let json = render_json(scheme, requests_per_client, &rows);
        match std::fs::write(path, &json) {
            Ok(()) => println!("wrote {path}"),
            Err(err) => eprintln!("could not write {path}: {err}"),
        }
    }

    let totals = engine.metrics().totals();
    println!(
        "service totals: {} requests, {} bursts, {} transitions saved, {} rejects, \
         {} passes ({} coalesced)",
        totals.requests,
        totals.bursts,
        totals.transitions_saved,
        totals.rejected,
        totals.passes,
        totals.coalesced
    );
    server.shutdown();
    engine.shutdown();
}

/// Pulls one `"key": value` number out of a recorded row line. The file
/// is this bench's own line-oriented output, so no JSON crate is needed.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pulls one `"key": "value"` string out of a recorded row line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// The local-batch throughput gate: compares every freshly measured
/// `local-batch` row against the same (profile, clients) row recorded in
/// the previous `BENCH_service.json`. Regressions beyond
/// [`GATE_TOLERANCE`] warn by default — bench runners are noisy and the
/// recorded file may come from different hardware — and abort the run
/// when `DBI_ENFORCE_SPEEDUP=1`.
fn gate_against_baseline(previous: &str, rows: &[Row]) {
    let mut regressions = 0u32;
    for line in previous
        .lines()
        .filter(|line| line.contains("\"transport\": \"local-batch\""))
    {
        let (Some(profile), Some(clients), Some(recorded)) = (
            field_str(line, "profile"),
            field_f64(line, "clients"),
            field_f64(line, "bursts_per_s"),
        ) else {
            continue;
        };
        let Some(row) = rows.iter().find(|row| {
            row.transport == "local-batch"
                && row.profile == profile
                && row.clients == clients as usize
        }) else {
            continue;
        };
        let measured = row.bursts as f64 / row.elapsed_s;
        if measured < recorded * GATE_TOLERANCE {
            regressions += 1;
            eprintln!(
                "regression: local-batch/{profile}/{clients} clients: \
                 {measured:.0} bursts/s vs {recorded:.0} recorded \
                 ({:.1}% of baseline)",
                measured / recorded * 100.0
            );
        }
    }
    if regressions > 0 {
        let enforce = std::env::var("DBI_ENFORCE_SPEEDUP").is_ok_and(|v| v == "1");
        assert!(
            !enforce,
            "{regressions} local-batch row(s) regressed past {GATE_TOLERANCE} \
             of the recorded baseline (DBI_ENFORCE_SPEEDUP=1)"
        );
        eprintln!(
            "warning: {regressions} local-batch row(s) below {GATE_TOLERANCE} of the \
             recorded baseline; set DBI_ENFORCE_SPEEDUP=1 to make this fatal"
        );
    } else {
        println!(
            "throughput gate: every local-batch row within tolerance of the recorded baseline"
        );
    }
}

fn render_json(scheme: Scheme, requests_per_client: usize, rows: &[Row]) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"dbi-service load generator, {GROUPS} groups x BL{BURST_LEN}, \
         {ACCESSES_PER_REQUEST} accesses/request ({BATCH_ACCESSES} on the -batch transports)\","
    );
    let _ = writeln!(json, "  \"scheme\": \"{scheme}\",");
    let _ = writeln!(json, "  \"requests_per_client\": {requests_per_client},");
    let _ = writeln!(json, "  \"rows\": [");
    for (index, row) in rows.iter().enumerate() {
        let comma = if index + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"profile\": \"{}\", \"clients\": {}, \
             \"requests\": {}, \"requests_per_s\": {:.0}, \"bursts_per_s\": {:.0}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"stage_queue_p99_us\": {:.2}, \"stage_encode_p50_us\": {:.2}, \
             \"stage_encode_p99_us\": {:.2}, \"stage_total_p99_us\": {:.2}}}{comma}",
            row.transport,
            row.profile,
            row.clients,
            row.requests,
            row.requests as f64 / row.elapsed_s,
            row.bursts as f64 / row.elapsed_s,
            row.p50_us,
            row.p99_us,
            row.stage_queue_p99_us,
            row.stage_encode_p50_us,
            row.stage_encode_p99_us,
            row.stage_total_p99_us,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push('}');
    json.push('\n');
    json
}
