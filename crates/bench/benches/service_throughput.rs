//! Service load generator: throughput and latency of the sharded encode
//! service under concurrent multi-client traffic.
//!
//! Spins the whole service up **in-process** and drives it with the
//! `dbi_workloads` traffic mixes ([`LoadProfile`]) at varying client
//! counts, over both transports:
//!
//! * `local` — each client thread owns a [`LocalClient`] (the
//!   allocation-free in-process path; measures engine + sharding),
//! * `tcp` — each client thread owns a [`TcpClient`] over loopback
//!   (adds the wire protocol and socket round trip).
//!
//! Every request carries one batch of beat-interleaved accesses drawn
//! from the client's profile; per-request latency is recorded and the
//! run's requests/s, bursts/s and p50/p99 latency land in
//! `BENCH_service.json` at the repository root, next to
//! `BENCH_encode.json`.
//!
//! Environment knobs: `DBI_SERVICE_SCHEME` (any name `Scheme::from_str`
//! accepts, e.g. `opt-fixed`, `dc`, `opt:2,3`; default `opt-fixed`) and
//! `DBI_SERVICE_BENCH_REQUESTS` (requests per client per run).

use dbi_core::Scheme;
use dbi_service::{
    CostModel, EncodeReply, EncodeRequest, Engine, ServiceConfig, TcpClient, TcpServer,
};
use dbi_workloads::LoadProfile;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

const GROUPS: u16 = 4;
const BURST_LEN: u8 = 8;
const ACCESSES_PER_REQUEST: usize = 16;
const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
const BENCH_SEED: u64 = 0x5E41_11CE;

/// One measured configuration.
struct Row {
    transport: &'static str,
    profile: String,
    clients: usize,
    requests: u64,
    elapsed_s: f64,
    bursts: u64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64 / 1_000.0
}

/// What one client thread reports back: per-request latencies and the
/// bursts it encoded.
struct ClientReport {
    latencies_ns: Vec<u64>,
    bursts: u64,
}

/// Drives `requests` encode calls through `call`, drawing each payload
/// from the client's own seeded profile instance.
fn drive_client(
    mut profile: LoadProfile,
    session_id: u64,
    scheme: Scheme,
    requests: usize,
    mut call: impl FnMut(&EncodeRequest<'_>, &mut EncodeReply) -> bool,
) -> ClientReport {
    let mut payload = Vec::new();
    let mut reply = EncodeReply::new();
    let mut report = ClientReport {
        latencies_ns: Vec::with_capacity(requests),
        bursts: 0,
    };
    for _ in 0..requests {
        payload.clear();
        for _ in 0..ACCESSES_PER_REQUEST {
            profile.fill_access(usize::from(GROUPS), usize::from(BURST_LEN), &mut payload);
        }
        let request = EncodeRequest {
            session_id,
            scheme,
            cost_model: CostModel::Inline,
            groups: GROUPS,
            burst_len: BURST_LEN,
            want_masks: false,
            payload: &payload,
        };
        let start = Instant::now();
        // Overload responses are explicit backpressure: retry until
        // admitted, counting the whole wait as request latency.
        while !call(&request, &mut reply) {
            std::thread::yield_now();
        }
        report.latencies_ns.push(start.elapsed().as_nanos() as u64);
        report.bursts += reply.bursts;
    }
    report
}

fn profile_by_name(name: &str, seed: u64) -> LoadProfile {
    match name {
        "uniform" => LoadProfile::uniform(seed),
        "gpu" => LoadProfile::gpu(seed),
        "server" => LoadProfile::server(seed),
        "stress" => LoadProfile::stress(seed),
        other => panic!("unknown profile {other}"),
    }
}

fn run_config(
    engine: &Engine,
    tcp_addr: SocketAddr,
    transport: &'static str,
    profile_name: &str,
    scheme: Scheme,
    clients: usize,
    requests_per_client: usize,
) -> Row {
    let start = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let profile = profile_by_name(profile_name, BENCH_SEED ^ (client as u64) << 8);
                let session_id = 0xB00 + client as u64;
                s.spawn(move || match transport {
                    "local" => {
                        let mut local = engine.local_client();
                        drive_client(
                            profile,
                            session_id,
                            scheme,
                            requests_per_client,
                            |req, reply| match local.encode(req, reply) {
                                Ok(()) => true,
                                Err(dbi_service::ServiceError::Overloaded { .. }) => false,
                                Err(err) => panic!("local client failed: {err}"),
                            },
                        )
                    }
                    _ => {
                        let mut tcp =
                            TcpClient::connect(tcp_addr).expect("connect to the bench server");
                        drive_client(
                            profile,
                            session_id,
                            scheme,
                            requests_per_client,
                            |req, reply| match tcp.encode(req, reply) {
                                Ok(()) => true,
                                Err(dbi_service::ClientError::Remote {
                                    code: dbi_service::wire::ErrorCode::Overloaded,
                                    ..
                                }) => false,
                                Err(err) => panic!("tcp client failed: {err}"),
                            },
                        )
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = reports
        .iter()
        .flat_map(|r| r.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    Row {
        transport,
        profile: profile_name.to_owned(),
        clients,
        requests: latencies.len() as u64,
        elapsed_s,
        bursts: reports.iter().map(|r| r.bursts).sum(),
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    }
}

fn main() {
    // `cargo bench` passes harness flags; this custom harness ignores
    // everything except `--bench`-style invocations.
    let scheme: Scheme = std::env::var("DBI_SERVICE_SCHEME")
        .unwrap_or_else(|_| "opt-fixed".to_owned())
        .parse()
        .expect("DBI_SERVICE_SCHEME must be a valid scheme name");
    let requests_per_client: usize = std::env::var("DBI_SERVICE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);

    let engine = Engine::start(ServiceConfig {
        shards: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        queue_capacity: 256,
        max_payload: 1 << 20,
        ..ServiceConfig::default()
    });
    let server = TcpServer::bind(&engine, "127.0.0.1:0").expect("bind the bench server");
    let addr = server.addr();

    let profiles = ["uniform", "gpu", "server", "stress"];
    let mut rows = Vec::new();
    for transport in ["local", "tcp"] {
        for profile in profiles {
            for clients in CLIENT_COUNTS {
                let row = run_config(
                    &engine,
                    addr,
                    transport,
                    profile,
                    scheme,
                    clients,
                    requests_per_client,
                );
                println!(
                    "{:<5} {:<8} {:>2} clients: {:>9.0} req/s {:>12.0} bursts/s  p50 {:>7.1} us  p99 {:>7.1} us",
                    row.transport,
                    row.profile,
                    row.clients,
                    row.requests as f64 / row.elapsed_s,
                    row.bursts as f64 / row.elapsed_s,
                    row.p50_us,
                    row.p99_us,
                );
                rows.push(row);
            }
        }
    }

    let json = render_json(scheme, requests_per_client, &rows);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }

    let totals = engine.metrics().totals();
    println!(
        "service totals: {} requests, {} bursts, {} transitions saved, {} rejects",
        totals.requests, totals.bursts, totals.transitions_saved, totals.rejected
    );
    server.shutdown();
    engine.shutdown();
}

fn render_json(scheme: Scheme, requests_per_client: usize, rows: &[Row]) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"dbi-service load generator, {GROUPS} groups x BL{BURST_LEN}, {ACCESSES_PER_REQUEST} accesses/request\","
    );
    let _ = writeln!(json, "  \"scheme\": \"{scheme}\",");
    let _ = writeln!(json, "  \"requests_per_client\": {requests_per_client},");
    let _ = writeln!(json, "  \"rows\": [");
    for (index, row) in rows.iter().enumerate() {
        let comma = if index + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"profile\": \"{}\", \"clients\": {}, \
             \"requests\": {}, \"requests_per_s\": {:.0}, \"bursts_per_s\": {:.0}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}}}{comma}",
            row.transport,
            row.profile,
            row.clients,
            row.requests,
            row.requests as f64 / row.elapsed_s,
            row.bursts as f64 / row.elapsed_s,
            row.p50_us,
            row.p99_us,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push('}');
    json.push('\n');
    json
}
