//! Figs. 7 and 8: the data-rate / load energy sweeps as benchmark targets.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dbi_bench::random_bursts;
use dbi_experiments::{fig7, fig8};

fn fig7_fig8(c: &mut Criterion) {
    let bursts = random_bursts(2_000);
    let rates = fig7::paper_rates();

    // Print the reproduced headline numbers.
    let fig7_result = fig7::run(&bursts, &rates, 3.0);
    if let Some((gbps, saving)) = fig7_result.best_operating_point() {
        println!(
            "[fig7] OPT(Fixed) overtakes DC at {:?} Gbps, best operating point {} Gbps ({:.2}%)",
            fig7_result.opt_fixed_beats_dc_from(),
            gbps,
            saving * 100.0
        );
    }
    let energies = fig8::EncoderEnergies::from_synthesis();
    let fig8_result = fig8::run(&bursts, &rates, &fig8::paper_loads(), energies);
    for curve in &fig8_result.curves {
        if let Some((gbps, normalized)) = curve.best_point() {
            println!(
                "[fig8] {} pF: best point {} Gbps, {:.2}% below best of DC/AC",
                curve.cload_pf,
                gbps,
                (1.0 - normalized) * 100.0
            );
        }
    }

    let mut group = c.benchmark_group("fig7_fig8");
    group.sample_size(10);
    group.bench_function("fig7_rate_sweep", |b| {
        b.iter(|| black_box(fig7::run(black_box(&bursts), &rates, 3.0)));
    });
    group.bench_function("fig8_rate_and_load_sweep", |b| {
        b.iter(|| {
            black_box(fig8::run(
                black_box(&bursts),
                &rates,
                &fig8::paper_loads(),
                energies,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, fig7_fig8);
criterion_main!(benches);
