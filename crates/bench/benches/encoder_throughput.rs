//! Encoder throughput: bursts encoded per second for every scheme.
//!
//! This is the software-side counterpart of the paper's hardware timing
//! argument: the optimal encoder must keep up with the memory interface.
//! The benchmark reports the time to encode one 8-byte burst for every
//! scheme, plus the Fig. 5 hardware-datapath simulation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbi_bench::random_bursts;
use dbi_core::{BusState, CostWeights, DbiEncoder, Scheme};
use dbi_hw::PipelineEncoder;

fn encoder_throughput(c: &mut Criterion) {
    let bursts = random_bursts(1024);
    let state = BusState::idle();
    let mut group = c.benchmark_group("encode_burst");
    group.throughput(Throughput::Elements(bursts.len() as u64));

    let schemes = [
        Scheme::Raw,
        Scheme::Dc,
        Scheme::Ac,
        Scheme::AcDc,
        Scheme::Greedy(CostWeights::FIXED),
        Scheme::Opt(CostWeights::FIXED),
        Scheme::OptFixed,
    ];
    for scheme in schemes {
        group.bench_with_input(BenchmarkId::new("scheme", scheme.name()), &scheme, |b, scheme| {
            b.iter(|| {
                for burst in &bursts {
                    black_box(scheme.encode(black_box(burst), &state));
                }
            });
        });
    }

    // The bit-accurate hardware datapath model.
    let hardware = PipelineEncoder::fixed();
    group.bench_function("hardware_datapath_fixed", |b| {
        b.iter(|| {
            for burst in &bursts {
                black_box(hardware.encode(black_box(burst), &state));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, encoder_throughput);
criterion_main!(benches);
