//! Encoder throughput: bursts encoded per second for every scheme, at
//! three levels of the API.
//!
//! This is the software-side counterpart of the paper's hardware timing
//! argument: the optimal encoder must keep up with the memory interface.
//! The benchmark measures
//!
//! * `encode_burst` — the materialising [`DbiEncoder::encode`] path (inline
//!   symbol buffer, heap-free for BL8), plus the Fig. 5 hardware-datapath
//!   simulation,
//! * `encode_mask` — the allocation-free mask-only fast path,
//! * `seed_baseline` — a faithful reimplementation of the original
//!   allocating OPT encoder (per-burst `Vec`s, lane-word reconstruction in
//!   the sweep), kept as the before/after yardstick,
//! * `trace` — whole-trace encoding with carried bus state
//!   ([`TraceEncoder`]) and the multi-group [`BusSession`], serial and
//!   rayon-parallel,
//! * `slab` — whole batches through [`DbiEncoder::encode_slab_into`]:
//!   the OPT carried-state kernel (priced and masks-only) against the
//!   serial per-burst chain and the default heuristic loop,
//! * `slab_lanes` — the vectorised multi-chain plane
//!   ([`DbiEncoder::encode_lanes_into`]): the same burst set as eight
//!   independent lane-group chains, run as parallel lanes of one
//!   recurrence by whichever SIMD kernel tier dispatch selected
//!   ([`dbi_core::simd::selected_kernel`]; `DBI_FORCE_SCALAR=1` pins the
//!   scalar tier, and the JSON records which kernel produced the numbers).
//!
//! After the criterion groups it re-times the key comparison directly and
//! writes `BENCH_encode.json` at the repository root, so the perf
//! trajectory of the encode hot path is tracked from this change on.
//! The headline `slab_ns_per_burst` row is the lanes masks-only encode
//! (gated below 5 ns/burst), and `decode_over_encode` gates the lanes
//! decode at 1.2x the priced lanes encode.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbi_bench::{random_buffer, random_bursts};
use dbi_core::schemes::OptFixedEncoder;
use dbi_core::{
    Burst, BurstSlab, BusState, CostWeights, DbiDecoder, DbiEncoder, EncodePlan, EncodedBurst,
    InversionMask, LaneWord, PlanCache, Scheme,
};
use dbi_hw::PipelineEncoder;
use dbi_mem::{BusSession, ChannelConfig};
use dbi_workloads::{Trace, TraceEncoder};
use std::time::Instant;

/// The original (pre-LUT) optimal encoder, reproduced verbatim as the
/// benchmark baseline: lane words are rebuilt for every trellis edge and
/// the sweep, the decision vector and the symbol buffer each allocate.
mod seed_baseline {
    use super::*;

    pub fn forward_sweep(
        weights: &CostWeights,
        burst: &Burst,
        state: &BusState,
    ) -> (Vec<[bool; 2]>, [u64; 2]) {
        let mut cost = [0u64, 0u64];
        let mut prev_word = [state.last(), state.last()];
        let mut choice: Vec<[bool; 2]> = Vec::with_capacity(burst.len());
        let mut first = true;

        for byte in burst.iter() {
            let words = [
                LaneWord::encode_byte(byte, false),
                LaneWord::encode_byte(byte, true),
            ];
            let mut next_cost = [0u64; 2];
            let mut stage_choice = [false; 2];
            for (s, &word) in words.iter().enumerate() {
                if first {
                    next_cost[s] = weights.symbol_cost(word, prev_word[0]);
                    stage_choice[s] = false;
                } else {
                    let via_plain = cost[0] + weights.symbol_cost(word, prev_word[0]);
                    let via_inverted = cost[1] + weights.symbol_cost(word, prev_word[1]);
                    if via_inverted < via_plain {
                        next_cost[s] = via_inverted;
                        stage_choice[s] = true;
                    } else {
                        next_cost[s] = via_plain;
                        stage_choice[s] = false;
                    }
                }
            }
            cost = next_cost;
            prev_word = words;
            choice.push(stage_choice);
            first = false;
        }
        (choice, cost)
    }

    /// Full allocating encode: sweep, backtrack into a fresh decision
    /// vector, then materialise a fresh symbol vector.
    pub fn encode(weights: &CostWeights, burst: &Burst, state: &BusState) -> (Vec<LaneWord>, u32) {
        let (choice, final_cost) = forward_sweep(weights, burst, state);
        let mut decisions = vec![false; burst.len()];
        let mut current = final_cost[1] < final_cost[0];
        for i in (0..burst.len()).rev() {
            decisions[i] = current;
            current = choice[i][usize::from(current)];
        }
        let mut mask = 0u32;
        let symbols: Vec<LaneWord> = burst
            .iter()
            .zip(decisions.iter())
            .enumerate()
            .map(|(i, (byte, &invert))| {
                if invert {
                    mask |= 1 << i;
                }
                LaneWord::encode_byte(byte, invert)
            })
            .collect();
        (symbols, mask)
    }
}

fn encoder_throughput(c: &mut Criterion) {
    let bursts = random_bursts(1024);
    let state = BusState::idle();

    let schemes = [
        Scheme::Raw,
        Scheme::Dc,
        Scheme::Ac,
        Scheme::AcDc,
        Scheme::Greedy(CostWeights::FIXED),
        Scheme::Opt(CostWeights::FIXED),
        Scheme::OptFixed,
    ];

    let mut group = c.benchmark_group("encode_burst");
    group.throughput(Throughput::Elements(bursts.len() as u64));
    for scheme in schemes {
        group.bench_with_input(
            BenchmarkId::new("scheme", scheme.name()),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    for burst in &bursts {
                        black_box(scheme.encode(black_box(burst), &state));
                    }
                });
            },
        );
    }
    // The bit-accurate hardware datapath model.
    let hardware = PipelineEncoder::fixed();
    group.bench_function("hardware_datapath_fixed", |b| {
        b.iter(|| {
            for burst in &bursts {
                black_box(hardware.encode(black_box(burst), &state));
            }
        });
    });
    // The original allocating implementation, for the before/after story.
    group.bench_function("seed_baseline_opt_fixed", |b| {
        b.iter(|| {
            for burst in &bursts {
                black_box(seed_baseline::encode(
                    &CostWeights::FIXED,
                    black_box(burst),
                    &state,
                ));
            }
        });
    });
    group.finish();

    let mut group = c.benchmark_group("encode_mask");
    group.throughput(Throughput::Elements(bursts.len() as u64));
    for scheme in schemes {
        group.bench_with_input(
            BenchmarkId::new("scheme", scheme.name()),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for burst in &bursts {
                        acc ^= scheme.encode_mask(black_box(burst), &state).bits();
                    }
                    acc
                });
            },
        );
    }
    // encode_into: materialising through one reused buffer.
    let opt_fixed = OptFixedEncoder::new();
    group.bench_function("encode_into_opt_fixed", |b| {
        let mut out = EncodedBurst::empty();
        b.iter(|| {
            let mut zeros = 0u64;
            for burst in &bursts {
                opt_fixed.encode_into(black_box(burst), &state, &mut out);
                zeros += u64::from(out.symbols()[0].zeros());
            }
            zeros
        });
    });
    group.finish();

    // The runtime cost-model plane: encoding through a plan fetched from
    // a PlanCache per burst (the service steady state), versus building
    // the plan cold per burst (a worst-case swap storm), versus the
    // compile-time fixed baseline the plans must keep up with.
    let mut group = c.benchmark_group("plan_swap");
    group.throughput(Throughput::Elements(bursts.len() as u64));
    let bespoke = Scheme::Opt(CostWeights::new(3, 2).unwrap());
    group.bench_function("fixed_baseline", |b| {
        let fixed = OptFixedEncoder::new();
        b.iter(|| {
            let mut acc = 0u32;
            for burst in &bursts {
                acc ^= fixed.encode_mask(black_box(burst), &state).bits();
            }
            acc
        });
    });
    group.bench_function("cached_plan", |b| {
        // The service steady state: the session holds the cached plan's
        // Arc and encodes burst after burst through it.
        let cache = PlanCache::new(8);
        let plan = cache.get(bespoke);
        b.iter(|| {
            let mut acc = 0u32;
            for burst in &bursts {
                acc ^= plan.encode_mask(black_box(burst), &state).bits();
            }
            acc
        });
    });
    group.bench_function("cached_plan_refetch", |b| {
        // Pathological re-fetch: one cache lookup per burst (a mutex hop
        // plus an Arc clone). Real sessions amortise this per request.
        let cache = PlanCache::new(8);
        let _ = cache.get(bespoke); // warm
        b.iter(|| {
            let mut acc = 0u32;
            for burst in &bursts {
                let plan = cache.get(bespoke);
                acc ^= plan.encode_mask(black_box(burst), &state).bits();
            }
            acc
        });
    });
    group.bench_function("cold_plan_build", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for burst in &bursts {
                let plan = EncodePlan::new(black_box(bespoke));
                acc ^= plan.encode_mask(black_box(burst), &state).bits();
            }
            acc
        });
    });
    group.finish();

    // Trace-level encoding: carried bus state, one call per trace.
    let trace = Trace::new("bench", bursts.clone());
    let mut group = c.benchmark_group("trace_encode");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("opt_fixed_carried_state", |b| {
        b.iter(|| {
            let mut encoder = TraceEncoder::new(OptFixedEncoder::new());
            black_box(encoder.encode_trace(black_box(&trace)))
        });
    });
    group.finish();

    // The batched slab plane: the whole burst set in one encode_slab_into
    // call — the OPT kernel over contiguous storage vs. the default
    // per-burst loop the heuristics ride, vs. the serial mask chain.
    let mut slab = BurstSlab::with_capacity(8, bursts.len());
    slab.extend_from_bursts(&bursts).expect("uniform bursts");
    let mut group = c.benchmark_group("slab_encode");
    group.throughput(Throughput::Elements(bursts.len() as u64));
    group.bench_function("opt_fixed_kernel", |b| {
        let opt = OptFixedEncoder::new();
        b.iter(|| {
            let mut carried = state;
            opt.encode_slab_into(black_box(&mut slab), &mut carried);
            black_box(slab.total())
        });
    });
    group.bench_function("opt_fixed_kernel_masks_only", |b| {
        let opt = OptFixedEncoder::new();
        slab.set_pricing(false);
        b.iter(|| {
            let mut carried = state;
            opt.encode_slab_into(black_box(&mut slab), &mut carried);
            black_box(carried)
        });
        slab.set_pricing(true);
    });
    group.bench_function("opt_fixed_serial_chain", |b| {
        let opt = OptFixedEncoder::new();
        b.iter(|| {
            let mut carried = state;
            dbi_core::slab::encode_slab_serial(&opt, black_box(&mut slab), &mut carried);
            black_box(slab.total())
        });
    });
    group.bench_function("dc_default_loop", |b| {
        b.iter(|| {
            let mut carried = state;
            Scheme::Dc.encode_slab_into(black_box(&mut slab), &mut carried);
            black_box(slab.total())
        });
    });
    group.finish();

    // The vectorised lanes plane: the same 1024 bursts as eight
    // independent lane-group chains of 128 bursts each — the geometry the
    // SIMD kernels run as parallel lanes of one recurrence. Which kernel
    // tier runs is decided by dispatch (AVX2 here unless DBI_FORCE_SCALAR
    // pins the scalar oracle).
    let mut group = c.benchmark_group("slab_lanes");
    group.throughput(Throughput::Elements(bursts.len() as u64));
    group.bench_function("opt_fixed_8_chains_masks_only", |b| {
        let opt = OptFixedEncoder::new();
        slab.set_pricing(false);
        b.iter(|| {
            let mut states = [state; 8];
            opt.encode_lanes_into(black_box(&mut slab), &mut states);
            black_box(states)
        });
        slab.set_pricing(true);
    });
    group.bench_function("opt_fixed_8_chains_priced", |b| {
        let opt = OptFixedEncoder::new();
        b.iter(|| {
            let mut states = [state; 8];
            opt.encode_lanes_into(black_box(&mut slab), &mut states);
            black_box(slab.total())
        });
    });
    group.finish();

    // The decode plane: the receiver paths over the pre-driven wire image
    // of the same burst set. Baseline only — decoding is a masked
    // complement plus the activity walk, so it bounds how cheap the
    // service's verify mode can be.
    let (wires, wire_masks) = drive_wire_image(&bursts, &state);
    let mut group = c.benchmark_group("decode");
    group.throughput(Throughput::Elements(bursts.len() as u64));
    group.bench_function("decode_mask_opt_fixed_stream", |b| {
        let opt = OptFixedEncoder::new();
        let mut out = Vec::with_capacity(8);
        b.iter(|| {
            for (wire, mask) in wires.iter().zip(&wire_masks) {
                opt.decode_mask(black_box(wire), *mask, &mut out)
                    .expect("bench masks are valid");
                black_box(&out);
            }
        });
    });
    group.bench_function("decode_slab", |b| {
        let opt = OptFixedEncoder::new();
        let mut rx_slab = BurstSlab::with_capacity(8, bursts.len());
        for wire in &wires {
            rx_slab.push_bytes(wire).expect("uniform wire bursts");
        }
        rx_slab.load_masks(&wire_masks).expect("one mask per burst");
        // Masked complementation is an involution, so repeated in-place
        // decodes alternate wire/payload images — identical work per
        // iteration either way.
        b.iter(|| {
            let mut carried = state;
            opt.decode_slab_into(black_box(&mut rx_slab), &mut carried)
                .expect("masks stay loaded");
            black_box(carried)
        });
    });
    group.bench_function("decode_lanes_8_chains", |b| {
        // The receiver mirror of the lanes plane: the wire image of the
        // 8-chain encode, decoded and re-priced whole-slab by the SWAR
        // kernel in one decode_lanes_into call.
        let opt = OptFixedEncoder::new();
        let mut tx = BurstSlab::with_capacity(8, bursts.len());
        tx.extend_from_bursts(&bursts).expect("uniform bursts");
        let mut tx_states = [state; 8];
        opt.encode_lanes_into(&mut tx, &mut tx_states);
        let mut rx_lanes = BurstSlab::with_capacity(8, bursts.len());
        for (index, mask) in tx.masks().iter().enumerate() {
            let mut wire = tx.burst_bytes(index).expect("burst exists").to_vec();
            mask.apply_in_place(&mut wire);
            rx_lanes.push_bytes(&wire).expect("uniform wire bursts");
        }
        rx_lanes.load_masks(tx.masks()).expect("one mask per burst");
        b.iter(|| {
            let mut states = [state; 8];
            opt.decode_lanes_into(black_box(&mut rx_lanes), &mut states)
                .expect("masks stay loaded");
            black_box(states)
        });
    });
    group.finish();

    // Multi-group channel streams, serial vs rayon-parallel.
    let config = ChannelConfig::gddr5x();
    let data = random_buffer(256 * 1024);
    let mut group = c.benchmark_group("channel_stream_256KiB");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("session_serial", |b| {
        b.iter(|| {
            let mut session = BusSession::new(&config, Scheme::OptFixed);
            black_box(session.encode_stream(black_box(&data)).unwrap())
        });
    });
    group.bench_function("session_parallel", |b| {
        b.iter(|| {
            let mut session = BusSession::new(&config, Scheme::OptFixed);
            black_box(session.encode_stream_parallel(black_box(&data)).unwrap())
        });
    });
    group.finish();

    write_bench_json(&bursts, &state);
}

/// Drives the wire image of a burst set under a carried OptFixed chain:
/// the DQ lane bytes and DBI-lane masks a receiver would see.
fn drive_wire_image(bursts: &[Burst], state: &BusState) -> (Vec<Vec<u8>>, Vec<InversionMask>) {
    let opt = OptFixedEncoder::new();
    let mut carried = *state;
    let mut wires = Vec::with_capacity(bursts.len());
    let mut masks = Vec::with_capacity(bursts.len());
    for burst in bursts {
        let mask = opt.encode_mask(burst, &carried);
        let mut wire = burst.bytes().to_vec();
        mask.apply_in_place(&mut wire);
        carried = mask.final_state(burst, &carried);
        wires.push(wire);
        masks.push(mask);
    }
    (wires, masks)
}

/// Times `f` over the burst set and returns the best ns/burst of several
/// batches (minimum = least scheduler noise).
fn best_ns_per_burst(bursts: &[Burst], mut f: impl FnMut(&Burst)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..30 {
        let start = Instant::now();
        for burst in bursts {
            f(burst);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / bursts.len() as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Re-times the headline comparison and records it in `BENCH_encode.json`
/// at the repository root: the allocating seed baseline vs. the LUT mask
/// path vs. the materialising encode, all on 8-byte bursts, plus the
/// trace-level rate, the runtime-plan plane (cached-plan hit path and
/// cold plan construction), and the vectorised lanes plane (8-chain
/// encode/decode on the dispatch-selected kernel, with the kernel name
/// and detected CPU features stamped into the JSON).
fn write_bench_json(bursts: &[Burst], state: &BusState) {
    let weights = CostWeights::FIXED;
    let opt = OptFixedEncoder::new();

    let baseline_ns = best_ns_per_burst(bursts, |burst| {
        black_box(seed_baseline::encode(&weights, black_box(burst), state));
    });
    let mask_ns = best_ns_per_burst(bursts, |burst| {
        black_box(opt.encode_mask(black_box(burst), state));
    });
    let encode_ns = best_ns_per_burst(bursts, |burst| {
        black_box(opt.encode(black_box(burst), state));
    });

    // The slab kernel over the same burst set: whole-batch encode, one
    // call — the headline of the batched data plane. Two numbers:
    // masks-only (the exact work `encode_mask` does per burst, so the
    // like-for-like amortisation comparison) and the priced pass that
    // also fills the per-burst cost rows (what the service workers run).
    let time_slab = |slab: &mut BurstSlab| {
        let mut best = f64::INFINITY;
        for _ in 0..30 {
            let mut carried = *state;
            let start = Instant::now();
            opt.encode_slab_into(slab, &mut carried);
            black_box(carried);
            let ns = start.elapsed().as_secs_f64() * 1e9 / bursts.len() as f64;
            if ns < best {
                best = ns;
            }
        }
        best
    };
    let mut slab = BurstSlab::with_capacity(8, bursts.len());
    slab.extend_from_bursts(bursts).expect("uniform bursts");
    slab.set_pricing(false);
    let slab_chain_ns = time_slab(&mut slab);
    slab.set_pricing(true);
    let slab_chain_priced_ns = time_slab(&mut slab);

    // The vectorised lanes plane over the same bytes: eight independent
    // chains of 128 bursts, encoded as parallel lanes of one recurrence
    // by the dispatch-selected kernel. This is the headline slab number —
    // the geometry a real channel (several lane groups per slab) runs.
    let time_lanes = |slab: &mut BurstSlab| {
        let mut best = f64::INFINITY;
        for _ in 0..30 {
            let mut states = [*state; 8];
            let start = Instant::now();
            opt.encode_lanes_into(slab, &mut states);
            black_box(states);
            let ns = start.elapsed().as_secs_f64() * 1e9 / bursts.len() as f64;
            if ns < best {
                best = ns;
            }
        }
        best
    };
    slab.set_pricing(false);
    let slab_ns = time_lanes(&mut slab);
    slab.set_pricing(true);
    let slab_priced_ns = time_lanes(&mut slab);

    // Runtime cost-model plane: bespoke weights through a held cached
    // plan (the service steady state — sessions keep the Arc and encode
    // burst after burst), through a per-burst cache re-fetch, and through
    // a cold per-burst plan build (worst-case swap storm).
    let bespoke = Scheme::Opt(CostWeights::new(3, 2).unwrap());
    let cache = PlanCache::new(8);
    let held = cache.get(bespoke);
    let plan_cached_ns = best_ns_per_burst(bursts, |burst| {
        black_box(held.encode_mask(black_box(burst), state));
    });
    let plan_refetch_ns = best_ns_per_burst(bursts, |burst| {
        let plan = cache.get(bespoke);
        black_box(plan.encode_mask(black_box(burst), state));
    });
    let plan_cold_ns = best_ns_per_burst(bursts, |burst| {
        let plan = EncodePlan::new(black_box(bespoke));
        black_box(plan.encode_mask(black_box(burst), state));
    });

    // Decode-plane baselines (recorded, no gate yet): the per-burst
    // receiver path and the slab decode kernel over the pre-driven wire
    // image of the same burst set.
    let (wires, wire_masks) = drive_wire_image(bursts, state);
    let mut out = Vec::with_capacity(8);
    let mut decode_mask_ns = f64::INFINITY;
    for _ in 0..30 {
        let start = Instant::now();
        for (wire, mask) in wires.iter().zip(&wire_masks) {
            opt.decode_mask(black_box(wire), *mask, &mut out)
                .expect("bench masks are valid");
            black_box(&out);
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / bursts.len() as f64;
        if ns < decode_mask_ns {
            decode_mask_ns = ns;
        }
    }
    let mut rx_slab = BurstSlab::with_capacity(8, bursts.len());
    for wire in &wires {
        rx_slab.push_bytes(wire).expect("uniform wire bursts");
    }
    rx_slab.load_masks(&wire_masks).expect("one mask per burst");
    let mut decode_chain_ns = f64::INFINITY;
    for _ in 0..30 {
        let mut carried = *state;
        let start = Instant::now();
        opt.decode_slab_into(&mut rx_slab, &mut carried)
            .expect("masks stay loaded");
        black_box(carried);
        let ns = start.elapsed().as_secs_f64() * 1e9 / bursts.len() as f64;
        if ns < decode_chain_ns {
            decode_chain_ns = ns;
        }
    }

    // The lanes decode: the wire image of the 8-chain encode, decoded and
    // re-priced whole-slab by the SWAR kernel. Priced on both sides, so
    // `decode_over_encode` compares like with like.
    let mut tx = BurstSlab::with_capacity(8, bursts.len());
    tx.extend_from_bursts(bursts).expect("uniform bursts");
    let mut tx_states = [*state; 8];
    opt.encode_lanes_into(&mut tx, &mut tx_states);
    let mut rx_lanes = BurstSlab::with_capacity(8, bursts.len());
    for (index, mask) in tx.masks().iter().enumerate() {
        let mut wire = tx.burst_bytes(index).expect("burst exists").to_vec();
        mask.apply_in_place(&mut wire);
        rx_lanes.push_bytes(&wire).expect("uniform wire bursts");
    }
    rx_lanes.load_masks(tx.masks()).expect("one mask per burst");
    let mut decode_slab_ns = f64::INFINITY;
    for _ in 0..30 {
        let mut states = [*state; 8];
        let start = Instant::now();
        opt.decode_lanes_into(&mut rx_lanes, &mut states)
            .expect("masks stay loaded");
        black_box(states);
        let ns = start.elapsed().as_secs_f64() * 1e9 / bursts.len() as f64;
        if ns < decode_slab_ns {
            decode_slab_ns = ns;
        }
    }

    let trace = Trace::new("bench", bursts.to_vec());
    let mut encoder = TraceEncoder::new(OptFixedEncoder::new());
    let mut trace_best = f64::INFINITY;
    for _ in 0..30 {
        let start = Instant::now();
        black_box(encoder.encode_trace(&trace));
        let ns = start.elapsed().as_secs_f64() * 1e9 / trace.len() as f64;
        if ns < trace_best {
            trace_best = ns;
        }
    }

    let speedup = baseline_ns / mask_ns;
    let plan_overhead = plan_cached_ns / mask_ns;
    let slab_over_mask = slab_chain_ns / mask_ns;
    let decode_over_encode = decode_slab_ns / slab_priced_ns;
    let kernel = dbi_core::simd::selected_kernel().name();
    let cpu_features = dbi_core::simd::cpu_features();
    let json = format!(
        "{{\n  \"benchmark\": \"OptFixed encode, 8-byte bursts, {} bursts \
         (lanes rows: 8 chains x 128 bursts)\",\n  \
         \"kernel\": \"{kernel}\",\n  \
         \"cpu_features\": \"{cpu_features}\",\n  \
         \"seed_baseline_ns_per_burst\": {baseline_ns:.1},\n  \
         \"encode_mask_ns_per_burst\": {mask_ns:.1},\n  \
         \"slab_ns_per_burst\": {slab_ns:.1},\n  \
         \"slab_priced_ns_per_burst\": {slab_priced_ns:.1},\n  \
         \"slab_chain_ns_per_burst\": {slab_chain_ns:.1},\n  \
         \"slab_chain_priced_ns_per_burst\": {slab_chain_priced_ns:.1},\n  \
         \"encode_ns_per_burst\": {encode_ns:.1},\n  \
         \"decode_mask_ns_per_burst\": {decode_mask_ns:.1},\n  \
         \"decode_slab_ns_per_burst\": {decode_slab_ns:.1},\n  \
         \"decode_chain_ns_per_burst\": {decode_chain_ns:.1},\n  \
         \"trace_encode_ns_per_burst\": {trace_best:.1},\n  \
         \"plan_cached_ns_per_burst\": {plan_cached_ns:.1},\n  \
         \"plan_refetch_ns_per_burst\": {plan_refetch_ns:.1},\n  \
         \"plan_cold_build_ns_per_burst\": {plan_cold_ns:.1},\n  \
         \"plan_cached_over_fixed\": {plan_overhead:.2},\n  \
         \"slab_over_mask\": {slab_over_mask:.2},\n  \
         \"decode_over_encode\": {decode_over_encode:.2},\n  \
         \"mask_speedup_over_seed_baseline\": {speedup:.2}\n}}\n",
        bursts.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_encode.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}:\n{json}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    // Wall-clock ratios are machine-dependent, so the 5x gate only aborts
    // when explicitly enforced (DBI_ENFORCE_SPEEDUP=1, e.g. on a known-quiet
    // perf box); elsewhere a shortfall is a loud warning, not a panic.
    if speedup < 5.0 {
        let message = format!(
            "mask-only encode should be at least 5x the allocating baseline, measured {speedup:.2}x"
        );
        if std::env::var_os("DBI_ENFORCE_SPEEDUP").is_some() {
            panic!("{message}");
        }
        eprintln!("WARNING: {message} (set DBI_ENFORCE_SPEEDUP=1 to make this fatal)");
    }
    // The slab kernel must not be slower than the per-burst mask path —
    // the whole point of the batched plane is amortising per-burst
    // overhead away (small tolerance for timer noise, same warn/enforce
    // policy as the other gates).
    if slab_over_mask > 1.02 {
        let message = format!(
            "slab encode should be at most the per-burst mask cost, measured {slab_over_mask:.2}x"
        );
        if std::env::var_os("DBI_ENFORCE_SPEEDUP").is_some() {
            panic!("{message}");
        }
        eprintln!("WARNING: {message} (set DBI_ENFORCE_SPEEDUP=1 to make this fatal)");
    }
    // The vectorised lanes plane must clear the 5 ns/burst ceiling on its
    // headline masks-only geometry (8 chains x 128 BL8 bursts) — the
    // memory-bandwidth argument of the SIMD kernels. Under
    // DBI_FORCE_SCALAR the gate is skipped: pinning the scalar oracle is
    // an escape hatch, not a perf claim.
    if slab_ns >= 5.0 && !dbi_core::simd::forced_scalar() {
        let message = format!(
            "lanes slab encode should run under 5 ns/burst on kernel {kernel}, \
             measured {slab_ns:.1} ns"
        );
        if std::env::var_os("DBI_ENFORCE_SPEEDUP").is_some() {
            panic!("{message}");
        }
        eprintln!("WARNING: {message} (set DBI_ENFORCE_SPEEDUP=1 to make this fatal)");
    }
    // Decode parity: re-pricing the wire image whole-slab must stay
    // within 1.2x of the priced lanes encode — the SWAR decode kernel's
    // reason to exist (the old per-beat walk sat well above the encode).
    if decode_over_encode > 1.2 {
        let message = format!(
            "lanes decode should stay within 1.2x of the priced lanes encode, \
             measured {decode_over_encode:.2}x"
        );
        if std::env::var_os("DBI_ENFORCE_SPEEDUP").is_some() {
            panic!("{message}");
        }
        eprintln!("WARNING: {message} (set DBI_ENFORCE_SPEEDUP=1 to make this fatal)");
    }
    // Same policy for the plan-plane gate: a cached plan must stay within
    // 1.2x of the compile-time fixed path.
    if plan_overhead > 1.2 {
        let message = format!(
            "cached-plan encode should stay within 1.2x of the fixed path, measured {plan_overhead:.2}x"
        );
        if std::env::var_os("DBI_ENFORCE_SPEEDUP").is_some() {
            panic!("{message}");
        }
        eprintln!("WARNING: {message} (set DBI_ENFORCE_SPEEDUP=1 to make this fatal)");
    }
}

criterion_group!(benches, encoder_throughput);
criterion_main!(benches);
