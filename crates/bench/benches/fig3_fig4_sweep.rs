//! Figs. 3 and 4: the coefficient sweep as a benchmark target.
//!
//! Running `cargo bench -p dbi-bench --bench fig3_fig4_sweep` both measures
//! the sweep cost and prints the reproduced headline numbers (peak
//! advantage of DBI OPT and of DBI OPT (Fixed) over the best conventional
//! scheme), so the figure can be regenerated straight from the benchmark
//! harness.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dbi_bench::random_bursts;
use dbi_experiments::fig3;

fn fig3_fig4(c: &mut Criterion) {
    // A reduced burst count keeps the benchmark runtime reasonable while
    // preserving the curve shapes; the `reproduce` binary runs the full
    // 10 000-burst version.
    let bursts = random_bursts(2_000);

    // Print the reproduced numbers once, so the bench output doubles as the
    // figure regeneration.
    let fig3_result = fig3::run_fig3(&bursts, 20);
    let (alpha3, saving3) = fig3_result.peak_opt_advantage();
    let fig4_result = fig3::run_fig4(&bursts, 20);
    let (_, saving4) = fig4_result.peak_fixed_advantage();
    println!(
        "[fig3] peak OPT advantage {:.2}% at alpha={:.2}; DC/AC crossover at alpha={:?}",
        saving3 * 100.0,
        alpha3,
        fig3_result.dc_ac_crossover()
    );
    println!(
        "[fig4] peak OPT(Fixed) advantage {:.2}%; max loss vs tunable {:.2}%",
        saving4 * 100.0,
        fig4_result.max_fixed_coefficient_loss() * 100.0
    );

    let mut group = c.benchmark_group("fig3_fig4");
    group.sample_size(10);
    group.bench_function("fig3_sweep_21_points", |b| {
        b.iter(|| black_box(fig3::run_fig3(black_box(&bursts), 20)));
    });
    group.bench_function("fig4_sweep_21_points", |b| {
        b.iter(|| black_box(fig3::run_fig4(black_box(&bursts), 20)));
    });
    group.finish();
}

criterion_group!(benches, fig3_fig4);
criterion_main!(benches);
