//! Table I: the synthesis model and the hardware datapath as benchmarks.
//!
//! Running this bench prints the reproduced Table I rows and measures both
//! the analytical synthesis model and the per-burst latency of the
//! bit-accurate Fig. 5 datapath simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dbi_bench::random_bursts;
use dbi_core::{BusState, DbiEncoder};
use dbi_experiments::table1;
use dbi_hw::{PipelineEncoder, Synthesizer};

fn table1_hardware(c: &mut Criterion) {
    // Print the reproduced table once.
    println!("{}", table1::run().to_table());

    let mut group = c.benchmark_group("table1");
    group.bench_function("synthesize_all_four_designs", |b| {
        b.iter(|| black_box(Synthesizer::new().table1()));
    });

    let bursts = random_bursts(256);
    let state = BusState::idle();
    let fixed = PipelineEncoder::fixed();
    let configurable = PipelineEncoder::with_coefficients(5, 3);
    group.bench_function("datapath_fixed_coefficients", |b| {
        b.iter(|| {
            for burst in &bursts {
                black_box(fixed.encode(black_box(burst), &state));
            }
        });
    });
    group.bench_function("datapath_3bit_coefficients", |b| {
        b.iter(|| {
            for burst in &bursts {
                black_box(configurable.encode(black_box(burst), &state));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, table1_hardware);
criterion_main!(benches);
