//! # dbi-bench
//!
//! Shared fixtures for the Criterion benchmarks of the DBI reproduction.
//!
//! The actual benchmarks live in `benches/`; one bench target exists per
//! paper artefact (Figs. 3/4, Fig. 7, Fig. 8, Table I) plus an encoder
//! throughput bench and a memory-channel bench. This library only holds
//! the deterministic workload fixtures they share, so that every benchmark
//! measures the same data.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dbi_core::Burst;
use dbi_workloads::{BurstSource, UniformRandomBursts};

/// Seed used by every benchmark fixture.
pub const BENCH_SEED: u64 = 0xBE_5EED;

/// A deterministic set of uniformly random bursts for throughput and sweep
/// benchmarks.
#[must_use]
pub fn random_bursts(count: usize) -> Vec<Burst> {
    UniformRandomBursts::with_seed(BENCH_SEED).take_bursts(count)
}

/// A deterministic pseudo-random byte buffer sized to a whole number of
/// GDDR5X accesses (32-byte multiples), for the memory-channel benchmark.
#[must_use]
pub fn random_buffer(bytes: usize) -> Vec<u8> {
    let len = bytes.max(32) / 32 * 32;
    let mut data = vec![0u8; len];
    let mut seed = BENCH_SEED as u32;
    for byte in &mut data {
        seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        *byte = (seed >> 24) as u8;
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(random_bursts(10), random_bursts(10));
        assert_eq!(random_buffer(100), random_buffer(100));
        assert_eq!(random_buffer(100).len(), 96);
        assert_eq!(random_bursts(3).len(), 3);
    }
}
