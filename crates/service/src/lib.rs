//! # dbi-service
//!
//! A multi-threaded DBI encoding **service** over the zero-allocation
//! engine of `dbi-core`/`dbi-mem`: the deployment shape the paper's
//! encoder targets, where a DBI encoder sits in the memory-controller
//! datapath and handles sustained write traffic from many concurrent
//! producers. Built entirely on `std` — no async runtime, no network or
//! serialisation crates.
//!
//! ## Architecture
//!
//! ```text
//!                      ┌────── connection plane ──────┐ ┌────────────── Engine ──────────────┐
//!  TcpClient ──────┐    accept ─round-▶ I/O thread 0 ──▶│ shard 0: queue ─ worker ─ {sessions} │
//!  PipelinedClient ┼TCP▶thread  robin   epoll: conns…  │ shard 1: queue ─ worker ─ {sessions} │
//!                  ┘                  ▶ I/O thread 1 ◀──│   ...       bounded     BusSession   │
//!                                       epoll: conns…   └──── completion callbacks (tokens) ──┘
//!  LocalClient ─────────── in-process ──────────────────▶
//! ```
//!
//! * [`wire`] — the versioned, length-prefixed binary frame format with a
//!   zero-copy, `unsafe`-free decoder. Protocol version 2 carries a
//!   [`CostModel`] on session setup: inline weights, raw runtime
//!   `alpha,beta`, or a named phy operating point (`sstl15@6.4`,
//!   `pod12@3.2`). Protocol version 3 adds the **`EncodeBatch`** frames —
//!   a whole batch of bursts for one session under a single header (u16
//!   burst count + contiguous payload) instead of N per-request frames —
//!   and the request **verify bit** ([`VerifyMode`]): the engine decodes
//!   its own output through the receiver path
//!   ([`dbi_mem::BusSession::decode_stream_into`]) and answers
//!   [`wire::ErrorCode::VerifyMismatch`] on any encode/decode asymmetry.
//!   Protocol version 5 adds **pipelining**: the `Pipelined*` frames
//!   prefix request and response bodies with a client-chosen `u64`
//!   request id, so one connection keeps many requests in flight and
//!   matches responses by id — out of order across sessions, FIFO
//!   within one. Protocol version 6 adds the **durability admin
//!   frames** — trigger a snapshot, query durability status, restore
//!   from disk — and the typed [`wire::ErrorCode::SessionLimit`]
//!   rejection (encode-side downgraded to `Overloaded` for peers that
//!   announced v5 or older). Version 1 through 5 frames are still
//!   decoded (tags below the version that introduced them are rejected
//!   typed).
//! * [`Engine`] — N shard workers, each owning a private map of
//!   [`dbi_mem::BusSession`]s keyed by session id. Routing is *sticky*
//!   (same session id → same shard), so each session's carried bus state
//!   evolves exactly as in a serial run; results are bit-identical to
//!   single-threaded encoding. Workers encode through the slab path
//!   ([`dbi_core::BurstSlab`] + `encode_stream_slab_into`) and
//!   **coalesce** queued same-session requests into one worker pass.
//!   Queues are bounded and overflow is an explicit
//!   [`ServiceError::Overloaded`] response, never silent growth. Cost
//!   models resolve to [`dbi_core::EncodePlan`]s served from one
//!   process-wide [`dbi_core::PlanCache`] shared by every shard, so a
//!   weight pair's cost tables are built at most once per engine.
//! * [`LocalClient`] — the in-process front door: deterministic,
//!   socket-free, and **zero heap allocations per request** once warm
//!   (including requests carrying explicit cost models, and the
//!   [`LocalClient::encode_batch`] batch path).
//! * [`TcpServer`] / [`conn`] — the socket front end: an event-driven
//!   **connection plane**. An accept thread round-robins incoming
//!   connections onto a fixed pool of I/O threads, each multiplexing
//!   thousands of nonblocking connections through its own
//!   `poller` readiness loop (vendored epoll with a poll(2) fallback).
//!   Engine workers hand completed requests back through per-thread
//!   inboxes and wakers, matched by generation-tagged tokens.
//!   Per-connection read/write buffers are sized by actual backlog and
//!   bounded by high-watermarks — a client that stops reading while
//!   responses pile up is dropped as a typed
//!   [`wire::ErrorCode::SlowConsumer`], counted in the metrics
//!   `connections` block. [`TcpServer::shutdown`] deterministically
//!   joins every I/O thread and closes every connection.
//! * [`TcpClient`] / [`PipelinedClient`] — the client sides:
//!   `TcpClient` is the one-at-a-time v1–v4 surface (both paths return
//!   bytes identical to [`LocalClient`]);
//!   [`TcpClient::encode_batch`] ships a whole batch per round trip.
//!   `PipelinedClient` speaks v5: [`PipelinedClient::submit`] returns
//!   the assigned request id immediately,
//!   [`PipelinedClient::next_completion`] blocks for the next
//!   completion, [`PipelinedClient::try_next_completion`] polls.
//! * [`metrics`] — per-shard atomic counters (requests, rejects, bytes,
//!   bursts, transitions saved, queue depth + peak, sessions) plus a
//!   `batch` block (worker passes, coalesced requests, pass-size p50/p99,
//!   bursts/request), a `verify` block (round trips run, mismatches
//!   found), a `rate` block (requests/s, rejects/s over a sliding
//!   window), per-stage latency percentiles and the shared plan-cache
//!   counters (hits, misses, evictions, resident plans), snapshotted as
//!   JSON ([`MetricsSnapshot::to_json`]) or Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]) on request.
//! * [`telemetry`] — the observability plane behind those latency
//!   numbers: lock-free per-shard stage histograms, an always-on binary
//!   trace ring of recent requests ([`TraceEvent`]), a slowlog of
//!   requests over a configurable threshold, and exports — the
//!   `TraceDump`/`SlowlogQuery` wire frames (protocol version 4) plus
//!   chrome://tracing JSON ([`telemetry::chrome_trace_json`]).
//! * [`persist`] — the **durable session plane** (opt-in via
//!   [`PersistConfig`]): a DBI memory-based code's decodability lives in
//!   the carried per-session bus state, so losing it breaks every later
//!   decode. Workers append each touched session's state to a per-shard
//!   append-only journal at every burst boundary (buffered writer, zero
//!   allocations once warm); [`Engine::trigger_snapshot`] quiesces the
//!   shards one at a time and writes an atomic (temp-file + rename)
//!   engine-wide snapshot; recovery at [`Engine::try_start`] folds
//!   snapshot + journals (journal wins, torn tails skipped) and replays
//!   **bit-identically** to an uninterrupted serial run. When a shard's
//!   session table fills, the least-recently-touched idle session is
//!   evicted (snapshot-captured sessions preferred) rather than
//!   rejecting fresh ids forever; a full table of busy sessions answers
//!   [`wire::ErrorCode::SessionLimit`]. Admin access: the v6 wire
//!   frames, [`TcpClient::trigger_snapshot`] /
//!   [`TcpClient::snapshot_status`] / [`TcpClient::restore`], and a
//!   `durability` block in the metrics JSON and Prometheus text.
//!
//! ## Example
//!
//! ```
//! use dbi_core::Scheme;
//! use dbi_service::{CostModel, EncodeReply, EncodeRequest, Engine, ServiceConfig, VerifyMode};
//!
//! let engine = Engine::start(ServiceConfig::default());
//! let mut client = engine.local_client();
//! let mut reply = EncodeReply::new();
//! // One x32 BL8 access (4 lane groups × 8 beats), beat-interleaved.
//! let payload = [0x5Au8; 32];
//! client
//!     .encode(
//!         &EncodeRequest {
//!             session_id: 1,
//!             scheme: Scheme::OptFixed,
//!             cost_model: CostModel::Inline,
//!             groups: 4,
//!             burst_len: 8,
//!             want_masks: true,
//!             verify: VerifyMode::Off,
//!             payload: &payload,
//!         },
//!         &mut reply,
//!     )
//!     .unwrap();
//! assert_eq!(reply.bursts, 4);
//! engine.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod client;
pub mod conn;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod persist;
pub mod server;
pub mod telemetry;
pub mod wire;

pub use client::{PipelinedClient, PipelinedCompletion, TcpClient};
pub use conn::ConnConfig;
pub use engine::{
    EncodeBatchRequest, EncodeReply, EncodeRequest, Engine, LocalClient, ServiceConfig,
    MAX_BURST_LEN, MAX_GROUPS,
};
pub use error::{ClientError, ServiceError};
pub use metrics::{MetricsSnapshot, ShardSnapshot, StageLatency};
pub use persist::{PersistConfig, PersistError, RestoredSession};
pub use server::TcpServer;
pub use telemetry::{TelemetryRegistry, TraceEvent, TraceOutcome};
pub use wire::{CostModel, VerifyMode};

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::Scheme;

    #[test]
    fn local_and_tcp_paths_return_identical_results() {
        let engine = Engine::start(ServiceConfig::default());
        let server = TcpServer::bind(&engine, "127.0.0.1:0").unwrap();

        let payload: Vec<u8> = (0..64u8).collect();
        let request = EncodeRequest {
            session_id: 42,
            scheme: Scheme::OptFixed,
            cost_model: CostModel::Inline,
            groups: 4,
            burst_len: 8,
            want_masks: true,
            verify: VerifyMode::Off,
            payload: &payload,
        };
        // Distinct session ids so each path owns fresh carried state.
        let mut local_reply = EncodeReply::new();
        engine
            .local_client()
            .encode(&request, &mut local_reply)
            .unwrap();

        let mut tcp = TcpClient::connect(server.addr()).unwrap();
        let mut tcp_reply = EncodeReply::new();
        tcp.encode(
            &EncodeRequest {
                session_id: 43,
                ..request
            },
            &mut tcp_reply,
        )
        .unwrap();

        assert_eq!(local_reply, tcp_reply);
        let json = tcp.metrics_json().unwrap();
        assert!(json.contains("\"requests\":2"), "{json}");
        drop(tcp);
        server.shutdown();
        engine.shutdown();
    }

    #[test]
    fn remote_errors_carry_the_service_taxonomy() {
        let engine = Engine::start(ServiceConfig::default());
        let server = TcpServer::bind(&engine, "127.0.0.1:0").unwrap();
        let mut tcp = TcpClient::connect(server.addr()).unwrap();
        let mut reply = EncodeReply::new();
        let err = tcp
            .encode(
                &EncodeRequest {
                    session_id: 1,
                    scheme: Scheme::Dc,
                    cost_model: CostModel::Inline,
                    groups: 4,
                    burst_len: 8,
                    want_masks: false,
                    verify: VerifyMode::Off,
                    payload: &[0u8; 31],
                },
                &mut reply,
            )
            .unwrap_err();
        match err {
            ClientError::Remote { code, message } => {
                assert_eq!(code, wire::ErrorCode::BadPayload);
                assert!(message.contains("31"), "{message}");
            }
            other => panic!("expected a remote error, got {other}"),
        }
        drop(tcp);
        server.shutdown();
        engine.shutdown();
    }
}
