//! The event-driven connection plane.
//!
//! The TCP front end used to burn one thread per connection; this module
//! replaces that with a small fixed pool of **I/O threads**, each owning
//! a [`poller::Poller`] (Linux epoll, portable poll(2) fallback) and
//! multiplexing thousands of nonblocking connections:
//!
//! ```text
//!                    accept thread (blocking accept(2))
//!                        | round-robin hand-off via Inbox + Waker
//!            +-----------+-----------+
//!            v           v           v
//!       io thread 0  io thread 1  io thread N-1
//!        Poller        Poller        Poller
//!        conn slab     conn slab     conn slab
//!            \           |           /
//!             \          v          /
//!              shard workers (Engine)
//!             /          |          \
//!            completions flow back via each thread's Inbox
//! ```
//!
//! Each connection owns a growable read buffer (bytes parsed into frames
//! in place) and a growable write buffer (responses appended, flushed as
//! the socket accepts them). Both are bounded by configurable
//! high-watermarks: a connection whose *write* buffer crosses
//! [`ConnConfig::write_high_watermark`] is a **slow consumer** — it is
//! sent a best-effort [`ErrorCode::SlowConsumer`](crate::wire::ErrorCode)
//! frame and dropped, so one unread client cannot grow server memory
//! without limit.
//!
//! Requests reach the engine through its non-blocking submission path
//! (`EngineInner::submit_slot`) with a completion registration; the shard
//! worker finishes the request and pushes the slot onto the owning I/O
//! thread's `Inbox`, waking its poller. Legacy (v1–v4) frames keep
//! their strict one-in, one-out ordering: at most one is in flight per
//! connection, with further parsing paused until it completes. v5
//! *pipelined* frames submit concurrently up to
//! [`ConnConfig::max_in_flight`] and are matched to responses by request
//! id, so they may complete out of order across sessions while staying
//! FIFO within one (sticky sharding orders same-session work).

mod connection;

use crate::engine::{CompletionSink, Engine, Phase, RequestSlot};
use crate::metrics::ConnectionMetrics;
use connection::{Close, Connection, IoContext};
use poller::{Event, Interest, Poller, Waker};
use std::io;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Build-time configuration of the connection plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnConfig {
    /// I/O threads multiplexing the connections. At least 1.
    pub io_threads: usize,
    /// Unparsed bytes a connection's read buffer holds before the plane
    /// stops reading from its socket (kernel-side backpressure). Clamped
    /// up to one maximum frame, so any legal frame can always be
    /// buffered whole.
    pub read_high_watermark: usize,
    /// Unflushed bytes a connection's write buffer may hold; crossing it
    /// makes the connection a slow consumer, which is dropped with a
    /// typed [`ErrorCode::SlowConsumer`](crate::wire::ErrorCode) frame.
    /// Clamped up to one maximum frame, so a single legal response can
    /// always be queued.
    pub write_high_watermark: usize,
    /// Pipelined (v5) requests one connection may have in flight in the
    /// engine before the plane pauses parsing its frames. At least 1.
    pub max_in_flight: usize,
}

impl Default for ConnConfig {
    /// I/O threads default to the machine's parallelism capped at 4; the
    /// read high-watermark to one maximum frame; the write
    /// high-watermark to 16 MiB (two maximum frames); 64 in-flight
    /// pipelined requests per connection.
    fn default() -> Self {
        ConnConfig {
            io_threads: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
            read_high_watermark: crate::wire::HEADER_LEN + crate::wire::MAX_BODY_LEN,
            write_high_watermark: 16 << 20,
            max_in_flight: 64,
        }
    }
}

impl ConnConfig {
    /// The configuration with every field clamped into its workable
    /// range (see the field docs).
    #[must_use]
    fn normalised(mut self) -> Self {
        let max_frame = crate::wire::HEADER_LEN + crate::wire::MAX_BODY_LEN;
        self.io_threads = self.io_threads.max(1);
        self.read_high_watermark = self.read_high_watermark.max(max_frame);
        self.write_high_watermark = self.write_high_watermark.max(max_frame);
        self.max_in_flight = self.max_in_flight.max(1);
        self
    }
}

/// The poller token reserved for an I/O thread's inbox waker; connection
/// tokens start above it.
const WAKER_TOKEN: usize = 0;
const TOKEN_BASE: usize = 1;

/// The mailbox of one I/O thread: new connections from the accept
/// thread, finished request slots from the shard workers, and the stop
/// flag — all delivered under one mutex, with a [`Waker`] to interrupt
/// the thread's poller.
pub(crate) struct Inbox {
    state: Mutex<InboxState>,
    waker: Waker,
}

#[derive(Default)]
struct InboxState {
    conns: Vec<TcpStream>,
    completions: Vec<(u64, Arc<RequestSlot>)>,
    stop: bool,
}

impl Inbox {
    fn new(waker: Waker) -> Arc<Inbox> {
        Arc::new(Inbox {
            state: Mutex::new(InboxState::default()),
            waker,
        })
    }

    pub(crate) fn push_conn(&self, stream: TcpStream) {
        self.state
            .lock()
            .expect("inbox mutex poisoned")
            .conns
            .push(stream);
        self.waker.wake();
    }

    fn request_stop(&self) {
        self.state.lock().expect("inbox mutex poisoned").stop = true;
        self.waker.wake();
    }

    /// Moves the mailbox contents into the caller's buffers; returns the
    /// stop flag.
    fn drain(
        &self,
        conns: &mut Vec<TcpStream>,
        completions: &mut Vec<(u64, Arc<RequestSlot>)>,
    ) -> bool {
        let mut state = self.state.lock().expect("inbox mutex poisoned");
        conns.append(&mut state.conns);
        completions.append(&mut state.completions);
        state.stop
    }
}

impl CompletionSink for Inbox {
    fn complete(&self, token: u64, slot: &Arc<RequestSlot>) {
        let mut state = self.state.lock().expect("inbox mutex poisoned");
        state.completions.push((token, Arc::clone(slot)));
        // Wake only on the empty->non-empty edge: the I/O thread drains
        // the whole list per wake, so further pushes before the drain
        // need no further wakes.
        let first = state.completions.len() == 1;
        drop(state);
        if first {
            self.waker.wake();
        }
    }
}

/// The running pool of I/O threads behind one TCP server.
pub(crate) struct ConnPlane {
    inboxes: Vec<Arc<Inbox>>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ConnPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnPlane")
            .field("io_threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl ConnPlane {
    /// Spawns the configured number of I/O threads, each with its own
    /// poller and inbox.
    pub(crate) fn start(engine: &Engine, config: ConnConfig) -> io::Result<ConnPlane> {
        let config = config.normalised();
        let metrics = Arc::new(ConnectionMetrics::default());
        let mut inboxes = Vec::with_capacity(config.io_threads);
        let mut threads = Vec::with_capacity(config.io_threads);
        for index in 0..config.io_threads {
            let mut poller = Poller::new()?;
            let waker = poller.add_waker(WAKER_TOKEN)?;
            let inbox = Inbox::new(waker);
            let thread = {
                let engine = engine.clone();
                let inbox = Arc::clone(&inbox);
                let metrics = Arc::clone(&metrics);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("dbi-io-{index}"))
                    .spawn(move || io_loop(&engine, &inbox, poller, &config, &metrics))?
            };
            inboxes.push(inbox);
            threads.push(thread);
        }
        Ok(ConnPlane { inboxes, threads })
    }

    /// Handles to every I/O thread's mailbox, for the accept thread to
    /// hand streams out round-robin.
    pub(crate) fn inboxes(&self) -> Vec<Arc<Inbox>> {
        self.inboxes.clone()
    }

    /// Stops and joins every I/O thread; each closes all the connections
    /// it multiplexes on the way out. Deterministic: when this returns,
    /// no plane thread is running and no connection remains open.
    pub(crate) fn shutdown(&mut self) {
        for inbox in &self.inboxes {
            inbox.request_stop();
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ConnPlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Resets a finished slot and returns it to the thread-local pool, so a
/// steady-state I/O thread recycles slots instead of allocating.
fn recycle_slot(pool: &mut Vec<Arc<RequestSlot>>, slot: Arc<RequestSlot>) {
    slot.state.lock().expect("slot mutex poisoned").phase = Phase::Idle;
    pool.push(slot);
}

/// One I/O thread: drains its inbox (new connections, completions, the
/// stop flag), then services poller readiness until told to stop.
fn io_loop(
    engine: &Engine,
    inbox: &Arc<Inbox>,
    mut poller: Poller,
    config: &ConnConfig,
    metrics: &Arc<ConnectionMetrics>,
) {
    // Connection slab: slot index + TOKEN_BASE is the poller token;
    // (index << 32) | generation is the completion token, so a stale
    // completion can never reach a recycled slab slot.
    let mut conns: Vec<Option<Connection>> = Vec::new();
    let mut gens: Vec<u32> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut slot_pool: Vec<Arc<RequestSlot>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut new_conns: Vec<TcpStream> = Vec::new();
    let mut completions: Vec<(u64, Arc<RequestSlot>)> = Vec::new();
    let sink: Arc<dyn CompletionSink> = Arc::clone(inbox) as Arc<dyn CompletionSink>;

    loop {
        if poller.wait(&mut events, None).is_err() {
            // Fatal backend failure; nothing to multiplex with. Drop the
            // connections rather than spin.
            return;
        }

        let stop = inbox.drain(&mut new_conns, &mut completions);
        if stop {
            for (index, conn) in conns.iter_mut().enumerate() {
                if let Some(conn) = conn.take() {
                    let _ = poller.deregister(conn.stream().as_raw_fd());
                    metrics.on_close();
                    gens[index] = gens[index].wrapping_add(1);
                }
            }
            for (_, slot) in completions.drain(..) {
                recycle_slot(&mut slot_pool, slot);
            }
            return;
        }

        for stream in new_conns.drain(..) {
            let index = free.pop().unwrap_or_else(|| {
                conns.push(None);
                gens.push(0);
                conns.len() - 1
            });
            if stream.set_nonblocking(true).is_err() {
                free.push(index);
                continue;
            }
            let completion_token = ((index as u64) << 32) | u64::from(gens[index]);
            let conn = Connection::new(stream, completion_token);
            if poller
                .register(
                    conn.stream().as_raw_fd(),
                    TOKEN_BASE + index,
                    Interest::READ,
                )
                .is_err()
            {
                free.push(index);
                continue;
            }
            metrics.on_accept();
            conns[index] = Some(conn);
        }

        for (token, slot) in completions.drain(..) {
            let index = (token >> 32) as usize;
            let generation = token as u32;
            let live = matches!(conns.get(index), Some(Some(_))) && gens[index] == generation;
            if live {
                let mut ctx = IoContext {
                    engine,
                    config,
                    metrics,
                    sink: &sink,
                    slot_pool: &mut slot_pool,
                };
                let conn = conns[index].as_mut().expect("checked live above");
                let result = conn.handle_completion(&slot, &mut ctx);
                finish(
                    &mut poller,
                    &mut conns,
                    &mut gens,
                    &mut free,
                    metrics,
                    index,
                    result,
                );
            }
            recycle_slot(&mut slot_pool, slot);
        }

        for &event in &events {
            if event.token == WAKER_TOKEN {
                continue;
            }
            let index = event.token - TOKEN_BASE;
            let Some(Some(conn)) = conns.get_mut(index) else {
                // Closed earlier in this same wait batch.
                continue;
            };
            let mut ctx = IoContext {
                engine,
                config,
                metrics,
                sink: &sink,
                slot_pool: &mut slot_pool,
            };
            let result = conn.handle_event(event, &mut ctx);
            finish(
                &mut poller,
                &mut conns,
                &mut gens,
                &mut free,
                metrics,
                index,
                result,
            );
        }
    }
}

/// Applies a connection's post-work verdict: reregisters its interest
/// when it stays open, or tears it down (with the slow-consumer notice
/// when that is the cause) when it closes.
fn finish(
    poller: &mut Poller,
    conns: &mut [Option<Connection>],
    gens: &mut [u32],
    free: &mut Vec<usize>,
    metrics: &ConnectionMetrics,
    index: usize,
    result: Result<(), Close>,
) {
    let conn = conns[index].as_mut().expect("caller holds a live slot");
    match result {
        Ok(()) => {
            let wanted = conn.desired_interest();
            if wanted != conn.current_interest() {
                if poller
                    .reregister(conn.stream().as_raw_fd(), TOKEN_BASE + index, wanted)
                    .is_err()
                {
                    close_slot(poller, conns, gens, free, metrics, index);
                    return;
                }
                conn.set_current_interest(wanted);
            }
        }
        Err(Close::Slow) => {
            metrics.on_dropped_slow();
            conn.send_slow_consumer_notice();
            close_slot(poller, conns, gens, free, metrics, index);
        }
        Err(Close::Done | Close::Error) => {
            close_slot(poller, conns, gens, free, metrics, index);
        }
    }
}

fn close_slot(
    poller: &mut Poller,
    conns: &mut [Option<Connection>],
    gens: &mut [u32],
    free: &mut Vec<usize>,
    metrics: &ConnectionMetrics,
    index: usize,
) {
    if let Some(conn) = conns[index].take() {
        let _ = poller.deregister(conn.stream().as_raw_fd());
        metrics.on_close();
    }
    gens[index] = gens[index].wrapping_add(1);
    free.push(index);
}
