//! One multiplexed connection: buffered nonblocking reads, in-place
//! frame parsing, engine submission with completion routing, and
//! buffered nonblocking writes — the whole state machine one I/O thread
//! drives for each of its connections.
//!
//! Framing errors follow the thread-per-connection front end's rules
//! exactly: a *header*-level violation (bad magic, unsupported version,
//! oversized body) is answered with one `BadRequest` error frame and the
//! connection closes once it flushes — a peer that cannot frame
//! correctly cannot be resynchronised. A well-framed body that fails to
//! decode also gets `BadRequest`, but the frame boundary is intact, so
//! the connection stays open and the next frame is served.

use super::ConnConfig;
use crate::engine::{
    Completion, CompletionSink, EncodeBatchRequest, EncodeRequest, Engine, Phase, RequestSlot,
    SubmitOptions,
};
use crate::error::ServiceError;
use crate::metrics::ConnectionMetrics;
use crate::wire::{
    self, EncodeBatchResponseFrame, EncodeResponseFrame, ErrorCode, ErrorFrame, Frame,
    PipelinedBatchResponseFrame, PipelinedErrorFrame, PipelinedResponseFrame, WireError,
};
use poller::Interest;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Bytes asked of the socket per read call. Reads land in a stack
/// scratch buffer and only the received bytes are appended, so an idle
/// connection's read buffer stays as small as its actual backlog —
/// essential when one thread multiplexes thousands of connections.
const READ_CHUNK: usize = 16 * 1024;

/// Flushed-prefix length past which the write buffer is compacted even
/// though unflushed bytes remain, bounding the memmove cost per byte.
const FLUSH_COMPACT_THRESHOLD: usize = 64 * 1024;

/// Why a connection is being torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Close {
    /// Normal end: peer hung up, or a protocol violation finished
    /// flushing its error frame.
    Done,
    /// The write buffer crossed the slow-consumer high-watermark.
    Slow,
    /// The transport failed mid-read or mid-write.
    Error,
}

/// Everything a connection needs from its I/O thread to make progress.
pub(crate) struct IoContext<'a> {
    pub(crate) engine: &'a Engine,
    pub(crate) config: &'a ConnConfig,
    pub(crate) metrics: &'a ConnectionMetrics,
    /// The thread's [`Inbox`](super::Inbox) as a completion sink,
    /// cloned into every submission.
    pub(crate) sink: &'a Arc<dyn CompletionSink>,
    /// Thread-local pool of recycled request slots.
    pub(crate) slot_pool: &'a mut Vec<Arc<RequestSlot>>,
}

/// How the response to one in-flight engine submission is framed.
#[derive(Debug, Clone, Copy)]
enum PendingKind {
    /// A v1–v4 plain encode request: one-in, one-out, so parsing pauses
    /// while it is in flight.
    Legacy,
    /// A v1–v4 batch encode request (same ordering contract).
    LegacyBatch { count: u16 },
    /// A v5 pipelined encode request, answered by echoed request id.
    Pipelined { request_id: u64 },
    /// A v5 pipelined batch encode request.
    PipelinedBatch { request_id: u64, count: u16 },
}

impl PendingKind {
    fn is_legacy(self) -> bool {
        matches!(self, PendingKind::Legacy | PendingKind::LegacyBatch { .. })
    }
}

/// One in-flight engine submission of this connection.
struct Pending {
    slot: Arc<RequestSlot>,
    kind: PendingKind,
    /// The protocol version the request's header announced — failure
    /// responses downgrade v6-only error codes for older peers
    /// ([`ErrorCode::downgrade_for`]).
    version: u8,
}

/// The full state of one multiplexed connection.
pub(crate) struct Connection {
    stream: TcpStream,
    /// The completion token every submission of this connection carries:
    /// `(slab index << 32) | generation`.
    completion_token: u64,
    /// Bytes read off the socket; `[..parsed]` is already consumed.
    read_buf: Vec<u8>,
    parsed: usize,
    /// Bytes queued for the socket; `[..flushed]` is already written.
    write_buf: Vec<u8>,
    flushed: usize,
    pending: Vec<Pending>,
    /// A legacy (v1–v4) encode request is in flight: parsing is paused
    /// to preserve strict one-in, one-out response ordering.
    legacy_in_flight: bool,
    /// Mirror of the pause condition, refreshed after every unit of
    /// work, so interest can be computed without a context.
    paused: bool,
    /// The peer closed its write half (clean EOF on our reads).
    read_closed: bool,
    /// A header-level protocol violation was answered; close as soon as
    /// the error frame (and any earlier responses) flush.
    close_after_flush: bool,
    current_interest: Interest,
}

impl Connection {
    pub(crate) fn new(stream: TcpStream, completion_token: u64) -> Connection {
        Connection {
            stream,
            completion_token,
            read_buf: Vec::new(),
            parsed: 0,
            write_buf: Vec::new(),
            flushed: 0,
            pending: Vec::new(),
            legacy_in_flight: false,
            paused: false,
            read_closed: false,
            close_after_flush: false,
            current_interest: Interest::READ,
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    pub(crate) fn current_interest(&self) -> Interest {
        self.current_interest
    }

    pub(crate) fn set_current_interest(&mut self, interest: Interest) {
        self.current_interest = interest;
    }

    /// The readiness this connection needs right now: reads unless
    /// paused (backpressure) or finished, writes only while flushing.
    pub(crate) fn desired_interest(&self) -> Interest {
        let read = !self.read_closed && !self.close_after_flush && !self.paused;
        let write = self.flushed < self.write_buf.len();
        match (read, write) {
            (true, true) => Interest::READ_WRITE,
            (true, false) => Interest::READ,
            (false, true) => Interest::WRITE,
            (false, false) => Interest::NONE,
        }
    }

    /// Services one readiness notification.
    pub(crate) fn handle_event(
        &mut self,
        event: poller::Event,
        ctx: &mut IoContext<'_>,
    ) -> Result<(), Close> {
        if event.closed {
            return Err(Close::Done);
        }
        if event.readable && !self.read_closed {
            self.fill_read_buf(ctx)?;
            self.parse_frames(ctx)?;
        }
        self.after_work(ctx)
    }

    /// Services one finished engine submission: frames its response,
    /// then resumes parsing (the completion may have lifted the pause).
    pub(crate) fn handle_completion(
        &mut self,
        slot: &Arc<RequestSlot>,
        ctx: &mut IoContext<'_>,
    ) -> Result<(), Close> {
        let Some(position) = self
            .pending
            .iter()
            .position(|entry| Arc::ptr_eq(&entry.slot, slot))
        else {
            // Not ours (cannot happen while generations are honoured);
            // the caller recycles the slot either way.
            return self.after_work(ctx);
        };
        let entry = self.pending.remove(position);
        if entry.kind.is_legacy() {
            self.legacy_in_flight = false;
        }
        {
            let state = slot.state.lock().expect("slot mutex poisoned");
            debug_assert_eq!(
                state.phase,
                Phase::Done,
                "completion for an unfinished slot"
            );
            match &state.result {
                Ok(bursts) => {
                    let response = EncodeResponseFrame {
                        session_id: state.session_id,
                        bursts: *bursts,
                        per_group: &state.per_group,
                        masks: &state.masks,
                    };
                    match entry.kind {
                        PendingKind::Legacy => response.encode_into(&mut self.write_buf),
                        PendingKind::LegacyBatch { count } => EncodeBatchResponseFrame {
                            session_id: state.session_id,
                            bursts: *bursts,
                            count,
                            per_group: &state.per_group,
                            masks: &state.masks,
                        }
                        .encode_into(&mut self.write_buf),
                        PendingKind::Pipelined { request_id } => PipelinedResponseFrame {
                            request_id,
                            response,
                        }
                        .encode_into(&mut self.write_buf),
                        PendingKind::PipelinedBatch { request_id, count } => {
                            PipelinedBatchResponseFrame {
                                request_id,
                                response: EncodeBatchResponseFrame {
                                    session_id: state.session_id,
                                    bursts: *bursts,
                                    count,
                                    per_group: &state.per_group,
                                    masks: &state.masks,
                                },
                            }
                            .encode_into(&mut self.write_buf)
                        }
                    }
                }
                Err(err) => queue_failure(&mut self.write_buf, entry.kind, entry.version, err),
            }
        }
        self.note_queued_output(ctx)?;
        self.parse_frames(ctx)?;
        self.after_work(ctx)
    }

    /// Best-effort slow-consumer notice, sent right before the drop: one
    /// nonblocking write of a typed error frame. A consumer too slow to
    /// drain its responses may miss it; the drop itself is the signal.
    pub(crate) fn send_slow_consumer_notice(&mut self) {
        let mut notice = Vec::new();
        ErrorFrame {
            code: ErrorCode::SlowConsumer,
            message: "response backlog crossed the write high-watermark; dropping connection",
        }
        .encode_into(&mut notice);
        let _ = self.stream.write(&notice);
    }

    /// Reads until the socket would block, the peer reaches EOF, or the
    /// unparsed backlog reaches the read high-watermark.
    fn fill_read_buf(&mut self, ctx: &mut IoContext<'_>) -> Result<(), Close> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if self.read_buf.len() - self.parsed >= ctx.config.read_high_watermark {
                break;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(Close::Error),
            }
        }
        ctx.metrics.record_read_buf(self.read_buf.len() as u64);
        Ok(())
    }

    /// Parses and dispatches every complete frame in the read buffer,
    /// stopping at a partial frame or when backpressure pauses the
    /// connection.
    fn parse_frames(&mut self, ctx: &mut IoContext<'_>) -> Result<(), Close> {
        loop {
            if self.close_after_flush || self.is_paused(ctx) {
                break;
            }
            if self.parsed >= self.read_buf.len() {
                break;
            }
            let header = match wire::parse_header(&self.read_buf[self.parsed..]) {
                Ok(header) => header,
                Err(WireError::Truncated { .. }) => break,
                Err(err) => {
                    // Framing violation: answer once, then close after
                    // the flush — resynchronisation is impossible.
                    queue_error(&mut self.write_buf, ErrorCode::BadRequest, &err.to_string());
                    self.close_after_flush = true;
                    break;
                }
            };
            let total = wire::HEADER_LEN + header.body_len;
            if self.read_buf.len() - self.parsed < total {
                break;
            }
            let start = self.parsed;
            self.parsed += total;
            // Split borrows: the frame views borrow `read_buf` while the
            // dispatch appends to `write_buf` and grows `pending`.
            let Connection {
                read_buf,
                write_buf,
                pending,
                legacy_in_flight,
                completion_token,
                ..
            } = self;
            match wire::decode_frame(&read_buf[start..start + total]) {
                Ok((frame, _)) => dispatch_frame(
                    frame,
                    header.version,
                    write_buf,
                    pending,
                    legacy_in_flight,
                    *completion_token,
                    ctx,
                ),
                // Body-level decode failure: the frame boundary held, so
                // answer and keep serving the connection.
                Err(err) => queue_error(write_buf, ErrorCode::BadRequest, &err.to_string()),
            }
            self.note_queued_output(ctx)?;
        }
        if self.parsed > 0 {
            self.read_buf.drain(..self.parsed);
            self.parsed = 0;
        }
        Ok(())
    }

    /// Records the write-buffer watermark after queuing output and trips
    /// the slow-consumer drop when the backlog crosses the limit.
    fn note_queued_output(&mut self, ctx: &mut IoContext<'_>) -> Result<(), Close> {
        let outstanding = self.write_buf.len() - self.flushed;
        ctx.metrics.record_write_buf(outstanding as u64);
        if outstanding > ctx.config.write_high_watermark {
            return Err(Close::Slow);
        }
        Ok(())
    }

    /// Flushes what the socket will take, refreshes the pause mirror and
    /// decides whether the connection is finished.
    fn after_work(&mut self, ctx: &mut IoContext<'_>) -> Result<(), Close> {
        self.flush().map_err(|_| Close::Error)?;
        self.paused = self.is_paused(ctx);
        let drained = self.flushed == self.write_buf.len();
        if (self.read_closed || self.close_after_flush) && self.pending.is_empty() && drained {
            return Err(Close::Done);
        }
        Ok(())
    }

    fn is_paused(&self, ctx: &IoContext<'_>) -> bool {
        self.legacy_in_flight || self.pending.len() >= ctx.config.max_in_flight
    }

    fn flush(&mut self) -> io::Result<()> {
        while self.flushed < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.flushed..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.flushed += n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err),
            }
        }
        if self.flushed == self.write_buf.len() {
            self.write_buf.clear();
            self.flushed = 0;
        } else if self.flushed >= FLUSH_COMPACT_THRESHOLD {
            self.write_buf.drain(..self.flushed);
            self.flushed = 0;
        }
        Ok(())
    }
}

/// Appends a plain error frame.
fn queue_error(write_buf: &mut Vec<u8>, code: ErrorCode, message: &str) {
    ErrorFrame { code, message }.encode_into(write_buf);
}

/// Appends the failure response matching a submission's framing: plain
/// error frames for legacy requests, id-carrying pipelined error frames
/// for v5 requests. The code is downgraded for peers whose announced
/// `version` predates it ([`ErrorCode::downgrade_for`]).
fn queue_failure(write_buf: &mut Vec<u8>, kind: PendingKind, version: u8, err: &ServiceError) {
    let error = ErrorFrame {
        code: err.code().downgrade_for(version),
        message: &err.to_string(),
    };
    match kind {
        PendingKind::Legacy | PendingKind::LegacyBatch { .. } => error.encode_into(write_buf),
        PendingKind::Pipelined { request_id } | PendingKind::PipelinedBatch { request_id, .. } => {
            PipelinedErrorFrame { request_id, error }.encode_into(write_buf)
        }
    }
}

/// Routes one decoded frame: encode requests into the engine's
/// non-blocking submission path, metrics, telemetry and durability admin
/// requests answered inline, anything else refused. `version` is the
/// request header's announced protocol version, threaded through so
/// failure responses can downgrade v6-only error codes.
fn dispatch_frame(
    frame: Frame<'_>,
    version: u8,
    write_buf: &mut Vec<u8>,
    pending: &mut Vec<Pending>,
    legacy_in_flight: &mut bool,
    completion_token: u64,
    ctx: &mut IoContext<'_>,
) {
    match frame {
        Frame::EncodeRequest(view) => {
            let request = EncodeRequest {
                session_id: view.session_id,
                scheme: view.scheme,
                cost_model: view.cost_model,
                groups: view.groups,
                burst_len: view.burst_len,
                want_masks: view.want_masks,
                verify: view.verify,
                payload: view.payload,
            };
            let prepared = ctx.engine.inner().prepare(&request);
            submit_job(
                prepared,
                view.payload,
                view.want_masks,
                view.verify.is_on(),
                PendingKind::Legacy,
                version,
                write_buf,
                pending,
                legacy_in_flight,
                completion_token,
                ctx,
            );
        }
        Frame::EncodeBatchRequest(view) => {
            let request = EncodeBatchRequest {
                session_id: view.session_id,
                scheme: view.scheme,
                cost_model: view.cost_model,
                groups: view.groups,
                burst_len: view.burst_len,
                want_masks: view.want_masks,
                verify: view.verify,
                count: view.count,
                payload: view.payload,
            };
            let prepared = ctx.engine.inner().prepare_batch(&request);
            submit_job(
                prepared,
                view.payload,
                view.want_masks,
                view.verify.is_on(),
                PendingKind::LegacyBatch { count: view.count },
                version,
                write_buf,
                pending,
                legacy_in_flight,
                completion_token,
                ctx,
            );
        }
        Frame::PipelinedRequest {
            request_id,
            request: view,
        } => {
            let request = EncodeRequest {
                session_id: view.session_id,
                scheme: view.scheme,
                cost_model: view.cost_model,
                groups: view.groups,
                burst_len: view.burst_len,
                want_masks: view.want_masks,
                verify: view.verify,
                payload: view.payload,
            };
            let prepared = ctx.engine.inner().prepare(&request);
            submit_job(
                prepared,
                view.payload,
                view.want_masks,
                view.verify.is_on(),
                PendingKind::Pipelined { request_id },
                version,
                write_buf,
                pending,
                legacy_in_flight,
                completion_token,
                ctx,
            );
        }
        Frame::PipelinedBatchRequest {
            request_id,
            request: view,
        } => {
            let request = EncodeBatchRequest {
                session_id: view.session_id,
                scheme: view.scheme,
                cost_model: view.cost_model,
                groups: view.groups,
                burst_len: view.burst_len,
                want_masks: view.want_masks,
                verify: view.verify,
                count: view.count,
                payload: view.payload,
            };
            let prepared = ctx.engine.inner().prepare_batch(&request);
            submit_job(
                prepared,
                view.payload,
                view.want_masks,
                view.verify.is_on(),
                PendingKind::PipelinedBatch {
                    request_id,
                    count: view.count,
                },
                version,
                write_buf,
                pending,
                legacy_in_flight,
                completion_token,
                ctx,
            );
        }
        Frame::MetricsRequest => {
            // The engine snapshot plus this plane's live connection
            // counters — the registry itself cannot see them.
            let mut snapshot = ctx.engine.metrics();
            snapshot.connections = ctx.metrics.snapshot();
            wire::encode_metrics_response(write_buf, &snapshot.to_json());
        }
        Frame::TraceDumpRequest(max_events) => {
            let events = ctx.engine.trace_dump(max_events as usize);
            wire::encode_trace_dump_response(write_buf, &events);
        }
        Frame::SlowlogRequest(max_entries) => {
            let entries = ctx.engine.slowlog(max_entries as usize);
            wire::encode_slowlog_response(write_buf, ctx.engine.slowlog_threshold_ns(), &entries);
        }
        // Durability admin frames (v6): answered inline — a snapshot
        // quiesces every shard anyway, so there is nothing to overlap.
        Frame::SnapshotRequest => match ctx.engine.trigger_snapshot() {
            Ok(status) => status.encode_into(write_buf),
            Err(err) => queue_error(
                write_buf,
                err.code().downgrade_for(version),
                &err.to_string(),
            ),
        },
        Frame::SnapshotStatusRequest => {
            ctx.engine.snapshot_status().encode_into(write_buf);
        }
        Frame::RestoreRequest => match ctx.engine.restore() {
            Ok(status) => status.encode_into(write_buf),
            Err(err) => queue_error(
                write_buf,
                err.code().downgrade_for(version),
                &err.to_string(),
            ),
        },
        _ => queue_error(
            write_buf,
            ErrorCode::BadRequest,
            "only encode, metrics, telemetry and durability admin requests are accepted",
        ),
    }
}

/// Submits one prepared request through the engine's non-blocking path,
/// recycling a pooled slot and registering the connection's completion
/// token; synchronous failures (validation, backpressure, shutdown) are
/// answered immediately in the request's own framing.
#[allow(clippy::too_many_arguments)]
fn submit_job(
    prepared: Result<(usize, crate::engine::RouteKey), ServiceError>,
    payload: &[u8],
    want_masks: bool,
    verify: bool,
    kind: PendingKind,
    version: u8,
    write_buf: &mut Vec<u8>,
    pending: &mut Vec<Pending>,
    legacy_in_flight: &mut bool,
    completion_token: u64,
    ctx: &mut IoContext<'_>,
) {
    let (shard, key) = match prepared {
        Ok(route) => route,
        Err(err) => return queue_failure(write_buf, kind, version, &err),
    };
    let slot = ctx.slot_pool.pop().unwrap_or_else(RequestSlot::new);
    let options = SubmitOptions {
        want_masks,
        verify,
        completion: Some(Completion {
            sink: Arc::clone(ctx.sink),
            token: completion_token,
        }),
    };
    match ctx
        .engine
        .inner()
        .submit_slot(shard, key, payload, options, &slot)
    {
        Ok(()) => {
            if kind.is_legacy() {
                *legacy_in_flight = true;
            }
            pending.push(Pending {
                slot,
                kind,
                version,
            });
        }
        Err(err) => {
            super::recycle_slot(ctx.slot_pool, slot);
            queue_failure(write_buf, kind, version, &err);
        }
    }
}
