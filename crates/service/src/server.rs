//! The TCP front end.
//!
//! [`TcpServer::bind`] accepts connections on a [`std::net::TcpListener`]
//! and hands each accepted stream to the event-driven connection plane
//! ([`conn`](crate::conn)): a small fixed pool of I/O threads, each
//! multiplexing thousands of nonblocking connections under a
//! [`poller::Poller`] readiness loop. Requests flow into the engine's
//! non-blocking submission path and responses flow back through
//! per-thread completion mailboxes, so the socket layer adds no
//! per-connection threads and a TCP client still observes byte-identical
//! results to an in-process [`LocalClient`](crate::LocalClient).
//!
//! Legacy (v1–v4) frames keep their strict one-in, one-out ordering per
//! connection. Protocol-5 *pipelined* frames carry a request id and may
//! be submitted concurrently; their responses are matched by id, not
//! arrival order. Framing-level protocol violations (bad magic, wrong
//! version, oversized header) are answered with a
//! [`BadRequest`](crate::wire::ErrorCode::BadRequest) error frame and the
//! connection closes once it flushes; a well-framed body that fails to
//! decode also gets `BadRequest` but the connection stays open. A
//! connection that stops draining its responses is dropped with a typed
//! [`SlowConsumer`](crate::wire::ErrorCode::SlowConsumer) frame once its
//! write buffer crosses the configured high-watermark
//! ([`ConnConfig::write_high_watermark`]).

use crate::conn::{ConnConfig, ConnPlane, Inbox};
use crate::engine::Engine;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP front end over an [`Engine`].
///
/// Dropping the server (or calling [`TcpServer::shutdown`]) stops the
/// accept loop, then stops and joins every I/O thread — each closes all
/// the connections it multiplexes on the way out, so shutdown is
/// deterministic. The engine itself keeps running — it is shared, and
/// may be fronted by several servers or used in-process at the same
/// time.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    plane: ConnPlane,
}

impl TcpServer {
    /// Binds a listener (use port 0 for an OS-assigned port, retrievable
    /// via [`TcpServer::addr`]) and starts accepting connections with the
    /// default [`ConnConfig`].
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener or starting the
    /// connection plane.
    pub fn bind(engine: &Engine, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        TcpServer::bind_with(engine, addr, ConnConfig::default())
    }

    /// [`TcpServer::bind`] with an explicit connection-plane
    /// configuration (I/O thread count, buffer high-watermarks, and the
    /// pipelining window).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener or starting the
    /// connection plane.
    pub fn bind_with(
        engine: &Engine,
        addr: impl ToSocketAddrs,
        config: ConnConfig,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let plane = ConnPlane::start(engine, config)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let inboxes = plane.inboxes();
            std::thread::Builder::new()
                .name("dbi-accept".to_owned())
                .spawn(move || accept_loop(&listener, &stop, &inboxes))?
        };
        Ok(TcpServer {
            addr: local,
            stop,
            accept: Some(accept),
            plane,
        })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every multiplexed connection and joins
    /// the accept thread and every I/O thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway loopback connection
        // (reaching the listener even when it is bound to 0.0.0.0). If
        // even that fails, leak the accept thread rather than deadlock
        // the caller in join().
        let woke = TcpStream::connect(("127.0.0.1", self.addr.port())).is_ok();
        if let Some(accept) = self.accept.take() {
            if woke {
                let _ = accept.join();
            }
        }
        self.plane.shutdown();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

/// The accept loop: blocking accept(2), round-robin hand-off of each
/// stream to an I/O thread's inbox. All protocol work happens on the I/O
/// threads.
fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, inboxes: &[Arc<Inbox>]) {
    let mut next = 0usize;
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = incoming else { continue };
        let _ = stream.set_nodelay(true);
        inboxes[next % inboxes.len()].push_conn(stream);
        next = next.wrapping_add(1);
    }
}
