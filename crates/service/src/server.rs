//! The TCP front end.
//!
//! [`TcpServer::bind`] accepts connections on a [`std::net::TcpListener`]
//! and serves each one from its own thread with a dedicated
//! [`LocalClient`](crate::LocalClient) — so the socket layer is a thin
//! framing shim over exactly the path in-process callers use, and a TCP
//! client observes byte-identical results to a local one. One frame in,
//! one frame out: encode requests are answered with an encode response or
//! an error frame, metrics requests with the JSON snapshot, and the
//! protocol-4 telemetry requests with the engine's merged trace-ring and
//! slowlog contents.
//!
//! Protocol violations at the *framing* level (bad magic, wrong version,
//! oversized or truncated header) are answered with a
//! [`BadRequest`](crate::wire::ErrorCode::BadRequest) error frame, then
//! the connection is closed: a peer that cannot frame correctly cannot be
//! resynchronised. A well-framed body that fails to decode (unknown
//! scheme tag, inconsistent lengths, bad UTF-8) also gets `BadRequest`,
//! but the connection stays open — the frame boundary is intact, so the
//! next frame can still be served.

use crate::client::read_frame;
use crate::engine::{EncodeBatchRequest, EncodeReply, EncodeRequest, Engine};
use crate::error::ClientError;
use crate::wire::{
    self, EncodeBatchResponseFrame, EncodeResponseFrame, ErrorCode, ErrorFrame, Frame,
};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type ConnectionList = Arc<Mutex<Vec<(JoinHandle<()>, Option<TcpStream>)>>>;

/// A running TCP front end over an [`Engine`].
///
/// Dropping the server (or calling [`TcpServer::shutdown`]) stops the
/// accept loop, severs every open connection and joins all threads. The
/// engine itself keeps running — it is shared, and may be fronted by
/// several servers or used in-process at the same time.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    connections: ConnectionList,
}

impl TcpServer {
    /// Binds a listener (use port 0 for an OS-assigned port, retrievable
    /// via [`TcpServer::addr`]) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn bind(engine: &Engine, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections: ConnectionList = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let engine = engine.clone();
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("dbi-accept".to_owned())
                .spawn(move || accept_loop(&listener, &engine, &stop, &connections))?
        };
        Ok(TcpServer {
            addr: local,
            stop,
            accept: Some(accept),
            connections,
        })
    }

    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs open connections and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway loopback connection
        // (reaching the listener even when it is bound to 0.0.0.0). If
        // even that fails, leak the accept thread rather than deadlock
        // the caller in join().
        let woke = TcpStream::connect(("127.0.0.1", self.addr.port())).is_ok();
        if let Some(accept) = self.accept.take() {
            if woke {
                let _ = accept.join();
            }
        }
        let connections =
            core::mem::take(&mut *self.connections.lock().expect("connection list poisoned"));
        for (handle, stream) in connections {
            match stream {
                Some(stream) => {
                    let _ = stream.shutdown(Shutdown::Both);
                    let _ = handle.join();
                }
                // No severable handle (try_clone failed at accept time):
                // a blocked reader cannot be woken, so leak the thread
                // rather than deadlock shutdown on its join.
                None => drop(handle),
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Engine,
    stop: &Arc<AtomicBool>,
    connections: &ConnectionList,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = incoming else { continue };
        let _ = stream.set_nodelay(true);
        // Keep a second handle so shutdown can sever a blocked reader.
        let severable = stream.try_clone().ok();
        let engine = engine.clone();
        let handle = std::thread::Builder::new()
            .name("dbi-conn".to_owned())
            .spawn(move || handle_connection(&engine, stream));
        if let Ok(handle) = handle {
            let mut list = connections.lock().expect("connection list poisoned");
            // Reap finished connections so a long-lived server with many
            // short-lived clients does not accumulate dead handles and
            // their duplicated socket fds.
            let mut index = 0;
            while index < list.len() {
                if list[index].0.is_finished() {
                    let (done, stream) = list.swap_remove(index);
                    drop(stream);
                    let _ = done.join();
                } else {
                    index += 1;
                }
            }
            list.push((handle, severable));
        }
    }
}

/// Serves one connection until the peer hangs up, the transport fails, or
/// the peer violates the protocol.
fn handle_connection(engine: &Engine, mut stream: TcpStream) {
    let mut local = engine.local_client();
    let mut in_buf = Vec::new();
    let mut out_buf = Vec::new();
    let mut reply = EncodeReply::new();

    loop {
        match read_frame(&mut stream, &mut in_buf) {
            Ok(true) => {}
            // Clean EOF: the peer is done.
            Ok(false) => return,
            Err(ClientError::Wire(err)) => {
                out_buf.clear();
                ErrorFrame {
                    code: ErrorCode::BadRequest,
                    message: &err.to_string(),
                }
                .encode_into(&mut out_buf);
                let _ = stream.write_all(&out_buf);
                return;
            }
            Err(_) => return,
        }

        out_buf.clear();
        match wire::decode_frame(&in_buf) {
            Ok((Frame::EncodeRequest(view), _)) => {
                let request = EncodeRequest {
                    session_id: view.session_id,
                    scheme: view.scheme,
                    cost_model: view.cost_model,
                    groups: view.groups,
                    burst_len: view.burst_len,
                    want_masks: view.want_masks,
                    verify: view.verify,
                    payload: view.payload,
                };
                match local.encode(&request, &mut reply) {
                    Ok(()) => EncodeResponseFrame {
                        session_id: view.session_id,
                        bursts: reply.bursts,
                        per_group: &reply.per_group,
                        masks: &reply.masks,
                    }
                    .encode_into(&mut out_buf),
                    Err(err) => ErrorFrame {
                        code: err.code(),
                        message: &err.to_string(),
                    }
                    .encode_into(&mut out_buf),
                }
            }
            Ok((Frame::EncodeBatchRequest(view), _)) => {
                let request = EncodeBatchRequest {
                    session_id: view.session_id,
                    scheme: view.scheme,
                    cost_model: view.cost_model,
                    groups: view.groups,
                    burst_len: view.burst_len,
                    want_masks: view.want_masks,
                    verify: view.verify,
                    count: view.count,
                    payload: view.payload,
                };
                match local.encode_batch(&request, &mut reply) {
                    Ok(()) => EncodeBatchResponseFrame {
                        session_id: view.session_id,
                        bursts: reply.bursts,
                        count: view.count,
                        per_group: &reply.per_group,
                        masks: &reply.masks,
                    }
                    .encode_into(&mut out_buf),
                    Err(err) => ErrorFrame {
                        code: err.code(),
                        message: &err.to_string(),
                    }
                    .encode_into(&mut out_buf),
                }
            }
            Ok((Frame::MetricsRequest, _)) => {
                wire::encode_metrics_response(&mut out_buf, &engine.metrics_json());
            }
            Ok((Frame::TraceDumpRequest(max_events), _)) => {
                let events = engine.trace_dump(max_events as usize);
                wire::encode_trace_dump_response(&mut out_buf, &events);
            }
            Ok((Frame::SlowlogRequest(max_entries), _)) => {
                let entries = engine.slowlog(max_entries as usize);
                wire::encode_slowlog_response(
                    &mut out_buf,
                    engine.slowlog_threshold_ns(),
                    &entries,
                );
            }
            Ok(_) => {
                ErrorFrame {
                    code: ErrorCode::BadRequest,
                    message: "only encode, metrics and telemetry requests are accepted",
                }
                .encode_into(&mut out_buf);
            }
            Err(err) => {
                ErrorFrame {
                    code: ErrorCode::BadRequest,
                    message: &err.to_string(),
                }
                .encode_into(&mut out_buf);
            }
        }
        if stream.write_all(&out_buf).is_err() {
            return;
        }
    }
}
