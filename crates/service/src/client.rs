//! The TCP clients.
//!
//! [`TcpClient`] speaks the [`wire`] protocol over one
//! [`std::net::TcpStream`], request–response style, and exposes the same
//! [`EncodeRequest`]/[`EncodeReply`] types as the in-process
//! [`LocalClient`](crate::LocalClient) — code written against one client
//! works against the other. The frame buffers are owned by the client and
//! reused, so a steady request loop settles into zero buffer reallocation
//! (the socket itself, of course, still costs syscalls).
//!
//! [`PipelinedClient`] speaks the protocol-5 pipelined form: requests are
//! **submitted** without waiting ([`PipelinedClient::submit`] returns the
//! auto-assigned request id immediately) and completions are **polled**
//! ([`PipelinedClient::next_completion`] /
//! [`PipelinedClient::try_next_completion`]), matched to submissions by
//! the echoed id rather than by arrival order. Many requests ride one
//! connection concurrently, so a single client can keep every engine
//! shard busy without one thread per outstanding request.

use crate::engine::{EncodeBatchRequest, EncodeReply, EncodeRequest};
use crate::error::ClientError;
use crate::telemetry::TraceEvent;
use crate::wire::{
    self, ErrorCode, Frame, PipelinedBatchRequestFrame, PipelinedRequestFrame, SnapshotStatus,
    HEADER_LEN,
};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Reads exactly one frame into `buf` (header + body, replacing previous
/// contents). Returns `Ok(false)` on a clean end-of-stream at a frame
/// boundary, `Ok(true)` when `buf` holds a complete frame.
///
/// The header is validated *before* the body is read, so a corrupt or
/// hostile length field ([`wire::MAX_BODY_LEN`] bound, bad magic, wrong
/// version) is rejected without reading — let alone allocating — the body.
pub(crate) fn read_frame(reader: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, ClientError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = reader.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(wire::WireError::Truncated {
                needed: HEADER_LEN,
                got: filled,
            }
            .into());
        }
        filled += n;
    }
    let parsed = wire::parse_header(&header)?;
    buf.clear();
    buf.extend_from_slice(&header);
    buf.resize(HEADER_LEN + parsed.body_len, 0);
    reader.read_exact(&mut buf[HEADER_LEN..])?;
    Ok(true)
}

/// A blocking request–response client over TCP.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
    in_buf: Vec<u8>,
    out_buf: Vec<u8>,
}

impl TcpClient {
    /// Connects to a service and disables Nagle batching (the protocol is
    /// strict request–response, so delaying small frames only adds
    /// latency).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from establishing the connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpClient {
            stream,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
        })
    }

    /// Writes the frame staged in `out_buf` and reads exactly one
    /// response frame into `in_buf` — the shared exchange of every
    /// request method.
    fn round_trip(&mut self) -> Result<(), ClientError> {
        self.stream.write_all(&self.out_buf)?;
        if !read_frame(&mut self.stream, &mut self.in_buf)? {
            return Err(closed_early().into());
        }
        Ok(())
    }

    /// Executes one encode request over the socket. Results are written
    /// into `reply`, whose buffers are cleared and refilled.
    ///
    /// # Errors
    ///
    /// * [`ClientError::Io`] — the transport failed mid-exchange;
    /// * [`ClientError::Wire`] — the service sent a malformed frame;
    /// * [`ClientError::Remote`] — the service answered with an error
    ///   frame (overload, bad payload, session mismatch, ...);
    /// * [`ClientError::UnexpectedResponse`] — the service answered with
    ///   a frame that is not a response to this request.
    pub fn encode(
        &mut self,
        request: &EncodeRequest<'_>,
        reply: &mut EncodeReply,
    ) -> Result<(), ClientError> {
        self.out_buf.clear();
        request.encode_into(&mut self.out_buf);
        self.round_trip()?;
        match wire::decode_frame(&self.in_buf)?.0 {
            Frame::EncodeResponse(view) => {
                if view.session_id != request.session_id {
                    return Err(ClientError::UnexpectedResponse);
                }
                fill_reply(reply, view.bursts, view.per_group(), view.masks());
                Ok(())
            }
            Frame::Error(view) => Err(remote_error(&view)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Executes one **batched** encode request over the socket: a whole
    /// batch of bursts travels as a single protocol-3 `EncodeBatch` frame
    /// (one header + contiguous payload) where a per-burst loop would
    /// have framed and round-tripped N times. Results land in `reply`
    /// exactly as with [`TcpClient::encode`]; the reused frame buffers
    /// keep the steady-state zero-reallocation guarantee.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::encode`]; a malformed count
    /// field comes back as a remote
    /// [`BadRequest`](crate::wire::ErrorCode::BadRequest).
    pub fn encode_batch(
        &mut self,
        request: &EncodeBatchRequest<'_>,
        reply: &mut EncodeReply,
    ) -> Result<(), ClientError> {
        self.out_buf.clear();
        request.encode_into(&mut self.out_buf);
        self.round_trip()?;
        match wire::decode_frame(&self.in_buf)?.0 {
            Frame::EncodeBatchResponse(view) => {
                if view.session_id != request.session_id || view.count != request.count {
                    return Err(ClientError::UnexpectedResponse);
                }
                fill_reply(reply, view.bursts, view.per_group(), view.masks());
                Ok(())
            }
            Frame::Error(view) => Err(remote_error(&view)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the service's metrics snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::encode`].
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        self.out_buf.clear();
        wire::encode_metrics_request(&mut self.out_buf);
        self.round_trip()?;
        match wire::decode_frame(&self.in_buf)?.0 {
            Frame::MetricsResponse(json) => Ok(json.to_owned()),
            Frame::Error(view) => Err(remote_error(&view)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Drains the service's recent trace events — up to `max_events` per
    /// shard, merged into one timeline ordered by enqueue time (protocol
    /// 4's `TraceDump` frame).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::metrics_json`].
    pub fn trace_dump(&mut self, max_events: u32) -> Result<Vec<TraceEvent>, ClientError> {
        self.out_buf.clear();
        wire::encode_trace_dump_request(&mut self.out_buf, max_events);
        self.round_trip()?;
        match wire::decode_frame(&self.in_buf)?.0 {
            Frame::TraceDumpResponse(view) => Ok(view.events().collect()),
            Frame::Error(view) => Err(remote_error(&view)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetches the service's most recent slow requests (protocol 4's
    /// `SlowlogQuery` frame). Returns the service's capture threshold in
    /// nanoseconds alongside up to `max_entries` captures, newest last.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::metrics_json`].
    pub fn slowlog(&mut self, max_entries: u32) -> Result<(u64, Vec<TraceEvent>), ClientError> {
        self.out_buf.clear();
        wire::encode_slowlog_request(&mut self.out_buf, max_entries);
        self.round_trip()?;
        match wire::decode_frame(&self.in_buf)?.0 {
            Frame::SlowlogResponse(view) => Ok((view.threshold_ns, view.entries().collect())),
            Frame::Error(view) => Err(remote_error(&view)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Asks the service to take a durable snapshot now (protocol 6's
    /// snapshot admin frame): every shard's sessions are captured and
    /// written to the persist directory, and the journals rotate to a
    /// fresh generation. Returns the durability status after the
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::metrics_json`]; additionally
    /// the service answers `BadRequest` when it was started without a
    /// persist directory, and `Internal` when writing the snapshot
    /// failed.
    pub fn trigger_snapshot(&mut self) -> Result<SnapshotStatus, ClientError> {
        self.out_buf.clear();
        wire::encode_snapshot_request(&mut self.out_buf);
        self.admin_round_trip()
    }

    /// Fetches the service's durability status (protocol 6's
    /// snapshot-status admin frame). Always answered — `configured` is
    /// `false` when the service runs without a persist directory.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::metrics_json`].
    pub fn snapshot_status(&mut self) -> Result<SnapshotStatus, ClientError> {
        self.out_buf.clear();
        wire::encode_snapshot_status_request(&mut self.out_buf);
        self.admin_round_trip()
    }

    /// Asks the service to reload session state from its persist
    /// directory (protocol 6's restore admin frame), replacing any live
    /// session that shares an id with a restored one. Returns the
    /// durability status after the restore.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`TcpClient::trigger_snapshot`].
    pub fn restore(&mut self) -> Result<SnapshotStatus, ClientError> {
        self.out_buf.clear();
        wire::encode_restore_request(&mut self.out_buf);
        self.admin_round_trip()
    }

    /// Shared exchange of the three durability admin requests: sends the
    /// staged frame, expects a snapshot-status response.
    fn admin_round_trip(&mut self) -> Result<SnapshotStatus, ClientError> {
        self.round_trip()?;
        match wire::decode_frame(&self.in_buf)?.0 {
            Frame::SnapshotStatus(status) => Ok(status),
            Frame::Error(view) => Err(remote_error(&view)),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

/// One finished pipelined exchange, handed out by
/// [`PipelinedClient::next_completion`] /
/// [`PipelinedClient::try_next_completion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinedCompletion {
    /// The id [`PipelinedClient::submit`] returned for this request.
    pub request_id: u64,
    /// `None` when the request succeeded (the poll call filled its
    /// reply); the service's typed error otherwise.
    pub error: Option<(ErrorCode, String)>,
}

impl PipelinedCompletion {
    /// Whether the request succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Bytes asked of the socket per read while polling for completions.
/// Reads land in a stack scratch buffer and only the received bytes are
/// appended, so the client's receive buffer stays as small as its actual
/// backlog — a soak harness can hold thousands of these clients.
const RECV_CHUNK: usize = 16 * 1024;

/// A pipelined (protocol version 5) client over TCP: submit many, poll
/// completions by request id.
///
/// Responses to different sessions may complete **out of order** — the
/// engine's shards run independently — while responses within one
/// session stay FIFO (sticky sharding orders same-session work). Code
/// must therefore match completions to submissions by
/// [`PipelinedCompletion::request_id`], never by arrival order.
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
    out_buf: Vec<u8>,
    recv_buf: Vec<u8>,
    parsed: usize,
    next_id: u64,
    in_flight: usize,
}

impl PipelinedClient {
    /// Connects to a service and disables Nagle batching (submissions
    /// should hit the wire immediately — pipelining already amortises
    /// the per-frame cost).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from establishing the connection.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(PipelinedClient {
            stream,
            out_buf: Vec::new(),
            recv_buf: Vec::new(),
            parsed: 0,
            next_id: 0,
            in_flight: 0,
        })
    }

    /// Submits one encode request without waiting for its response;
    /// returns the auto-assigned request id its completion will echo.
    ///
    /// The write itself is blocking: if the socket's send buffer is
    /// full (the service applies backpressure by pausing its reads once
    /// this connection has [`ConnConfig::max_in_flight`] requests in
    /// flight), `submit` waits until the frame is fully handed to the
    /// kernel.
    ///
    /// [`ConnConfig::max_in_flight`]: crate::ConnConfig::max_in_flight
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] — the transport failed mid-write.
    pub fn submit(&mut self, request: &EncodeRequest<'_>) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        self.out_buf.clear();
        PipelinedRequestFrame {
            request_id,
            request: *request,
        }
        .encode_into(&mut self.out_buf);
        self.stream.write_all(&self.out_buf)?;
        self.next_id = self.next_id.wrapping_add(1);
        self.in_flight += 1;
        Ok(request_id)
    }

    /// Submits one **batched** encode request without waiting; returns
    /// the auto-assigned request id. Same semantics as
    /// [`PipelinedClient::submit`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] — the transport failed mid-write.
    pub fn submit_batch(&mut self, request: &EncodeBatchRequest<'_>) -> Result<u64, ClientError> {
        let request_id = self.next_id;
        self.out_buf.clear();
        PipelinedBatchRequestFrame {
            request_id,
            request: *request,
        }
        .encode_into(&mut self.out_buf);
        self.stream.write_all(&self.out_buf)?;
        self.next_id = self.next_id.wrapping_add(1);
        self.in_flight += 1;
        Ok(request_id)
    }

    /// How many submitted requests have not yet been completed.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Blocks until the next completion arrives (in the service's order,
    /// which across sessions need not be submission order). On success
    /// `reply` holds the response's results; on a per-request failure
    /// the returned completion carries the typed error and `reply` is
    /// untouched.
    ///
    /// # Errors
    ///
    /// * [`ClientError::Io`] — the transport failed, or the service
    ///   closed the connection with requests still in flight (e.g. a
    ///   slow-consumer drop);
    /// * [`ClientError::Wire`] — the service sent a malformed frame;
    /// * [`ClientError::Remote`] — the service answered with a
    ///   *connection-level* error frame (protocol violation);
    /// * [`ClientError::UnexpectedResponse`] — the service sent a frame
    ///   that is not a pipelined completion.
    pub fn next_completion(
        &mut self,
        reply: &mut EncodeReply,
    ) -> Result<PipelinedCompletion, ClientError> {
        loop {
            if let Some(done) = self.take_buffered(reply)? {
                return Ok(done);
            }
            let mut chunk = [0u8; RECV_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(closed_early().into()),
                Ok(n) => self.recv_buf.extend_from_slice(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err.into()),
            }
        }
    }

    /// [`PipelinedClient::next_completion`] without blocking: drains
    /// whatever the socket has ready and returns `Ok(None)` when no
    /// complete response frame has arrived yet.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PipelinedClient::next_completion`].
    pub fn try_next_completion(
        &mut self,
        reply: &mut EncodeReply,
    ) -> Result<Option<PipelinedCompletion>, ClientError> {
        if let Some(done) = self.take_buffered(reply)? {
            return Ok(Some(done));
        }
        self.stream.set_nonblocking(true)?;
        let drained = self.drain_ready();
        self.stream.set_nonblocking(false)?;
        drained?;
        self.take_buffered(reply)
    }

    /// Reads until the socket would block.
    fn drain_ready(&mut self) -> Result<(), ClientError> {
        let mut chunk = [0u8; RECV_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(closed_early().into()),
                Ok(n) => self.recv_buf.extend_from_slice(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) => return Err(err.into()),
            }
        }
    }

    /// Decodes one completion out of the receive buffer, if a whole
    /// frame is there.
    fn take_buffered(
        &mut self,
        reply: &mut EncodeReply,
    ) -> Result<Option<PipelinedCompletion>, ClientError> {
        let avail = &self.recv_buf[self.parsed..];
        let header = match wire::parse_header(avail) {
            Ok(header) => header,
            Err(wire::WireError::Truncated { .. }) => return Ok(None),
            Err(err) => return Err(err.into()),
        };
        let total = HEADER_LEN + header.body_len;
        if avail.len() < total {
            return Ok(None);
        }
        let completion = match wire::decode_frame(&avail[..total])?.0 {
            Frame::PipelinedResponse {
                request_id,
                response,
            } => {
                fill_reply(
                    reply,
                    response.bursts,
                    response.per_group(),
                    response.masks(),
                );
                PipelinedCompletion {
                    request_id,
                    error: None,
                }
            }
            Frame::PipelinedBatchResponse {
                request_id,
                response,
            } => {
                fill_reply(
                    reply,
                    response.bursts,
                    response.per_group(),
                    response.masks(),
                );
                PipelinedCompletion {
                    request_id,
                    error: None,
                }
            }
            Frame::PipelinedError { request_id, error } => PipelinedCompletion {
                request_id,
                error: Some((error.code, error.message.to_owned())),
            },
            Frame::Error(view) => return Err(remote_error(&view)),
            _ => return Err(ClientError::UnexpectedResponse),
        };
        self.parsed += total;
        if self.parsed == self.recv_buf.len() {
            self.recv_buf.clear();
            self.parsed = 0;
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        Ok(Some(completion))
    }
}

/// Refills a caller-owned reply from a decoded response's record streams,
/// reusing its capacity.
fn fill_reply(
    reply: &mut EncodeReply,
    bursts: u64,
    per_group: impl Iterator<Item = dbi_core::CostBreakdown>,
    masks: impl Iterator<Item = dbi_core::InversionMask>,
) {
    reply.bursts = bursts;
    reply.per_group.clear();
    reply.per_group.extend(per_group);
    reply.masks.clear();
    reply.masks.extend(masks);
}

/// Lifts a decoded error frame into the owned client error.
fn remote_error(view: &wire::ErrorView<'_>) -> ClientError {
    ClientError::Remote {
        code: view.code,
        message: view.message.to_owned(),
    }
}

fn closed_early() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "the service closed the connection before answering",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireError;

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        let mut buf = Vec::new();
        let mut empty: &[u8] = &[];
        assert!(!read_frame(&mut empty, &mut buf).unwrap());

        let mut whole = Vec::new();
        wire::encode_metrics_request(&mut whole);
        let mut cursor: &[u8] = &whole;
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, whole);

        // A stream that dies inside the header is a wire error, not EOF.
        let mut partial: &[u8] = &whole[..3];
        assert!(matches!(
            read_frame(&mut partial, &mut buf),
            Err(ClientError::Wire(WireError::Truncated {
                needed: 8,
                got: 3
            }))
        ));

        // A stream that dies inside the body is a transport error.
        let mut long = Vec::new();
        wire::encode_metrics_response(&mut long, "{\"x\":1}");
        let mut partial: &[u8] = &long[..long.len() - 2];
        assert!(matches!(
            read_frame(&mut partial, &mut buf),
            Err(ClientError::Io(_))
        ));
    }

    #[test]
    fn oversized_header_is_rejected_before_the_body_is_read() {
        let mut frame = Vec::new();
        wire::encode_metrics_request(&mut frame);
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor: &[u8] = &frame;
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            Err(ClientError::Wire(WireError::Oversized { .. }))
        ));
        // The rejected body was never buffered.
        assert!(buf.capacity() < 1024);
    }
}
