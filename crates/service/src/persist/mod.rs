//! The durable session plane: snapshots plus an append-only journal.
//!
//! Every scheme the engine serves is a *memory-based* code — decodability
//! depends on the receiver holding exactly the transmitter's carried
//! [`BusState`]. Worker memory is therefore the only
//! copy of state a restart must not lose. This module keeps a second copy
//! on disk, built from the CRC-guarded session records of
//! [`dbi_core::persist`]:
//!
//! * **Snapshot** (`snapshot.bin`, [`snapshot`]) — a compact engine-wide
//!   capture of every live session, written atomically (temp file +
//!   rename) while each shard is quiesced at a pass boundary.
//! * **Journal** (`journal-<shard>.bin`, [`journal`]) — an append-only
//!   per-shard log written *between* snapshots by the worker itself at
//!   burst boundaries: after every pass, the full carried state of each
//!   session the pass touched. Appends go through a worker-owned buffer
//!   sized once, so the steady-state hot path stays allocation-free.
//!
//! Recovery folds the snapshot first and then the journals, later records
//! winning — the journal always holds state at least as new as the
//! snapshot for any session it mentions (the worker journals every touched
//! pass, and captures happen quiesced at pass boundaries).
//!
//! ## Generations
//!
//! Files carry a monotonically increasing **generation** so recovery can
//! tell which journal belongs with which snapshot. The invariant is
//! *journal generation = snapshot generation + 1*; a snapshot is taken at
//! the journals' current generation and the journals then rotate past it.
//! Recovery accepts journals at the snapshot's generation (the crash
//! window between writing a snapshot and rotating the journals — safe,
//! because in that window every journal record is at least as new as the
//! snapshot) or one above it; anything older is stale and skipped.
//! Engine start self-compacts: the folded recovery state is immediately
//! written as a fresh snapshot and the journals restart empty one
//! generation above it, so stale files never accumulate.

pub mod journal;
pub mod snapshot;

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

use dbi_core::persist::RecordError;
use dbi_core::{BusState, Scheme};

/// Where the engine keeps its durable session state.
///
/// Set [`crate::ServiceConfig::persist`] to `Some(PersistConfig { .. })`
/// to enable the durable session plane; the default is off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding `snapshot.bin` and the per-shard journals.
    /// Created (with parents) on engine start if absent.
    pub dir: PathBuf,
}

/// A failure to read or write durable session state.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// A file header names a magic this plane does not write.
    BadMagic([u8; 4]),
    /// A file header names a format version this build does not read.
    UnsupportedVersion(u8),
    /// A file header fails its own CRC — torn or corrupted at rest.
    BadHeaderCrc {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the header bytes.
        computed: u32,
    },
    /// The file ends before its fixed structure does.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A session record inside the file is malformed.
    Record(RecordError),
    /// A snapshot's record count disagrees with its contents.
    CountMismatch {
        /// Records the header announced.
        expected: u32,
        /// Records actually parsed.
        got: u32,
    },
    /// A snapshot carries bytes beyond its last announced record.
    TrailingBytes(usize),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "persistence i/o error: {err}"),
            PersistError::BadMagic(bytes) => write!(
                f,
                "bad file magic {:02x}{:02x}{:02x}{:02x}",
                bytes[0], bytes[1], bytes[2], bytes[3]
            ),
            PersistError::UnsupportedVersion(version) => {
                write!(f, "file format version {version} is not supported")
            }
            PersistError::BadHeaderCrc { stored, computed } => write!(
                f,
                "file header CRC mismatch: stored {stored:08x}, computed {computed:08x}"
            ),
            PersistError::Truncated { needed, got } => {
                write!(f, "file truncated: needs {needed} bytes, got {got}")
            }
            PersistError::Record(err) => write!(f, "bad session record: {err}"),
            PersistError::CountMismatch { expected, got } => {
                write!(f, "snapshot announces {expected} records but holds {got}")
            }
            PersistError::TrailingBytes(extra) => {
                write!(f, "snapshot carries {extra} bytes past its last record")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(err) => Some(err),
            PersistError::Record(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(err: io::Error) -> Self {
        PersistError::Io(err)
    }
}

impl From<RecordError> for PersistError {
    fn from(err: RecordError) -> Self {
        PersistError::Record(err)
    }
}

/// One session's full carried state as recovered from disk: everything a
/// worker needs to rebuild the live [`dbi_mem::BusSession`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredSession {
    /// The client-chosen session id.
    pub session_id: u64,
    /// The scheme the session encodes with.
    pub scheme: Scheme,
    /// Lane groups (one carried state per group).
    pub groups: u16,
    /// Burst length in beats.
    pub burst_len: u8,
    /// The carried per-group bus states, in group order.
    pub states: Vec<BusState>,
}

/// Shared durability bookkeeping, stamped into the metrics snapshot and
/// served over the v6 admin frames.
#[derive(Debug)]
pub(crate) struct PersistPlane {
    /// Directory holding the snapshot and journals.
    pub dir: PathBuf,
    /// Current journal generation (the snapshot on disk is one behind).
    pub generation: AtomicU64,
    /// Snapshots written since engine start (including the start-time
    /// self-compaction snapshot).
    pub snapshots_taken: AtomicU64,
    /// Sessions captured by the most recent snapshot.
    pub last_sessions: AtomicU64,
    /// Bytes of the most recent snapshot file.
    pub last_bytes: AtomicU64,
    /// Sessions recovered from disk at engine start.
    pub restored_sessions: AtomicU64,
    /// Serialises snapshot/restore admin operations.
    pub ops: Mutex<()>,
}

/// Everything recovery found on disk, folded to one entry per session.
#[derive(Debug)]
pub(crate) struct LoadedState {
    /// Generation the *journals* should continue at (max accepted
    /// generation seen on disk; 0 on a cold start).
    pub generation: u64,
    /// One entry per session, journal state winning over snapshot state,
    /// sorted by session id for determinism.
    pub sessions: Vec<RestoredSession>,
    /// Journal bytes dropped as torn tails during replay. Diagnostic:
    /// recovery deliberately discards torn tails (the records were never
    /// acknowledged), so outside the replay tests nothing consumes it.
    #[allow(dead_code)]
    pub dropped_bytes: u64,
}

/// Reads and folds the snapshot plus every acceptable journal under
/// `dir`. Missing files are a cold start, not an error; torn journal
/// tails are skipped (counted in `dropped_bytes`); structural corruption
/// of a snapshot or a journal header is a typed refusal — recovery never
/// silently invents state.
pub(crate) fn load_state(dir: &std::path::Path) -> Result<LoadedState, PersistError> {
    let mut folded: HashMap<u64, RestoredSession> = HashMap::new();
    let mut dropped_bytes = 0u64;

    let snapshot = snapshot::read_snapshot(dir)?;
    let snapshot_generation = snapshot.as_ref().map_or(0, |snap| snap.generation);
    if let Some(snap) = snapshot {
        for session in snap.sessions {
            folded.insert(session.session_id, session);
        }
    }

    // Journals at the snapshot's generation or one above are live; older
    // ones are leftovers of a previous epoch whose state the snapshot
    // already holds. Journal records win over snapshot records: the
    // worker journals every touched pass, so for any session the journal
    // mentions its last record is at least as new as the capture.
    let mut generation = snapshot_generation;
    for path in journal::journal_files(dir)? {
        let Some(replay) = journal::replay_journal(&path)? else {
            continue;
        };
        if replay.generation != snapshot_generation && replay.generation != snapshot_generation + 1
        {
            continue;
        }
        generation = generation.max(replay.generation);
        dropped_bytes += replay.dropped_bytes;
        for session in replay.records {
            folded.insert(session.session_id, session);
        }
    }

    let mut sessions: Vec<RestoredSession> = folded.into_values().collect();
    sessions.sort_by_key(|session| session.session_id);
    Ok(LoadedState {
        generation,
        sessions,
        dropped_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::persist::push_session_record;
    use dbi_core::LaneWord;

    fn state(raw: u16) -> BusState {
        BusState::new(LaneWord::new(raw).unwrap())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dbi-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cold_start_is_empty_not_an_error() {
        let dir = temp_dir("cold");
        let loaded = load_state(&dir).unwrap();
        assert_eq!(loaded.generation, 0);
        assert!(loaded.sessions.is_empty());
        assert_eq!(loaded.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_records_win_over_snapshot_records() {
        let dir = temp_dir("fold");
        // Snapshot at generation 3 holds session 1 in one state…
        let mut records = Vec::new();
        push_session_record(&mut records, 1, Scheme::OptFixed, 8, &[state(0x100)]);
        push_session_record(&mut records, 2, Scheme::Dc, 8, &[state(0x0FF)]);
        snapshot::write_snapshot(&dir, 3, 2, &records).unwrap();
        // …and the generation-4 journal moves it on.
        let mut writer = journal::JournalWriter::create(journal::journal_path(&dir, 0), 4).unwrap();
        writer.append_session(1, Scheme::OptFixed, 8, &[state(0x055)]);
        writer.flush().unwrap();

        let loaded = load_state(&dir).unwrap();
        assert_eq!(loaded.generation, 4);
        assert_eq!(loaded.sessions.len(), 2);
        assert_eq!(loaded.sessions[0].session_id, 1);
        assert_eq!(loaded.sessions[0].states, vec![state(0x055)]);
        assert_eq!(loaded.sessions[1].session_id, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_journals_are_skipped() {
        let dir = temp_dir("stale");
        let mut records = Vec::new();
        push_session_record(&mut records, 7, Scheme::Ac, 8, &[state(0x1FF)]);
        snapshot::write_snapshot(&dir, 5, 1, &records).unwrap();
        // Generation 2 predates the snapshot: its state is already folded
        // into it (or superseded), so replay must ignore the file.
        let mut writer = journal::JournalWriter::create(journal::journal_path(&dir, 0), 2).unwrap();
        writer.append_session(7, Scheme::Ac, 8, &[state(0x000)]);
        writer.append_session(9, Scheme::Ac, 8, &[state(0x001)]);
        writer.flush().unwrap();

        let loaded = load_state(&dir).unwrap();
        assert_eq!(loaded.generation, 5);
        assert_eq!(loaded.sessions.len(), 1);
        assert_eq!(loaded.sessions[0].states, vec![state(0x1FF)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
