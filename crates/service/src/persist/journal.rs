//! The append-only per-shard session journal.
//!
//! Each shard worker owns one journal file, `journal-<shard>.bin`:
//!
//! ```text
//!  0        4     5      6            14       18
//! +--------+-----+------+------------+--------+------------------ - - -
//! | "DBJL" | ver | rsvd | generation | crc32  | records, appended…
//! |        | u8  | u8   | u64 LE     | u32 LE |
//! +--------+-----+------+------------+--------+------------------ - - -
//! ```
//!
//! The header CRC covers bytes `0..14`. After the header come CRC-guarded
//! session records ([`dbi_core::persist`]), appended by the worker at
//! every pass boundary for each session the pass touched — full carried
//! state, not deltas, so replay needs only the *last* record per session.
//!
//! The writer buffers records in a worker-owned `Vec` and flushes once
//! per pass with a single `write_all`, so the steady-state encode path
//! performs no heap allocation for journaling (the buffer is sized by the
//! first passes and then reused).
//!
//! Replay is **lenient at the tail**, strict everywhere else: a process
//! killed mid-append leaves a torn final record, which replay skips
//! cleanly (counting the dropped bytes); but a corrupt header or a bad
//! record *followed by more bytes than a torn tail could explain* is
//! still just the torn-tail rule — append-only files only ever tear at
//! the end, so replay stops at the first unparseable record and reports
//! everything after it as dropped.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use dbi_core::persist::{crc32, parse_session_record, push_session_record, RecordError};
use dbi_core::{BusState, Scheme};

use super::{PersistError, RestoredSession};

/// Journal file magic, ASCII `"DBJL"`.
pub const JOURNAL_MAGIC: [u8; 4] = *b"DBJL";

/// The journal format version this build writes and reads.
pub const JOURNAL_VERSION: u8 = 1;

/// Fixed journal header length (magic, version, reserved, generation,
/// header CRC).
pub const JOURNAL_HEAD_LEN: usize = 18;

/// The journal file path for `shard` under `dir`.
#[must_use]
pub fn journal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("journal-{shard}.bin"))
}

/// Every `journal-*.bin` under `dir`, sorted by name for deterministic
/// replay order.
pub fn journal_files(dir: &Path) -> Result<Vec<PathBuf>, PersistError> {
    let mut files = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(files),
        Err(err) => return Err(err.into()),
    };
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|name| name.to_str()) else {
            continue;
        };
        if name.starts_with("journal-") && name.ends_with(".bin") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Serialises a journal header for `generation`. Exposed for the format
/// tests and the drift check.
#[must_use]
pub fn encode_journal_header(generation: u64) -> [u8; JOURNAL_HEAD_LEN] {
    let mut head = [0u8; JOURNAL_HEAD_LEN];
    head[..4].copy_from_slice(&JOURNAL_MAGIC);
    head[4] = JOURNAL_VERSION;
    head[5] = 0; // reserved
    head[6..14].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&head[..14]);
    head[14..18].copy_from_slice(&crc.to_le_bytes());
    head
}

/// A worker-owned buffered journal writer.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: fs::File,
    buf: Vec<u8>,
    generation: u64,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` and writes a fresh
    /// header for `generation`.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the file or writing the header.
    pub fn create(path: PathBuf, generation: u64) -> Result<Self, PersistError> {
        let mut file = fs::File::create(&path)?;
        file.write_all(&encode_journal_header(generation))?;
        Ok(JournalWriter {
            path,
            file,
            buf: Vec::new(),
            generation,
        })
    }

    /// The generation the journal is currently writing.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Buffers one session record. Appends into the reused buffer — once
    /// the buffer has grown to a pass's working size this allocates
    /// nothing.
    pub fn append_session(
        &mut self,
        session_id: u64,
        scheme: Scheme,
        burst_len: u8,
        states: &[BusState],
    ) {
        push_session_record(&mut self.buf, session_id, scheme, burst_len, states);
    }

    /// Bytes currently buffered and not yet flushed.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Writes the buffered records with one `write_all` and clears the
    /// buffer (keeping its capacity). Returns the bytes written.
    ///
    /// # Errors
    ///
    /// The underlying write failure; the buffer is cleared regardless, so
    /// a transiently failing disk degrades durability, not the encode
    /// path.
    pub fn flush(&mut self) -> Result<usize, PersistError> {
        if self.buf.is_empty() {
            return Ok(0);
        }
        let len = self.buf.len();
        let result = self.file.write_all(&self.buf);
        self.buf.clear();
        result?;
        Ok(len)
    }

    /// Starts a new generation: truncates the file and writes a fresh
    /// header. Buffered-but-unflushed records are dropped — the caller
    /// snapshots (capturing that state) before rotating.
    ///
    /// # Errors
    ///
    /// Any I/O failure recreating the file.
    pub fn rotate(&mut self, generation: u64) -> Result<(), PersistError> {
        self.buf.clear();
        let mut file = fs::File::create(&self.path)?;
        file.write_all(&encode_journal_header(generation))?;
        self.file = file;
        self.generation = generation;
        Ok(())
    }
}

/// The result of replaying one journal file.
#[derive(Debug)]
pub struct JournalReplay {
    /// The generation the journal was written at.
    pub generation: u64,
    /// Every parsed record, in append order (a session may appear many
    /// times; the last occurrence is its newest state).
    pub records: Vec<RestoredSession>,
    /// Bytes dropped at the tail as a torn partial record.
    pub dropped_bytes: u64,
}

/// Replays a journal file. `Ok(None)` when the file is missing or too
/// short to hold a complete header (a journal that never got its header
/// out is an empty journal). A corrupt header — bad magic, unknown
/// version, CRC mismatch — is a typed error. Records then replay until
/// the first malformation; everything from that point is a torn tail,
/// skipped and counted in [`JournalReplay::dropped_bytes`].
pub fn replay_journal(path: &Path) -> Result<Option<JournalReplay>, PersistError> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    if bytes.len() < JOURNAL_HEAD_LEN {
        return Ok(None);
    }
    if bytes[..4] != JOURNAL_MAGIC {
        return Err(PersistError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    if bytes[4] != JOURNAL_VERSION {
        return Err(PersistError::UnsupportedVersion(bytes[4]));
    }
    let stored = u32::from_le_bytes(bytes[14..18].try_into().expect("checked length"));
    let computed = crc32(&bytes[..14]);
    if stored != computed {
        return Err(PersistError::BadHeaderCrc { stored, computed });
    }
    let generation = u64::from_le_bytes(bytes[6..14].try_into().expect("checked length"));

    let mut records = Vec::new();
    let mut offset = JOURNAL_HEAD_LEN;
    while offset < bytes.len() {
        match parse_session_record(&bytes[offset..]) {
            Ok((view, consumed)) => {
                records.push(RestoredSession {
                    session_id: view.session_id,
                    scheme: view.scheme,
                    groups: view.group_count() as u16,
                    burst_len: view.burst_len,
                    states: view.states().collect(),
                });
                offset += consumed;
            }
            // Append-only files tear only at the tail: the first record
            // that does not parse marks the kill point, and whatever
            // follows it is the torn write.
            Err(RecordError::Truncated { .. }) | Err(_) => break,
        }
    }
    Ok(Some(JournalReplay {
        generation,
        records,
        dropped_bytes: (bytes.len() - offset) as u64,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::LaneWord;

    fn state(raw: u16) -> BusState {
        BusState::new(LaneWord::new(raw).unwrap())
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dbi-journal-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn journal_round_trips_and_rotates() {
        let path = temp_path("roundtrip");
        let mut writer = JournalWriter::create(path.clone(), 4).unwrap();
        assert_eq!(writer.generation(), 4);
        writer.append_session(1, Scheme::OptFixed, 8, &[state(0x0AA), state(0x155)]);
        writer.append_session(1, Scheme::OptFixed, 8, &[state(0x0AB), state(0x156)]);
        writer.append_session(2, Scheme::Dc, 4, &[state(0x001)]);
        assert!(writer.pending() > 0);
        let written = writer.flush().unwrap();
        assert!(written > 0);
        assert_eq!(writer.pending(), 0);
        assert_eq!(writer.flush().unwrap(), 0, "empty flush writes nothing");

        let replay = replay_journal(&path).unwrap().unwrap();
        assert_eq!(replay.generation, 4);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.records[1].states, vec![state(0x0AB), state(0x156)]);

        // Rotation truncates: the old records are gone, the new
        // generation is in the header.
        writer.rotate(5).unwrap();
        writer.append_session(3, Scheme::Ac, 8, &[state(0x111)]);
        writer.flush().unwrap();
        let replay = replay_journal(&path).unwrap().unwrap();
        assert_eq!(replay.generation, 5);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].session_id, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_cleanly() {
        let path = temp_path("torn");
        let mut writer = JournalWriter::create(path.clone(), 1).unwrap();
        writer.append_session(1, Scheme::OptFixed, 8, &[state(0x0AA)]);
        writer.append_session(2, Scheme::OptFixed, 8, &[state(0x0BB)]);
        writer.flush().unwrap();
        drop(writer);

        let full = fs::read(&path).unwrap();
        // Kill the file at every byte of the final record: the first
        // record must survive, the torn tail must be counted, and replay
        // must never error or panic.
        let second_record_at = {
            let body = &full[JOURNAL_HEAD_LEN..];
            let (_, consumed) = parse_session_record(body).unwrap();
            JOURNAL_HEAD_LEN + consumed
        };
        for kill in second_record_at..full.len() {
            fs::write(&path, &full[..kill]).unwrap();
            let replay = replay_journal(&path).unwrap().unwrap();
            assert_eq!(replay.records.len(), 1, "kill at {kill}");
            assert_eq!(replay.dropped_bytes as usize, kill - second_record_at);
        }

        // A header that never finished writing is an empty journal.
        for kill in 0..JOURNAL_HEAD_LEN {
            fs::write(&path, &full[..kill]).unwrap();
            assert!(replay_journal(&path).unwrap().is_none(), "kill at {kill}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_headers_are_typed_errors() {
        let path = temp_path("header");
        let mut writer = JournalWriter::create(path.clone(), 1).unwrap();
        writer.append_session(1, Scheme::OptFixed, 8, &[state(0x0AA)]);
        writer.flush().unwrap();
        drop(writer);
        let full = fs::read(&path).unwrap();

        let mut bad_magic = full.clone();
        bad_magic[0] = b'X';
        fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            replay_journal(&path),
            Err(PersistError::BadMagic(_))
        ));

        let mut bad_version = full.clone();
        bad_version[4] = 9;
        fs::write(&path, &bad_version).unwrap();
        assert!(matches!(
            replay_journal(&path),
            Err(PersistError::UnsupportedVersion(9))
        ));

        let mut bad_crc = full.clone();
        bad_crc[6] ^= 1;
        fs::write(&path, &bad_crc).unwrap();
        assert!(matches!(
            replay_journal(&path),
            Err(PersistError::BadHeaderCrc { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_and_missing_dir_replay_as_empty() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(replay_journal(&path).unwrap().is_none());
        let ghost_dir =
            std::env::temp_dir().join(format!("dbi-journal-ghost-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&ghost_dir);
        assert!(journal_files(&ghost_dir).unwrap().is_empty());
    }
}
