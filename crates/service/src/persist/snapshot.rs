//! Engine-wide session snapshots.
//!
//! One file, `snapshot.bin`, holding every live session as a CRC-guarded
//! record ([`dbi_core::persist`]), behind a CRC-guarded file header:
//!
//! ```text
//!  0        4     5      6            14       18      22
//! +--------+-----+------+------------+--------+--------+----- - - -
//! | "DBSN" | ver | rsvd | generation | count  | crc32  | records…
//! |        | u8  | u8   | u64 LE     | u32 LE | u32 LE |
//! +--------+-----+------+------------+--------+--------+----- - - -
//! ```
//!
//! The header CRC covers bytes `0..18` (everything before itself); each
//! record carries its own body CRC. Snapshots are written to a temp file
//! and renamed into place, so a reader only ever sees a complete file —
//! and the reader is **strict**: any malformation is a typed
//! [`PersistError`], because a snapshot that cannot be trusted byte for
//! byte must not seed bus state.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use dbi_core::persist::{crc32, parse_session_record};

use super::{PersistError, RestoredSession};

/// Snapshot file magic, ASCII `"DBSN"`.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DBSN";

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Fixed snapshot header length (magic, version, reserved, generation,
/// record count, header CRC).
pub const SNAPSHOT_HEAD_LEN: usize = 22;

/// The snapshot's file name inside the persist directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The snapshot file path under `dir`.
#[must_use]
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// A fully parsed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The generation the snapshot was taken at.
    pub generation: u64,
    /// Every captured session, in file order.
    pub sessions: Vec<RestoredSession>,
}

/// Serialises a snapshot header followed by `record_bytes` (which must be
/// exactly `record_count` back-to-back session records). Exposed so the
/// format tests and the drift check can build images without touching
/// disk.
#[must_use]
pub fn encode_snapshot(generation: u64, record_count: u32, record_bytes: &[u8]) -> Vec<u8> {
    let mut image = Vec::with_capacity(SNAPSHOT_HEAD_LEN + record_bytes.len());
    image.extend_from_slice(&SNAPSHOT_MAGIC);
    image.push(SNAPSHOT_VERSION);
    image.push(0); // reserved
    image.extend_from_slice(&generation.to_le_bytes());
    image.extend_from_slice(&record_count.to_le_bytes());
    let crc = crc32(&image);
    image.extend_from_slice(&crc.to_le_bytes());
    image.extend_from_slice(record_bytes);
    image
}

/// Writes the snapshot atomically: temp file in the same directory, then
/// rename over [`SNAPSHOT_FILE`]. Returns the file's size in bytes.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing or renaming the file.
pub fn write_snapshot(
    dir: &Path,
    generation: u64,
    record_count: u32,
    record_bytes: &[u8],
) -> Result<u64, PersistError> {
    let image = encode_snapshot(generation, record_count, record_bytes);
    let tmp = dir.join("snapshot.bin.tmp");
    let mut file = fs::File::create(&tmp)?;
    file.write_all(&image)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, snapshot_path(dir))?;
    Ok(image.len() as u64)
}

/// Parses a snapshot image. Strict: every truncation point, corrupt
/// magic/version/CRC, count mismatch or trailing garbage is a typed
/// error, never a panic.
pub fn parse_snapshot(bytes: &[u8]) -> Result<Snapshot, PersistError> {
    if bytes.len() < SNAPSHOT_HEAD_LEN {
        return Err(PersistError::Truncated {
            needed: SNAPSHOT_HEAD_LEN,
            got: bytes.len(),
        });
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic([
            bytes[0], bytes[1], bytes[2], bytes[3],
        ]));
    }
    if bytes[4] != SNAPSHOT_VERSION {
        return Err(PersistError::UnsupportedVersion(bytes[4]));
    }
    let stored = u32::from_le_bytes(bytes[18..22].try_into().expect("checked length"));
    let computed = crc32(&bytes[..18]);
    if stored != computed {
        return Err(PersistError::BadHeaderCrc { stored, computed });
    }
    let generation = u64::from_le_bytes(bytes[6..14].try_into().expect("checked length"));
    let expected = u32::from_le_bytes(bytes[14..18].try_into().expect("checked length"));

    let mut sessions = Vec::with_capacity(expected as usize);
    let mut offset = SNAPSHOT_HEAD_LEN;
    while sessions.len() < expected as usize {
        let (view, consumed) = parse_session_record(&bytes[offset..]).map_err(|err| {
            // A record torn at the end of the file reads as overall
            // truncation; anything else is record-level corruption.
            if let dbi_core::persist::RecordError::Truncated { needed, .. } = err {
                PersistError::Truncated {
                    needed: offset + needed,
                    got: bytes.len(),
                }
            } else {
                PersistError::Record(err)
            }
        })?;
        sessions.push(RestoredSession {
            session_id: view.session_id,
            scheme: view.scheme,
            groups: view.group_count() as u16,
            burst_len: view.burst_len,
            states: view.states().collect(),
        });
        offset += consumed;
    }
    if offset != bytes.len() {
        return Err(PersistError::TrailingBytes(bytes.len() - offset));
    }
    Ok(Snapshot {
        generation,
        sessions,
    })
}

/// Reads and parses `dir`'s snapshot. `Ok(None)` when no snapshot exists
/// (a cold start); strict typed errors for anything unreadable.
pub fn read_snapshot(dir: &Path) -> Result<Option<Snapshot>, PersistError> {
    let bytes = match fs::read(snapshot_path(dir)) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(err.into()),
    };
    parse_snapshot(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi_core::persist::push_session_record;
    use dbi_core::{BusState, LaneWord, Scheme};

    fn sample_records() -> (u32, Vec<u8>) {
        let mut bytes = Vec::new();
        let states = [
            BusState::idle(),
            BusState::new(LaneWord::new(0x123).unwrap()),
        ];
        push_session_record(&mut bytes, 10, Scheme::OptFixed, 8, &states);
        push_session_record(&mut bytes, 11, Scheme::Dc, 4, &states[..1]);
        (2, bytes)
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("dbi-snap-roundtrip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (count, records) = sample_records();
        let written = write_snapshot(&dir, 9, count, &records).unwrap();
        assert_eq!(written as usize, SNAPSHOT_HEAD_LEN + records.len());
        let snap = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.generation, 9);
        assert_eq!(snap.sessions.len(), 2);
        assert_eq!(snap.sessions[0].session_id, 10);
        assert_eq!(snap.sessions[0].groups, 2);
        assert_eq!(snap.sessions[1].burst_len, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strict_reader_refuses_malformed_images() {
        let (count, records) = sample_records();
        let pristine = encode_snapshot(3, count, &records);
        assert!(parse_snapshot(&pristine).is_ok());

        for len in 0..pristine.len() {
            assert!(
                matches!(
                    parse_snapshot(&pristine[..len]),
                    Err(PersistError::Truncated { .. })
                ),
                "truncation at {len} was not typed"
            );
        }

        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'Z';
        assert!(matches!(
            parse_snapshot(&bad_magic),
            Err(PersistError::BadMagic(_))
        ));

        let mut bad_version = pristine.clone();
        bad_version[4] = 7;
        assert!(matches!(
            parse_snapshot(&bad_version),
            Err(PersistError::UnsupportedVersion(7))
        ));

        let mut bad_crc = pristine.clone();
        bad_crc[6] ^= 1; // generation byte: covered by the header CRC
        assert!(matches!(
            parse_snapshot(&bad_crc),
            Err(PersistError::BadHeaderCrc { .. })
        ));

        let mut trailing = pristine.clone();
        trailing.push(0xEE);
        assert!(matches!(
            parse_snapshot(&trailing),
            Err(PersistError::TrailingBytes(1))
        ));

        // Corrupting a record body is caught by the record CRC, reported
        // as a record-level error.
        let mut bad_record = pristine.clone();
        let last = bad_record.len() - 1;
        bad_record[last] ^= 0xFF;
        assert!(matches!(
            parse_snapshot(&bad_record),
            Err(PersistError::Record(_))
        ));
    }
}
