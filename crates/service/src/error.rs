//! Error types of the encode service.
//!
//! Two layers of failure exist and are kept apart deliberately:
//!
//! * [`ServiceError`] — the engine refused or failed a request
//!   (overload, bad geometry, session mismatch, ...). These map one-to-one
//!   onto wire [`ErrorCode`]s so a TCP client sees
//!   the same taxonomy an in-process caller does.
//! * [`ClientError`] — everything that can go wrong *talking to* the
//!   service over a socket: transport failures, malformed frames, or a
//!   remote [`ServiceError`] relayed as an error frame.

use crate::wire::{ErrorCode, WireError};
use core::fmt;
use std::io;

/// An error produced by the service engine while admitting or executing a
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The target shard's bounded queue was full — explicit backpressure.
    /// The request was not executed; retrying later is safe.
    Overloaded {
        /// Index of the shard that rejected the request.
        shard: usize,
    },
    /// The engine is shutting down and no longer admits requests.
    ShuttingDown,
    /// The requested channel geometry is outside the supported range
    /// (groups ≥ 1, 1 ≤ burst length ≤ 32).
    BadGeometry {
        /// Requested number of lane groups.
        groups: u16,
        /// Requested burst length in beats.
        burst_len: u8,
    },
    /// The payload is empty or not a whole number of accesses.
    BadPayload {
        /// Bytes supplied by the caller.
        got: usize,
        /// Required access granularity (groups × burst length).
        expected_multiple: usize,
    },
    /// The payload exceeds the engine's configured per-request limit.
    PayloadTooLarge {
        /// Bytes supplied by the caller.
        got: usize,
        /// Configured maximum.
        max: usize,
    },
    /// An explicit cost model was supplied for a scheme that takes no
    /// cost coefficients (only `Opt`, `OptFixed` and `Greedy` do).
    BadCostModel {
        /// Display name of the scheme that cannot be re-weighted.
        scheme: String,
    },
    /// A batch request's burst-count field is zero or disagrees with its
    /// payload (protocol 3 `EncodeBatch`).
    BadBatchCount {
        /// The count field supplied by the caller.
        count: u16,
        /// Bursts the payload actually holds.
        got: u64,
    },
    /// A verify-mode request's output failed to decode back to its input:
    /// the engine found an encode/decode asymmetry instead of silently
    /// returning the result. The session's carried state includes the
    /// failed request's bursts (the wires were, notionally, driven).
    VerifyMismatch {
        /// The session whose round trip failed.
        session_id: u64,
        /// First payload byte offset that decoded differently, or `None`
        /// when the payload matched but the receiver-side wire activity
        /// or a carried lane state diverged.
        byte_offset: Option<u64>,
    },
    /// A session id was reused with a different scheme or geometry than
    /// the one that created it. Reset the session first.
    SessionMismatch {
        /// The session id whose configuration did not match.
        session_id: u64,
    },
    /// The target shard already holds its configured maximum number of
    /// sessions, every one of them was touched by the pass in flight, and
    /// so none can be evicted to make room — the bound that stops a peer
    /// cycling through fresh session ids from exhausting memory. Idle
    /// sessions are evicted instead of rejected, so this is transient.
    SessionLimit {
        /// Index of the shard that is full.
        shard: usize,
    },
    /// A durability admin operation (snapshot, restore) was requested but
    /// the engine was started without a persist directory configured.
    PersistenceDisabled,
    /// A durability operation failed against the persist directory.
    Persistence {
        /// Human-readable description of the underlying failure.
        detail: String,
    },
    /// An invariant the engine relies on was violated; indicates a bug.
    Internal(&'static str),
}

impl ServiceError {
    /// The wire error code this error is transported as.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            ServiceError::Overloaded { .. } => ErrorCode::Overloaded,
            ServiceError::ShuttingDown => ErrorCode::ShuttingDown,
            ServiceError::BadGeometry { .. } => ErrorCode::BadGeometry,
            ServiceError::BadPayload { .. } | ServiceError::PayloadTooLarge { .. } => {
                ErrorCode::BadPayload
            }
            ServiceError::BadCostModel { .. } => ErrorCode::BadCostModel,
            ServiceError::BadBatchCount { .. } => ErrorCode::BadRequest,
            ServiceError::VerifyMismatch { .. } => ErrorCode::VerifyMismatch,
            ServiceError::SessionMismatch { .. } => ErrorCode::SessionMismatch,
            // Typed as its own code since protocol v6. Peers negotiated
            // below v6 receive Overloaded instead (the encoder applies
            // [`ErrorCode::downgrade_for`]): their remedy — back off,
            // spread over fewer sessions — is the same.
            ServiceError::SessionLimit { .. } => ErrorCode::SessionLimit,
            ServiceError::PersistenceDisabled => ErrorCode::BadRequest,
            ServiceError::Persistence { .. } => ErrorCode::Internal,
            ServiceError::Internal(_) => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { shard } => {
                write!(f, "shard {shard} queue is full, request rejected")
            }
            ServiceError::ShuttingDown => write!(f, "the service is shutting down"),
            ServiceError::BadGeometry { groups, burst_len } => write!(
                f,
                "geometry {groups} groups x burst length {burst_len} is outside the supported range"
            ),
            ServiceError::BadPayload {
                got,
                expected_multiple,
            } => write!(
                f,
                "payload of {got} bytes is not a positive multiple of the {expected_multiple}-byte access size"
            ),
            ServiceError::PayloadTooLarge { got, max } => {
                write!(f, "payload of {got} bytes exceeds the {max}-byte limit")
            }
            ServiceError::BadCostModel { scheme } => write!(
                f,
                "scheme {scheme} takes no cost coefficients; use an Opt or Greedy scheme \
                 with an explicit cost model"
            ),
            ServiceError::BadBatchCount { count, got } => write!(
                f,
                "batch count field of {count} disagrees with the {got} bursts in the payload"
            ),
            ServiceError::VerifyMismatch {
                session_id,
                byte_offset,
            } => match byte_offset {
                Some(offset) => write!(
                    f,
                    "verify failed for session {session_id}: decoded output first \
                     diverges from the payload at byte {offset}"
                ),
                None => write!(
                    f,
                    "verify failed for session {session_id}: receiver-side activity \
                     or carried lane state diverged from the transmitter's"
                ),
            },
            ServiceError::SessionMismatch { session_id } => write!(
                f,
                "session {session_id} already exists with a different scheme or geometry"
            ),
            ServiceError::SessionLimit { shard } => write!(
                f,
                "shard {shard} is at its session limit, new session rejected"
            ),
            ServiceError::PersistenceDisabled => write!(
                f,
                "durability is not configured; start the engine with a persist directory"
            ),
            ServiceError::Persistence { detail } => {
                write!(f, "durability operation failed: {detail}")
            }
            ServiceError::Internal(what) => write!(f, "internal service error: {what}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// An error observed by a client while talking to the service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, read or write).
    Io(io::Error),
    /// A frame received from the peer could not be decoded.
    Wire(WireError),
    /// The service answered with an error frame.
    Remote {
        /// The typed error code from the frame.
        code: ErrorCode,
        /// The human-readable detail message from the frame.
        message: String,
    },
    /// The service answered with a frame of the wrong type for the request.
    UnexpectedResponse,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Wire(err) => write!(f, "protocol error: {err}"),
            ClientError::Remote { code, message } => {
                write!(f, "service error {code:?}: {message}")
            }
            ClientError::UnexpectedResponse => {
                write!(f, "the service answered with an unexpected frame type")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            ClientError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_errors_map_to_wire_codes() {
        let cases = [
            (ServiceError::Overloaded { shard: 3 }, ErrorCode::Overloaded),
            (ServiceError::ShuttingDown, ErrorCode::ShuttingDown),
            (
                ServiceError::BadGeometry {
                    groups: 0,
                    burst_len: 8,
                },
                ErrorCode::BadGeometry,
            ),
            (
                ServiceError::BadPayload {
                    got: 5,
                    expected_multiple: 32,
                },
                ErrorCode::BadPayload,
            ),
            (
                ServiceError::PayloadTooLarge { got: 9, max: 4 },
                ErrorCode::BadPayload,
            ),
            (
                ServiceError::BadCostModel {
                    scheme: "RAW".to_owned(),
                },
                ErrorCode::BadCostModel,
            ),
            (
                ServiceError::BadBatchCount { count: 3, got: 4 },
                ErrorCode::BadRequest,
            ),
            (
                ServiceError::VerifyMismatch {
                    session_id: 4,
                    byte_offset: Some(17),
                },
                ErrorCode::VerifyMismatch,
            ),
            (
                ServiceError::VerifyMismatch {
                    session_id: 4,
                    byte_offset: None,
                },
                ErrorCode::VerifyMismatch,
            ),
            (
                ServiceError::SessionMismatch { session_id: 1 },
                ErrorCode::SessionMismatch,
            ),
            (
                ServiceError::SessionLimit { shard: 2 },
                ErrorCode::SessionLimit,
            ),
            (ServiceError::PersistenceDisabled, ErrorCode::BadRequest),
            (
                ServiceError::Persistence {
                    detail: "disk on fire".to_owned(),
                },
                ErrorCode::Internal,
            ),
            (ServiceError::Internal("x"), ErrorCode::Internal),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code);
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("geometry"));
        }
    }

    #[test]
    fn client_error_displays_and_sources() {
        use std::error::Error;
        let io_err: ClientError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
        assert!(io_err.source().is_some());
        let remote = ClientError::Remote {
            code: ErrorCode::Overloaded,
            message: "busy".to_owned(),
        };
        assert!(remote.to_string().contains("busy"));
        assert!(remote.source().is_none());
    }
}
