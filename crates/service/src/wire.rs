//! The binary wire protocol of the encode service.
//!
//! Every message is one length-prefixed **frame**:
//!
//! ```text
//!  0      2      3      4            8
//! +------+------+------+------------+----------------- - - -
//! | "DB" | ver  | type | body_len   | body (body_len bytes)
//! | u16  | u8   | u8   | u32 LE     |
//! +------+------+------+------------+----------------- - - -
//! ```
//!
//! The 8-byte header carries a magic (`0x4244`, ASCII `"DB"` little-endian),
//! the protocol version, the frame type tag and the body length; frames
//! whose body would exceed [`MAX_BODY_LEN`] are rejected before any body
//! byte is read. All multi-byte integers are little-endian.
//!
//! Frame types:
//!
//! | tag | frame | direction | since |
//! |-----|-------|-----------|-------|
//! | 1 | [`EncodeRequestFrame`] → [`EncodeRequestView`] | client → service | v1 |
//! | 2 | [`EncodeResponseFrame`] → [`EncodeResponseView`] | service → client | v1 |
//! | 3 | [`ErrorFrame`] → [`ErrorView`] | service → client | v1 |
//! | 4 | metrics request (empty body) | client → service | v1 |
//! | 5 | metrics response (UTF-8 JSON body) | service → client | v1 |
//! | 6 | [`EncodeBatchRequestFrame`] → [`EncodeBatchRequestView`] | client → service | v3 |
//! | 7 | [`EncodeBatchResponseFrame`] → [`EncodeBatchResponseView`] | service → client | v3 |
//! | 8 | trace-dump request (`u32` max events) | client → service | v4 |
//! | 9 | [`TraceDumpResponseView`] | service → client | v4 |
//! | 10 | slowlog query (`u32` max entries) | client → service | v4 |
//! | 11 | [`SlowlogResponseView`] | service → client | v4 |
//! | 12 | [`PipelinedRequestFrame`] | client → service | v5 |
//! | 13 | [`PipelinedResponseFrame`] | service → client | v5 |
//! | 14 | [`PipelinedBatchRequestFrame`] | client → service | v5 |
//! | 15 | [`PipelinedBatchResponseFrame`] | service → client | v5 |
//! | 16 | [`PipelinedErrorFrame`] | service → client | v5 |
//! | 17 | snapshot request (empty body) | client → service | v6 |
//! | 18 | snapshot-status request (empty body) | client → service | v6 |
//! | 19 | restore request (empty body) | client → service | v6 |
//! | 20 | [`SnapshotStatus`] response | service → client | v6 |
//!
//! ## The v3 batch frames
//!
//! Protocol 3 adds the **batched data plane**: an `EncodeBatch` request
//! carries a whole batch of bursts for one session under a single
//! header — a `u16` burst-count field plus one contiguous payload —
//! where a per-burst client would have sent N separate frames. The
//! batch request body is the v2 encode-request body with the count field
//! inserted before the payload length:
//!
//! ```text
//! session_id u64 | scheme u8 | weights 8 | cost_model 13 | groups u16 |
//! burst_len u8 | want_masks u8 | count u16 | payload_len u32 | payload
//! ```
//!
//! `count` is the total number of per-group bursts in the payload and
//! must satisfy `count > 0` and `count · burst_len == payload_len`
//! (violations decode to [`WireError::BadBatchCount`]). The batch
//! response is the v1 encode-response body with the request's count
//! echoed after the burst total:
//!
//! ```text
//! session_id u64 | bursts u64 | count u16 | group_count u16 |
//! mask_count u32 | per-group records | masks
//! ```
//!
//! ## The v4 telemetry frames
//!
//! Protocol 4 adds the **observability plane** (see
//! [`crate::telemetry`]): two admin request/response pairs draining the
//! engine's trace rings and slowlogs. Both requests carry a single
//! little-endian `u32` bound on the answer size. The trace-dump response
//! body is a `u32` event count followed by that many fixed-width
//! [`TraceEvent`] records ([`TraceEvent::WIRE_BYTES`] bytes each); the
//! slowlog response prefixes the same layout with the engine's `u64`
//! capture threshold in nanoseconds:
//!
//! ```text
//! trace dump: count u32 | count × 48-byte TraceEvent records
//! slowlog:    threshold_ns u64 | count u32 | count × 48-byte records
//! ```
//!
//! The count field must agree with the body length
//! ([`WireError::BodyMismatch`]) and every record's outcome byte must be
//! a defined [`TraceOutcome`] ([`WireError::UnknownTraceOutcome`]) — both
//! checked eagerly by the decoder, so the views' record iterators cannot
//! fail. Every v1–v3 body layout is unchanged.
//!
//! ## The v5 pipelined frames
//!
//! Protocol 5 adds **pipelining**: tags 12–16 are the encode
//! request/response pair, the batch pair and the error frame with a
//! little-endian `u64` **request id** prefixed to the otherwise
//! unchanged body:
//!
//! ```text
//! pipelined body: request_id u64 | the corresponding v3/v4 body
//! ```
//!
//! The id is chosen by the client and echoed verbatim in the matching
//! response (or [`PipelinedErrorFrame`]), so many requests can be in
//! flight on one connection and responses are matched **by id rather
//! than by arrival order**. Ordering contract: responses may complete
//! out of order *across* sessions, but requests of one session complete
//! FIFO — sticky shard routing still serialises each session's carried
//! bus state, so pipelined results stay bit-identical to a serial run.
//! The non-pipelined tags remain valid under a v5 header with their
//! strict one-in-one-out semantics.
//!
//! ## The v6 durability admin frames
//!
//! Protocol 6 adds the **durable session plane** admin surface (see
//! [`crate::persist`]): three empty-bodied requests — trigger a snapshot
//! (tag 17), query snapshot status (tag 18), restore from disk (tag 19)
//! — all answered by the shared [`SnapshotStatus`] response (tag 20),
//! a fixed 41-byte body:
//!
//! ```text
//! configured u8 | generation u64 | snapshots_taken u64 |
//! last_sessions u64 | last_bytes u64 | restored_sessions u64
//! ```
//!
//! `configured` must be 0 or 1 (anything else is
//! [`WireError::UnknownFlags`]). Protocol 6 also gives session-limit
//! rejections their own typed code, [`ErrorCode::SessionLimit`]; peers
//! that announced an older version keep receiving
//! [`ErrorCode::Overloaded`] for them (see
//! [`ErrorCode::downgrade_for`]).
//!
//! ## Versioning
//!
//! This build speaks protocol [`VERSION`] 6. Version 2 added the
//! fixed-width **cost-model field** to encode requests: [`CostModel`]
//! selects the (α, β) source for a session — the weights embedded in the
//! scheme (v1 semantics), raw runtime coefficients, or a named phy
//! operating point such as `sstl15@6.4` / `pod12@3.2`. Version 3 added
//! the batch frames and redefined the request's `want_masks` byte as a
//! **flags** byte: bit 0 keeps its v1 `want_masks` meaning and bit 1 is
//! the [`VerifyMode`] **verify bit** — the engine must decode its own
//! output through the receiver path and prove the round trip before
//! replying (failures are [`ErrorCode::VerifyMismatch`]). Every v1/v2
//! body layout is unchanged.
//!
//! Version negotiation rules, receive side:
//!
//! * headers announcing versions 1 through [`VERSION`] are accepted;
//!   anything else is [`WireError::UnsupportedVersion`];
//! * a v1 encode request (no cost-model field) decodes with
//!   [`CostModel::Inline`]; v2/v3 encode requests are byte-identical;
//! * the batch tags (6, 7) exist only from v3 on — under a v1/v2 header
//!   they are [`WireError::UnknownFrameType`], exactly as a genuine v1/v2
//!   peer would treat them; the telemetry tags (8–11) exist only from v4
//!   on, the pipelined tags (12–16) only from v5 on, and the durability
//!   admin tags (17–20) only from v6 on, under the same rule;
//! * error-frame bodies are decoded version-blind, but the *writer*
//!   downgrades codes a peer's announced version predates:
//!   [`ErrorCode::SessionLimit`] (v6) travels as
//!   [`ErrorCode::Overloaded`] to a peer whose failing request was
//!   stamped v5 or older — the remedy (back off, spread over fewer
//!   sessions) is the same, and the older peer's decoder would reject
//!   the unknown code byte outright;
//! * the verify bit exists only from v3 on — under a v1/v2 header it is
//!   [`WireError::VerifyUnsupported`] (those versions defined the byte
//!   as a bare boolean, so a set bit 1 there is a corrupt or lying
//!   frame, not a request); flag bits above bit 1 are
//!   [`WireError::UnknownFlags`] under every version;
//! * response/error/metrics bodies are byte-identical across every
//!   accepted version.
//!
//! The compatibility is deliberately **receive-side only**: this build
//! answers every peer with version-5 headers, so a strict older peer
//! (whose decoder rejects any newer version byte) can be *decoded by*
//! this service but cannot parse its replies. That keeps the frame
//! writers version-free and is sufficient for the supported migration
//! order — upgrade servers first, then clients; an old *frame stream*
//! (captures, queued frames, old client builds being migrated) stays
//! readable throughout. A client that must stay compatible with a v2
//! server simply never sends batch frames; every non-batch frame it
//! receives decodes under both versions' rules.
//!
//! Encoding appends to a caller-owned `Vec<u8>` (reused buffers never
//! reallocate in steady state); decoding is **zero-copy and `unsafe`-free**:
//! [`decode_frame`] hands back views that borrow the receive buffer —
//! payload bytes, per-group cost records and mask streams are exposed as
//! slices/iterators over the original bytes, never copied into new
//! allocations. Malformed input of any shape yields a typed [`WireError`],
//! never a panic.

use crate::telemetry::{TraceEvent, TraceOutcome};
use core::fmt;
use dbi_core::{CostBreakdown, CostWeights, InversionMask, Scheme};
use dbi_phy::{NamedInterface, OperatingPoint};

/// The two magic bytes opening every frame: ASCII `"DB"`.
pub const MAGIC: [u8; 2] = *b"DB";

/// Protocol version written by this build. Peers announcing a version
/// outside [`LEGACY_VERSION`]`..=`[`VERSION`] are rejected with
/// [`WireError::UnsupportedVersion`].
pub const VERSION: u8 = 6;

/// The previous protocol version (pipelined frames, no durability admin
/// frames), still accepted on decode (see the
/// [module documentation](self) for the compatibility rules).
pub const V5_VERSION: u8 = 5;

/// Protocol version 4 (telemetry frames, no pipelined frames), still
/// accepted on decode.
pub const V4_VERSION: u8 = 4;

/// Protocol version 3 (batch frames and the verify bit, no telemetry
/// frames), still accepted on decode.
pub const V3_VERSION: u8 = 3;

/// Protocol version 2 (cost-model field, no batch frames), still
/// accepted on decode.
pub const V2_VERSION: u8 = 2;

/// The protocol version that introduced the `EncodeBatch` frames. Batch
/// tags under an older header are [`WireError::UnknownFrameType`] —
/// pinned here, not to [`VERSION`], so future version bumps keep
/// decoding version-3 batch streams.
pub const BATCH_MIN_VERSION: u8 = 3;

/// The protocol version that turned the encode-request `want_masks` byte
/// into a **flags** byte and defined its verify bit ([`VerifyMode`]).
/// Frames older than this carrying the verify bit — or any other bit
/// beyond `want_masks` — are rejected with
/// [`WireError::VerifyUnsupported`], exactly as a genuine v1/v2 peer
/// (which defined no such bit) must not be assumed to have meant it.
pub const VERIFY_MIN_VERSION: u8 = 3;

/// The protocol version that introduced the telemetry admin frames
/// (trace dump and slowlog query). Their tags under an older header are
/// [`WireError::UnknownFrameType`] — pinned here, not to [`VERSION`], so
/// future version bumps keep decoding version-4 telemetry streams.
pub const TELEMETRY_MIN_VERSION: u8 = 4;

/// The protocol version that introduced the pipelined frames (tags
/// 12–16): request/response pairs carrying a `u64` **request id** so
/// many frames can be in flight per connection, matched by id rather
/// than ordering. Their tags under an older header are
/// [`WireError::UnknownFrameType`] — pinned here, not to [`VERSION`], so
/// future version bumps keep decoding version-5 pipelined streams.
pub const PIPELINE_MIN_VERSION: u8 = 5;

/// The protocol version that introduced the durability admin frames
/// (tags 17–20: trigger snapshot, query snapshot status, restore, and
/// the shared [`SnapshotStatus`] response) and the typed
/// [`ErrorCode::SessionLimit`]. Their tags under an older header are
/// [`WireError::UnknownFrameType`] — pinned here, not to [`VERSION`], so
/// future version bumps keep decoding version-6 admin streams.
pub const DURABILITY_MIN_VERSION: u8 = 6;

/// The oldest protocol version still accepted on decode (no cost-model
/// field, no batch frames).
pub const LEGACY_VERSION: u8 = 1;

/// Bytes in the fixed frame header.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame body. Larger frames are rejected at the header,
/// so a malicious or corrupt length field can never trigger a huge read.
pub const MAX_BODY_LEN: usize = 8 << 20;

/// Size of the fixed-width wire encoding of a [`CostModel`]: a tag byte
/// plus a 12-byte payload (padded so every variant is the same width).
pub const COST_MODEL_WIRE_BYTES: usize = 13;

/// Size of the request-id prefix every protocol-5 pipelined body starts
/// with.
pub const REQUEST_ID_WIRE_BYTES: usize = 8;

/// Fixed-size prefix of a version-2 encode-request body, before the
/// payload bytes. Public so the engine can verify an admitted request
/// also fits a frame.
pub const REQUEST_HEAD_LEN: usize =
    8 + 1 + CostWeights::WIRE_BYTES + COST_MODEL_WIRE_BYTES + 2 + 1 + 1 + 4;

/// Fixed-size prefix of a version-1 encode-request body (no cost-model
/// field).
pub const V1_REQUEST_HEAD_LEN: usize = 8 + 1 + CostWeights::WIRE_BYTES + 2 + 1 + 1 + 4;

/// Fixed-size prefix of an encode-response body, before the records.
/// Public so the engine can verify an admitted request's response fits a
/// frame.
pub const RESPONSE_HEAD_LEN: usize = 8 + 8 + 2 + 4;

/// Fixed-size prefix of a version-3 batch encode-request body, before the
/// payload: the v2 request head plus the `u16` burst-count field.
pub const BATCH_REQUEST_HEAD_LEN: usize = REQUEST_HEAD_LEN + 2;

/// Fixed-size prefix of a version-3 batch encode-response body, before
/// the records: the response head plus the echoed `u16` burst count.
pub const BATCH_RESPONSE_HEAD_LEN: usize = 8 + 8 + 2 + 2 + 4;

/// Frame type tags.
mod tag {
    pub const ENCODE_REQUEST: u8 = 1;
    pub const ENCODE_RESPONSE: u8 = 2;
    pub const ERROR: u8 = 3;
    pub const METRICS_REQUEST: u8 = 4;
    pub const METRICS_RESPONSE: u8 = 5;
    pub const ENCODE_BATCH_REQUEST: u8 = 6;
    pub const ENCODE_BATCH_RESPONSE: u8 = 7;
    pub const TRACE_DUMP_REQUEST: u8 = 8;
    pub const TRACE_DUMP_RESPONSE: u8 = 9;
    pub const SLOWLOG_REQUEST: u8 = 10;
    pub const SLOWLOG_RESPONSE: u8 = 11;
    pub const PIPELINED_REQUEST: u8 = 12;
    pub const PIPELINED_RESPONSE: u8 = 13;
    pub const PIPELINED_BATCH_REQUEST: u8 = 14;
    pub const PIPELINED_BATCH_RESPONSE: u8 = 15;
    pub const PIPELINED_ERROR: u8 = 16;
    pub const SNAPSHOT_REQUEST: u8 = 17;
    pub const SNAPSHOT_STATUS_REQUEST: u8 = 18;
    pub const RESTORE_REQUEST: u8 = 19;
    pub const SNAPSHOT_STATUS_RESPONSE: u8 = 20;
}

/// A malformed or unsupported frame. Decoding never panics; every failure
/// mode is one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// The peer speaks a different protocol version.
    UnsupportedVersion(u8),
    /// The frame type tag is not one this version defines.
    UnknownFrameType(u8),
    /// The header announces a body larger than [`MAX_BODY_LEN`].
    Oversized {
        /// Announced body length.
        got: usize,
        /// The enforced limit.
        max: usize,
    },
    /// The body's internal length fields disagree with the body length.
    BodyMismatch,
    /// The scheme tag is not one this version defines.
    UnknownSchemeTag(u8),
    /// A parametric scheme carried invalid cost coefficients.
    BadWeights,
    /// The error code byte is not one this version defines.
    UnknownErrorCode(u8),
    /// A text field is not valid UTF-8.
    BadUtf8,
    /// The cost-model tag is not one this version defines.
    UnknownCostModelTag(u8),
    /// A named cost model carried an interface tag this version does not
    /// define.
    UnknownInterfaceTag(u8),
    /// A named cost model carried a zero data rate.
    BadDataRate,
    /// A batch frame's burst-count field is zero or disagrees with the
    /// payload length (protocol version 3).
    BadBatchCount {
        /// The count field carried by the frame.
        count: u16,
        /// Bursts the payload actually holds at the announced burst
        /// length.
        got: usize,
    },
    /// An encode request under a pre-[`VERIFY_MIN_VERSION`] header carries
    /// the verify-mode bit, which those versions do not define.
    VerifyUnsupported {
        /// The version the frame was stamped with.
        version: u8,
    },
    /// The request's flags byte carries bits this version does not define
    /// (beyond `want_masks` and, from v3, verify).
    UnknownFlags(u8),
    /// A trace record's outcome byte is not one this version defines
    /// (protocol version 4).
    UnknownTraceOutcome(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            WireError::BadMagic(bytes) => write!(f, "bad frame magic {bytes:02X?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION} \
                     and still decodes {LEGACY_VERSION} through {V5_VERSION})"
                )
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversized { got, max } => {
                write!(f, "frame body of {got} bytes exceeds the {max}-byte limit")
            }
            WireError::BodyMismatch => {
                write!(
                    f,
                    "frame body length disagrees with its internal length fields"
                )
            }
            WireError::UnknownSchemeTag(t) => write!(f, "unknown scheme tag {t}"),
            WireError::BadWeights => write!(f, "parametric scheme carries invalid cost weights"),
            WireError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
            WireError::UnknownCostModelTag(t) => write!(f, "unknown cost-model tag {t}"),
            WireError::UnknownInterfaceTag(t) => {
                write!(f, "unknown operating-point interface tag {t}")
            }
            WireError::BadDataRate => {
                write!(f, "named cost model carries a zero data rate")
            }
            WireError::BadBatchCount { count, got } => {
                write!(
                    f,
                    "batch count field of {count} disagrees with the {got} bursts in the payload"
                )
            }
            WireError::VerifyUnsupported { version } => {
                write!(
                    f,
                    "verify mode requires protocol version {VERIFY_MIN_VERSION}, \
                     but the frame is stamped version {version}"
                )
            }
            WireError::UnknownFlags(flags) => {
                write!(f, "request flags {flags:#04x} carry undefined bits")
            }
            WireError::UnknownTraceOutcome(byte) => {
                write!(f, "unknown trace outcome byte {byte}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes carried by [`ErrorFrame`]s — the wire image of
/// [`ServiceError`](crate::ServiceError).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The target shard's queue was full; retry later.
    Overloaded = 1,
    /// The service is shutting down.
    ShuttingDown = 2,
    /// The requested channel geometry is unsupported.
    BadGeometry = 3,
    /// The payload is empty, misaligned or too large.
    BadPayload = 4,
    /// A session id was reused with a different configuration.
    SessionMismatch = 5,
    /// The request frame itself was malformed.
    BadRequest = 6,
    /// The service hit an internal invariant violation.
    Internal = 7,
    /// The request's cost model does not apply to its scheme (protocol
    /// version 2).
    BadCostModel = 8,
    /// A verify-mode request's output failed to decode back to its input
    /// — the engine detected an encode/decode asymmetry (protocol
    /// version 3).
    VerifyMismatch = 9,
    /// The connection's write buffer overran its high-watermark: the
    /// peer stopped draining responses faster than it submitted
    /// requests, and the service dropped the connection rather than
    /// block an I/O thread on it (protocol version 5).
    SlowConsumer = 10,
    /// The target shard holds its maximum number of sessions, all of
    /// them busy in the pass in flight, so the new session could neither
    /// be created nor make room by evicting an idle one (protocol
    /// version 6; peers announcing an older version receive
    /// [`ErrorCode::Overloaded`] instead — see
    /// [`ErrorCode::downgrade_for`]).
    SessionLimit = 11,
}

impl ErrorCode {
    fn from_u8(byte: u8) -> Result<Self, WireError> {
        match byte {
            1 => Ok(ErrorCode::Overloaded),
            2 => Ok(ErrorCode::ShuttingDown),
            3 => Ok(ErrorCode::BadGeometry),
            4 => Ok(ErrorCode::BadPayload),
            5 => Ok(ErrorCode::SessionMismatch),
            6 => Ok(ErrorCode::BadRequest),
            7 => Ok(ErrorCode::Internal),
            8 => Ok(ErrorCode::BadCostModel),
            9 => Ok(ErrorCode::VerifyMismatch),
            10 => Ok(ErrorCode::SlowConsumer),
            11 => Ok(ErrorCode::SessionLimit),
            other => Err(WireError::UnknownErrorCode(other)),
        }
    }

    /// The code to actually put on the wire for a peer whose failing
    /// request announced `version`: codes newer than the peer's version
    /// are mapped to the closest code that version defines, so a strict
    /// older decoder never sees a code byte it cannot type.
    /// [`ErrorCode::SessionLimit`] (v6) downgrades to
    /// [`ErrorCode::Overloaded`]; every pre-v6 code passes through
    /// unchanged.
    #[must_use]
    pub fn downgrade_for(self, version: u8) -> Self {
        match self {
            ErrorCode::SessionLimit if version < DURABILITY_MIN_VERSION => ErrorCode::Overloaded,
            other => other,
        }
    }
}

/// Whether the engine must **decode its own output** and prove it equal to
/// the request's payload before replying — the protocol-3 verify bit of
/// the request flags byte.
///
/// Verification replays the full receiver path: the worker reconstructs
/// the wire image from payload + masks, decodes it through the carried
/// receiver state ([`dbi_mem::BusSession::decode_stream_into`]), and
/// compares payload bytes, per-group wire activity and carried lane
/// states. Any asymmetry fails the request with
/// [`ErrorCode::VerifyMismatch`] instead of returning silently wrong
/// results. Costs one extra decode pass over the payload; off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyMode {
    /// Encode only (the v1/v2 behaviour); no receiver replay.
    #[default]
    Off,
    /// Decode the encoded output back through the receiver path and
    /// fail the request on any mismatch.
    RoundTrip,
}

impl VerifyMode {
    /// `true` when verification is requested.
    #[must_use]
    pub const fn is_on(self) -> bool {
        matches!(self, VerifyMode::RoundTrip)
    }
}

impl fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyMode::Off => f.write_str("off"),
            VerifyMode::RoundTrip => f.write_str("round-trip"),
        }
    }
}

/// Bits of the encode-request flags byte (the former `want_masks` byte;
/// bit 0 keeps its v1 meaning, so every frame an actual v1/v2 writer
/// produced decodes unchanged).
mod request_flags {
    pub const WANT_MASKS: u8 = 1 << 0;
    pub const VERIFY: u8 = 1 << 1;
    pub const KNOWN: u8 = WANT_MASKS | VERIFY;
}

/// Encodes the flags byte of an encode/batch request.
fn encode_request_flags(want_masks: bool, verify: VerifyMode) -> u8 {
    let mut flags = 0;
    if want_masks {
        flags |= request_flags::WANT_MASKS;
    }
    if verify.is_on() {
        flags |= request_flags::VERIFY;
    }
    flags
}

/// Decodes and validates the flags byte of an encode/batch request under
/// the frame's announced version: undefined bits are
/// [`WireError::UnknownFlags`] everywhere, and the verify bit is
/// [`WireError::VerifyUnsupported`] below [`VERIFY_MIN_VERSION`].
fn decode_request_flags(byte: u8, version: u8) -> Result<(bool, VerifyMode), WireError> {
    if byte & !request_flags::KNOWN != 0 {
        return Err(WireError::UnknownFlags(byte));
    }
    let verify = if byte & request_flags::VERIFY != 0 {
        if version < VERIFY_MIN_VERSION {
            return Err(WireError::VerifyUnsupported { version });
        }
        VerifyMode::RoundTrip
    } else {
        VerifyMode::Off
    };
    Ok((byte & request_flags::WANT_MASKS != 0, verify))
}

/// Where a session's cost coefficients come from — the protocol-2
/// **cost-model field** of an encode request.
///
/// The model composes with the request's [`Scheme`]: for the parametric
/// schemes (`Opt`, `OptFixed`, `Greedy`) a non-inline model *replaces*
/// the embedded weights; the engine rejects non-inline models on schemes
/// that take no coefficients (with [`ErrorCode::BadCostModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum CostModel {
    /// Use the weights embedded in the scheme field — exactly the
    /// version-1 semantics. This is what v1 frames decode to.
    #[default]
    Inline,
    /// Explicit runtime coefficients (raw `alpha,beta`).
    Weights(CostWeights),
    /// A named phy operating point (e.g. `sstl15@6.4`, `pod12@3.2`); the
    /// engine quantises the point's energy ratio into coefficients.
    Named(OperatingPoint),
}

/// Cost-model wire tags.
mod cost_model_tag {
    pub const INLINE: u8 = 0;
    pub const WEIGHTS: u8 = 1;
    pub const NAMED: u8 = 2;
}

impl CostModel {
    /// Appends the fixed-width ([`COST_MODEL_WIRE_BYTES`]) wire form:
    /// a tag byte, then a 12-byte payload (zero-padded).
    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = [0u8; COST_MODEL_WIRE_BYTES - 1];
        let tag = match *self {
            CostModel::Inline => cost_model_tag::INLINE,
            CostModel::Weights(weights) => {
                payload[..CostWeights::WIRE_BYTES].copy_from_slice(&weights.to_le_bytes());
                cost_model_tag::WEIGHTS
            }
            CostModel::Named(point) => {
                payload[0] = point.interface().wire_tag();
                payload[4..8].copy_from_slice(&point.rate_mbps().to_le_bytes());
                cost_model_tag::NAMED
            }
        };
        out.push(tag);
        out.extend_from_slice(&payload);
    }

    /// Inverse of [`CostModel::encode_into`]. Padding bytes are ignored.
    fn decode(bytes: &[u8; COST_MODEL_WIRE_BYTES]) -> Result<CostModel, WireError> {
        let payload = &bytes[1..];
        match bytes[0] {
            cost_model_tag::INLINE => Ok(CostModel::Inline),
            cost_model_tag::WEIGHTS => {
                let mut weights = [0u8; CostWeights::WIRE_BYTES];
                weights.copy_from_slice(&payload[..CostWeights::WIRE_BYTES]);
                Ok(CostModel::Weights(
                    CostWeights::from_le_bytes(weights).map_err(|_| WireError::BadWeights)?,
                ))
            }
            cost_model_tag::NAMED => {
                let interface = NamedInterface::from_wire_tag(payload[0])
                    .ok_or(WireError::UnknownInterfaceTag(payload[0]))?;
                let rate_mbps =
                    u32::from_le_bytes([payload[4], payload[5], payload[6], payload[7]]);
                let point = OperatingPoint::new(interface, rate_mbps)
                    .map_err(|_| WireError::BadDataRate)?;
                Ok(CostModel::Named(point))
            }
            other => Err(WireError::UnknownCostModelTag(other)),
        }
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModel::Inline => f.write_str("inline"),
            CostModel::Weights(weights) => write!(f, "{},{}", weights.alpha(), weights.beta()),
            CostModel::Named(point) => write!(f, "{point}"),
        }
    }
}

/// Failure to parse a [`CostModel`] from its string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCostModelError(String);

impl fmt::Display for ParseCostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse {:?} as a cost model (expected \"inline\", \"ALPHA,BETA\" \
             or \"interface@gbps\")",
            self.0
        )
    }
}

impl std::error::Error for ParseCostModelError {}

impl core::str::FromStr for CostModel {
    type Err = ParseCostModelError;

    /// Parses the human-facing cost-model forms: `inline` (or an empty
    /// string), raw `ALPHA,BETA` coefficients (`3,1`), or a named
    /// operating point (`sstl15@6.4`, `pod12@3.2`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let invalid = || ParseCostModelError(trimmed.to_owned());
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("inline") {
            return Ok(CostModel::Inline);
        }
        if trimmed.contains('@') {
            let point: OperatingPoint = trimmed.parse().map_err(|_| invalid())?;
            return Ok(CostModel::Named(point));
        }
        let (alpha, beta) = trimmed.split_once(',').ok_or_else(invalid)?;
        let alpha: u32 = alpha.trim().parse().map_err(|_| invalid())?;
        let beta: u32 = beta.trim().parse().map_err(|_| invalid())?;
        CostWeights::new(alpha, beta)
            .map(CostModel::Weights)
            .map_err(|_| invalid())
    }
}

/// Maps a [`Scheme`] to its wire tag and the weights field it travels with.
pub(crate) fn scheme_to_wire(scheme: Scheme) -> (u8, CostWeights) {
    match scheme {
        Scheme::Raw => (0, CostWeights::FIXED),
        Scheme::Dc => (1, CostWeights::FIXED),
        Scheme::Ac => (2, CostWeights::FIXED),
        Scheme::AcDc => (3, CostWeights::FIXED),
        Scheme::Greedy(w) => (4, w),
        Scheme::Opt(w) => (5, w),
        Scheme::OptFixed => (6, CostWeights::FIXED),
        // `Scheme` is non-exhaustive: a new variant needs a new tag (and a
        // protocol version bump), which this panic makes impossible to miss.
        other => unimplemented!("scheme {other} has no wire tag in protocol version {VERSION}"),
    }
}

/// Inverse of [`scheme_to_wire`]: the weights field is only interpreted for
/// the parametric schemes.
fn scheme_from_wire(tag: u8, weights: [u8; CostWeights::WIRE_BYTES]) -> Result<Scheme, WireError> {
    let parse = || CostWeights::from_le_bytes(weights).map_err(|_| WireError::BadWeights);
    match tag {
        0 => Ok(Scheme::Raw),
        1 => Ok(Scheme::Dc),
        2 => Ok(Scheme::Ac),
        3 => Ok(Scheme::AcDc),
        4 => Ok(Scheme::Greedy(parse()?)),
        5 => Ok(Scheme::Opt(parse()?)),
        6 => Ok(Scheme::OptFixed),
        other => Err(WireError::UnknownSchemeTag(other)),
    }
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// The protocol version the frame was written with ([`VERSION`] or
    /// [`LEGACY_VERSION`]).
    pub version: u8,
    /// The frame type tag (validated later, by [`decode_frame`]).
    pub frame_type: u8,
    /// Announced body length in bytes.
    pub body_len: usize,
}

/// Parses and validates the fixed 8-byte header: magic, version and the
/// [`MAX_BODY_LEN`] bound. Every version from [`LEGACY_VERSION`] through
/// [`VERSION`] is accepted; the version is reported in the returned
/// [`Header`] so body decoding can pick the right layout.
///
/// # Errors
///
/// [`WireError::Truncated`], [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`] or [`WireError::Oversized`].
pub fn parse_header(bytes: &[u8]) -> Result<Header, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    if bytes[..2] != MAGIC {
        return Err(WireError::BadMagic([bytes[0], bytes[1]]));
    }
    if !(LEGACY_VERSION..=VERSION).contains(&bytes[2]) {
        return Err(WireError::UnsupportedVersion(bytes[2]));
    }
    let body_len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::Oversized {
            got: body_len,
            max: MAX_BODY_LEN,
        });
    }
    Ok(Header {
        version: bytes[2],
        frame_type: bytes[3],
        body_len,
    })
}

fn push_header(out: &mut Vec<u8>, frame_type: u8, body_len: usize) {
    debug_assert!(body_len <= MAX_BODY_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame_type);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
}

/// An encode request, in its borrowed write-side form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeRequestFrame<'a> {
    /// Client-chosen session id; requests with the same id share carried
    /// bus state and are routed to the same shard.
    pub session_id: u64,
    /// The DBI scheme to encode with.
    pub scheme: Scheme,
    /// Where the session's cost coefficients come from (protocol 2); see
    /// [`CostModel`]. [`CostModel::Inline`] reproduces v1 semantics.
    pub cost_model: CostModel,
    /// Lane groups of the channel.
    pub groups: u16,
    /// Burst length in beats.
    pub burst_len: u8,
    /// When set, the response carries the per-burst inversion masks.
    pub want_masks: bool,
    /// Whether the engine must decode its own output and prove the round
    /// trip before replying (protocol 3); see [`VerifyMode`].
    pub verify: VerifyMode,
    /// Beat-interleaved payload bytes (byte `k` of an access travels on
    /// group `k mod groups`).
    pub payload: &'a [u8],
}

impl EncodeRequestFrame<'_> {
    /// Appends the full frame (header + body) to `out`, in the
    /// [`VERSION`]-3 layout.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::ENCODE_REQUEST,
            REQUEST_HEAD_LEN + self.payload.len(),
        );
        self.push_body(out);
    }

    /// Appends the body alone — shared with the protocol-5 pipelined
    /// form, whose body is this one behind a request-id prefix.
    fn push_body(&self, out: &mut Vec<u8>) {
        let (tag, weights) = scheme_to_wire(self.scheme);
        out.extend_from_slice(&self.session_id.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&weights.to_le_bytes());
        self.cost_model.encode_into(out);
        out.extend_from_slice(&self.groups.to_le_bytes());
        out.push(self.burst_len);
        out.push(encode_request_flags(self.want_masks, self.verify));
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(self.payload);
    }
}

/// A decoded encode request, borrowing the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeRequestView<'a> {
    /// See [`EncodeRequestFrame::session_id`].
    pub session_id: u64,
    /// See [`EncodeRequestFrame::scheme`].
    pub scheme: Scheme,
    /// See [`EncodeRequestFrame::cost_model`]. Always
    /// [`CostModel::Inline`] for version-1 frames.
    pub cost_model: CostModel,
    /// See [`EncodeRequestFrame::groups`].
    pub groups: u16,
    /// See [`EncodeRequestFrame::burst_len`].
    pub burst_len: u8,
    /// See [`EncodeRequestFrame::want_masks`].
    pub want_masks: bool,
    /// See [`EncodeRequestFrame::verify`]. Always [`VerifyMode::Off`] for
    /// v1/v2 frames, whose flags byte may only carry the mask bit.
    pub verify: VerifyMode,
    /// The payload bytes, borrowed straight from the frame buffer.
    pub payload: &'a [u8],
}

fn decode_request(body: &[u8], version: u8) -> Result<EncodeRequestView<'_>, WireError> {
    let head_len = if version == LEGACY_VERSION {
        V1_REQUEST_HEAD_LEN
    } else {
        REQUEST_HEAD_LEN
    };
    if body.len() < head_len {
        return Err(WireError::Truncated {
            needed: head_len,
            got: body.len(),
        });
    }
    let session_id = u64::from_le_bytes(body[..8].try_into().expect("checked length"));
    let scheme_tag = body[8];
    let mut weights = [0u8; CostWeights::WIRE_BYTES];
    weights.copy_from_slice(&body[9..9 + CostWeights::WIRE_BYTES]);
    let mut rest = &body[9 + CostWeights::WIRE_BYTES..];
    let cost_model = if version == LEGACY_VERSION {
        CostModel::Inline
    } else {
        let mut field = [0u8; COST_MODEL_WIRE_BYTES];
        field.copy_from_slice(&rest[..COST_MODEL_WIRE_BYTES]);
        rest = &rest[COST_MODEL_WIRE_BYTES..];
        CostModel::decode(&field)?
    };
    let groups = u16::from_le_bytes([rest[0], rest[1]]);
    let burst_len = rest[2];
    let (want_masks, verify) = decode_request_flags(rest[3], version)?;
    let payload_len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
    let payload = &body[head_len..];
    if payload.len() != payload_len {
        return Err(WireError::BodyMismatch);
    }
    Ok(EncodeRequestView {
        session_id,
        scheme: scheme_from_wire(scheme_tag, weights)?,
        cost_model,
        groups,
        burst_len,
        want_masks,
        verify,
        payload,
    })
}

/// A batched encode request (protocol version 3): one header, one
/// contiguous payload carrying a whole batch of bursts for a session —
/// where a per-burst client would have sent N separate
/// [`EncodeRequestFrame`]s. See the [module documentation](self) for the
/// body layout and the count-field invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeBatchRequestFrame<'a> {
    /// See [`EncodeRequestFrame::session_id`].
    pub session_id: u64,
    /// See [`EncodeRequestFrame::scheme`].
    pub scheme: Scheme,
    /// See [`EncodeRequestFrame::cost_model`].
    pub cost_model: CostModel,
    /// See [`EncodeRequestFrame::groups`].
    pub groups: u16,
    /// See [`EncodeRequestFrame::burst_len`].
    pub burst_len: u8,
    /// See [`EncodeRequestFrame::want_masks`].
    pub want_masks: bool,
    /// See [`EncodeRequestFrame::verify`].
    pub verify: VerifyMode,
    /// Total per-group bursts in the payload; must equal
    /// `payload.len() / burst_len`.
    pub count: u16,
    /// Beat-interleaved payload bytes, exactly as in
    /// [`EncodeRequestFrame::payload`].
    pub payload: &'a [u8],
}

impl<'a> EncodeBatchRequestFrame<'a> {
    /// Builds the batch form of a plain encode request, computing the
    /// burst-count field from the payload. Returns `None` when the
    /// payload does not divide into `burst_len`-byte bursts or the count
    /// overflows the `u16` field.
    #[must_use]
    pub fn from_request(request: &EncodeRequestFrame<'a>) -> Option<Self> {
        let burst_len = usize::from(request.burst_len);
        if burst_len == 0 || !request.payload.len().is_multiple_of(burst_len) {
            return None;
        }
        let count = u16::try_from(request.payload.len() / burst_len).ok()?;
        Some(EncodeBatchRequestFrame {
            session_id: request.session_id,
            scheme: request.scheme,
            cost_model: request.cost_model,
            groups: request.groups,
            burst_len: request.burst_len,
            want_masks: request.want_masks,
            verify: request.verify,
            count,
            payload: request.payload,
        })
    }

    /// Appends the full frame (header + body) to `out`, in the
    /// [`VERSION`]-3 layout.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::ENCODE_BATCH_REQUEST,
            BATCH_REQUEST_HEAD_LEN + self.payload.len(),
        );
        self.push_body(out);
    }

    /// Appends the body alone — shared with the protocol-5 pipelined
    /// form.
    fn push_body(&self, out: &mut Vec<u8>) {
        let (tag, weights) = scheme_to_wire(self.scheme);
        out.extend_from_slice(&self.session_id.to_le_bytes());
        out.push(tag);
        out.extend_from_slice(&weights.to_le_bytes());
        self.cost_model.encode_into(out);
        out.extend_from_slice(&self.groups.to_le_bytes());
        out.push(self.burst_len);
        out.push(encode_request_flags(self.want_masks, self.verify));
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(self.payload);
    }
}

/// A decoded batch encode request, borrowing the receive buffer. The
/// count-field invariants (`count > 0`, `count · burst_len ==
/// payload.len()`) have already been enforced by the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeBatchRequestView<'a> {
    /// See [`EncodeBatchRequestFrame::session_id`].
    pub session_id: u64,
    /// See [`EncodeBatchRequestFrame::scheme`].
    pub scheme: Scheme,
    /// See [`EncodeBatchRequestFrame::cost_model`].
    pub cost_model: CostModel,
    /// See [`EncodeBatchRequestFrame::groups`].
    pub groups: u16,
    /// See [`EncodeBatchRequestFrame::burst_len`].
    pub burst_len: u8,
    /// See [`EncodeBatchRequestFrame::want_masks`].
    pub want_masks: bool,
    /// See [`EncodeBatchRequestFrame::verify`].
    pub verify: VerifyMode,
    /// See [`EncodeBatchRequestFrame::count`].
    pub count: u16,
    /// The payload bytes, borrowed straight from the frame buffer.
    pub payload: &'a [u8],
}

fn decode_batch_request(body: &[u8], version: u8) -> Result<EncodeBatchRequestView<'_>, WireError> {
    if body.len() < BATCH_REQUEST_HEAD_LEN {
        return Err(WireError::Truncated {
            needed: BATCH_REQUEST_HEAD_LEN,
            got: body.len(),
        });
    }
    let session_id = u64::from_le_bytes(body[..8].try_into().expect("checked length"));
    let scheme_tag = body[8];
    let mut weights = [0u8; CostWeights::WIRE_BYTES];
    weights.copy_from_slice(&body[9..9 + CostWeights::WIRE_BYTES]);
    let mut field = [0u8; COST_MODEL_WIRE_BYTES];
    field.copy_from_slice(
        &body[9 + CostWeights::WIRE_BYTES..9 + CostWeights::WIRE_BYTES + COST_MODEL_WIRE_BYTES],
    );
    let cost_model = CostModel::decode(&field)?;
    let rest = &body[9 + CostWeights::WIRE_BYTES + COST_MODEL_WIRE_BYTES..];
    let groups = u16::from_le_bytes([rest[0], rest[1]]);
    let burst_len = rest[2];
    let (want_masks, verify) = decode_request_flags(rest[3], version)?;
    let count = u16::from_le_bytes([rest[4], rest[5]]);
    let payload_len = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]) as usize;
    let payload = &body[BATCH_REQUEST_HEAD_LEN..];
    if payload.len() != payload_len {
        return Err(WireError::BodyMismatch);
    }
    let bursts_in_payload = if burst_len == 0 {
        0
    } else {
        payload.len() / usize::from(burst_len)
    };
    if count == 0 || usize::from(count) * usize::from(burst_len) != payload.len() {
        return Err(WireError::BadBatchCount {
            count,
            got: bursts_in_payload,
        });
    }
    Ok(EncodeBatchRequestView {
        session_id,
        scheme: scheme_from_wire(scheme_tag, weights)?,
        cost_model,
        groups,
        burst_len,
        want_masks,
        verify,
        count,
        payload,
    })
}

/// An encode response, in its borrowed write-side form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeResponseFrame<'a> {
    /// Echo of the request's session id.
    pub session_id: u64,
    /// Per-group bursts encoded by this request.
    pub bursts: u64,
    /// Activity added by this request, one record per lane group.
    pub per_group: &'a [CostBreakdown],
    /// Per-burst inversion decisions in transmission order; empty unless
    /// the request set [`EncodeRequestFrame::want_masks`].
    pub masks: &'a [InversionMask],
}

impl EncodeResponseFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(out, tag::ENCODE_RESPONSE, self.body_len());
        self.push_body(out);
    }

    fn body_len(&self) -> usize {
        RESPONSE_HEAD_LEN
            + self.per_group.len() * CostBreakdown::WIRE_BYTES
            + self.masks.len() * InversionMask::WIRE_BYTES
    }

    /// Appends the body alone — shared with the protocol-5 pipelined
    /// form.
    fn push_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.session_id.to_le_bytes());
        out.extend_from_slice(&self.bursts.to_le_bytes());
        out.extend_from_slice(&(self.per_group.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.masks.len() as u32).to_le_bytes());
        for record in self.per_group {
            out.extend_from_slice(&record.to_le_bytes());
        }
        for mask in self.masks {
            out.extend_from_slice(&mask.to_le_bytes());
        }
    }
}

/// A decoded encode response. The record streams stay in the receive
/// buffer; [`EncodeResponseView::per_group`] and
/// [`EncodeResponseView::masks`] decode them on the fly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeResponseView<'a> {
    /// Echo of the request's session id.
    pub session_id: u64,
    /// Per-group bursts encoded by this request.
    pub bursts: u64,
    per_group_bytes: &'a [u8],
    mask_bytes: &'a [u8],
}

impl<'a> EncodeResponseView<'a> {
    /// Number of lane-group records.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.per_group_bytes.len() / CostBreakdown::WIRE_BYTES
    }

    /// Number of inversion masks.
    #[must_use]
    pub fn mask_count(&self) -> usize {
        self.mask_bytes.len() / InversionMask::WIRE_BYTES
    }

    /// The per-group activity records, decoded from the borrowed bytes.
    pub fn per_group(&self) -> impl Iterator<Item = CostBreakdown> + 'a {
        self.per_group_bytes
            .chunks_exact(CostBreakdown::WIRE_BYTES)
            .map(|chunk| CostBreakdown::from_le_bytes(chunk.try_into().expect("exact chunks")))
    }

    /// The per-burst inversion masks, decoded from the borrowed bytes.
    pub fn masks(&self) -> impl Iterator<Item = InversionMask> + 'a {
        self.mask_bytes
            .chunks_exact(InversionMask::WIRE_BYTES)
            .map(|chunk| InversionMask::from_le_bytes(chunk.try_into().expect("exact chunks")))
    }
}

fn decode_response(body: &[u8]) -> Result<EncodeResponseView<'_>, WireError> {
    if body.len() < RESPONSE_HEAD_LEN {
        return Err(WireError::Truncated {
            needed: RESPONSE_HEAD_LEN,
            got: body.len(),
        });
    }
    let session_id = u64::from_le_bytes(body[..8].try_into().expect("checked length"));
    let bursts = u64::from_le_bytes(body[8..16].try_into().expect("checked length"));
    let group_count = u16::from_le_bytes([body[16], body[17]]) as usize;
    let mask_count = u32::from_le_bytes([body[18], body[19], body[20], body[21]]) as usize;
    let records = &body[RESPONSE_HEAD_LEN..];
    let group_bytes = group_count
        .checked_mul(CostBreakdown::WIRE_BYTES)
        .ok_or(WireError::BodyMismatch)?;
    let mask_bytes = mask_count
        .checked_mul(InversionMask::WIRE_BYTES)
        .ok_or(WireError::BodyMismatch)?;
    if records.len()
        != group_bytes
            .checked_add(mask_bytes)
            .ok_or(WireError::BodyMismatch)?
    {
        return Err(WireError::BodyMismatch);
    }
    Ok(EncodeResponseView {
        session_id,
        bursts,
        per_group_bytes: &records[..group_bytes],
        mask_bytes: &records[group_bytes..],
    })
}

/// A batched encode response (protocol version 3): the encode response
/// with the request's burst count echoed, answering an
/// [`EncodeBatchRequestFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeBatchResponseFrame<'a> {
    /// Echo of the request's session id.
    pub session_id: u64,
    /// Per-group bursts encoded by this batch.
    pub bursts: u64,
    /// Echo of the request's burst-count field.
    pub count: u16,
    /// Activity added by this batch, one record per lane group.
    pub per_group: &'a [CostBreakdown],
    /// Per-burst inversion decisions in transmission order; empty unless
    /// the request set `want_masks`.
    pub masks: &'a [InversionMask],
}

impl EncodeBatchResponseFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(out, tag::ENCODE_BATCH_RESPONSE, self.body_len());
        self.push_body(out);
    }

    fn body_len(&self) -> usize {
        BATCH_RESPONSE_HEAD_LEN
            + self.per_group.len() * CostBreakdown::WIRE_BYTES
            + self.masks.len() * InversionMask::WIRE_BYTES
    }

    /// Appends the body alone — shared with the protocol-5 pipelined
    /// form.
    fn push_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.session_id.to_le_bytes());
        out.extend_from_slice(&self.bursts.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.per_group.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.masks.len() as u32).to_le_bytes());
        for record in self.per_group {
            out.extend_from_slice(&record.to_le_bytes());
        }
        for mask in self.masks {
            out.extend_from_slice(&mask.to_le_bytes());
        }
    }
}

/// A decoded batch encode response. Like [`EncodeResponseView`], the
/// record streams stay in the receive buffer and decode lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeBatchResponseView<'a> {
    /// Echo of the request's session id.
    pub session_id: u64,
    /// Per-group bursts encoded by this batch.
    pub bursts: u64,
    /// Echo of the request's burst-count field.
    pub count: u16,
    per_group_bytes: &'a [u8],
    mask_bytes: &'a [u8],
}

impl<'a> EncodeBatchResponseView<'a> {
    /// Number of lane-group records.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.per_group_bytes.len() / CostBreakdown::WIRE_BYTES
    }

    /// Number of inversion masks.
    #[must_use]
    pub fn mask_count(&self) -> usize {
        self.mask_bytes.len() / InversionMask::WIRE_BYTES
    }

    /// The per-group activity records, decoded from the borrowed bytes.
    pub fn per_group(&self) -> impl Iterator<Item = CostBreakdown> + 'a {
        self.per_group_bytes
            .chunks_exact(CostBreakdown::WIRE_BYTES)
            .map(|chunk| CostBreakdown::from_le_bytes(chunk.try_into().expect("exact chunks")))
    }

    /// The per-burst inversion masks, decoded from the borrowed bytes.
    pub fn masks(&self) -> impl Iterator<Item = InversionMask> + 'a {
        self.mask_bytes
            .chunks_exact(InversionMask::WIRE_BYTES)
            .map(|chunk| InversionMask::from_le_bytes(chunk.try_into().expect("exact chunks")))
    }
}

fn decode_batch_response(body: &[u8]) -> Result<EncodeBatchResponseView<'_>, WireError> {
    if body.len() < BATCH_RESPONSE_HEAD_LEN {
        return Err(WireError::Truncated {
            needed: BATCH_RESPONSE_HEAD_LEN,
            got: body.len(),
        });
    }
    let session_id = u64::from_le_bytes(body[..8].try_into().expect("checked length"));
    let bursts = u64::from_le_bytes(body[8..16].try_into().expect("checked length"));
    let count = u16::from_le_bytes([body[16], body[17]]);
    let group_count = u16::from_le_bytes([body[18], body[19]]) as usize;
    let mask_count = u32::from_le_bytes([body[20], body[21], body[22], body[23]]) as usize;
    let records = &body[BATCH_RESPONSE_HEAD_LEN..];
    let group_bytes = group_count
        .checked_mul(CostBreakdown::WIRE_BYTES)
        .ok_or(WireError::BodyMismatch)?;
    let mask_bytes = mask_count
        .checked_mul(InversionMask::WIRE_BYTES)
        .ok_or(WireError::BodyMismatch)?;
    if records.len()
        != group_bytes
            .checked_add(mask_bytes)
            .ok_or(WireError::BodyMismatch)?
    {
        return Err(WireError::BodyMismatch);
    }
    Ok(EncodeBatchResponseView {
        session_id,
        bursts,
        count,
        per_group_bytes: &records[..group_bytes],
        mask_bytes: &records[group_bytes..],
    })
}

/// An error response, in its borrowed write-side form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorFrame<'a> {
    /// The typed error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: &'a str,
}

impl ErrorFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(out, tag::ERROR, 1 + self.message.len());
        out.push(self.code as u8);
        out.extend_from_slice(self.message.as_bytes());
    }
}

/// A decoded error response, borrowing the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorView<'a> {
    /// The typed error code.
    pub code: ErrorCode,
    /// Human-readable detail, borrowed from the frame buffer.
    pub message: &'a str,
}

fn decode_error(body: &[u8]) -> Result<ErrorView<'_>, WireError> {
    let (&code, message) = body
        .split_first()
        .ok_or(WireError::Truncated { needed: 1, got: 0 })?;
    Ok(ErrorView {
        code: ErrorCode::from_u8(code)?,
        message: core::str::from_utf8(message).map_err(|_| WireError::BadUtf8)?,
    })
}

/// Splits the `u64` request-id prefix off a protocol-5 pipelined body.
fn split_request_id(body: &[u8]) -> Result<(u64, &[u8]), WireError> {
    if body.len() < REQUEST_ID_WIRE_BYTES {
        return Err(WireError::Truncated {
            needed: REQUEST_ID_WIRE_BYTES,
            got: body.len(),
        });
    }
    let id = u64::from_le_bytes(body[..REQUEST_ID_WIRE_BYTES].try_into().expect("checked"));
    Ok((id, &body[REQUEST_ID_WIRE_BYTES..]))
}

/// A pipelined encode request (protocol version 5): an
/// [`EncodeRequestFrame`] behind a client-chosen `u64` **request id**.
/// Many of these may be in flight on one connection; the service echoes
/// the id on the matching [`PipelinedResponseFrame`] (or
/// [`PipelinedErrorFrame`]), so responses are matched by id rather than
/// by ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedRequestFrame<'a> {
    /// Client-chosen id echoed by the matching response; unique among
    /// the connection's in-flight requests.
    pub request_id: u64,
    /// The encode request itself, in its unchanged v3 body layout.
    pub request: EncodeRequestFrame<'a>,
}

impl PipelinedRequestFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::PIPELINED_REQUEST,
            REQUEST_ID_WIRE_BYTES + REQUEST_HEAD_LEN + self.request.payload.len(),
        );
        out.extend_from_slice(&self.request_id.to_le_bytes());
        self.request.push_body(out);
    }
}

/// A pipelined batch encode request (protocol version 5): the
/// [`EncodeBatchRequestFrame`] body behind a `u64` request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedBatchRequestFrame<'a> {
    /// See [`PipelinedRequestFrame::request_id`].
    pub request_id: u64,
    /// The batch request itself, in its unchanged v3 body layout.
    pub request: EncodeBatchRequestFrame<'a>,
}

impl PipelinedBatchRequestFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::PIPELINED_BATCH_REQUEST,
            REQUEST_ID_WIRE_BYTES + BATCH_REQUEST_HEAD_LEN + self.request.payload.len(),
        );
        out.extend_from_slice(&self.request_id.to_le_bytes());
        self.request.push_body(out);
    }
}

/// A pipelined encode response (protocol version 5): the
/// [`EncodeResponseFrame`] body behind the request's echoed id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedResponseFrame<'a> {
    /// Echo of the request's id.
    pub request_id: u64,
    /// The response itself, in its unchanged v1 body layout.
    pub response: EncodeResponseFrame<'a>,
}

impl PipelinedResponseFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::PIPELINED_RESPONSE,
            REQUEST_ID_WIRE_BYTES + self.response.body_len(),
        );
        out.extend_from_slice(&self.request_id.to_le_bytes());
        self.response.push_body(out);
    }
}

/// A pipelined batch encode response (protocol version 5): the
/// [`EncodeBatchResponseFrame`] body behind the request's echoed id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedBatchResponseFrame<'a> {
    /// Echo of the request's id.
    pub request_id: u64,
    /// The batch response itself, in its unchanged v3 body layout.
    pub response: EncodeBatchResponseFrame<'a>,
}

impl PipelinedBatchResponseFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::PIPELINED_BATCH_RESPONSE,
            REQUEST_ID_WIRE_BYTES + self.response.body_len(),
        );
        out.extend_from_slice(&self.request_id.to_le_bytes());
        self.response.push_body(out);
    }
}

/// A pipelined error response (protocol version 5): an [`ErrorFrame`]
/// behind the failed request's echoed id, so a failure among many
/// in-flight requests still lands on the right caller. Connection-level
/// failures that cannot be attributed to one request (malformed frames,
/// slow-consumer drops) keep using the plain [`ErrorFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinedErrorFrame<'a> {
    /// Echo of the failed request's id.
    pub request_id: u64,
    /// The typed error itself, in its unchanged v1 body layout.
    pub error: ErrorFrame<'a>,
}

impl PipelinedErrorFrame<'_> {
    /// Appends the full frame (header + body) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::PIPELINED_ERROR,
            REQUEST_ID_WIRE_BYTES + 1 + self.error.message.len(),
        );
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.push(self.error.code as u8);
        out.extend_from_slice(self.error.message.as_bytes());
    }
}

/// The durability plane's answer to every v6 admin request (trigger
/// snapshot, query status, restore): a fixed-width status block mirroring
/// the engine's durability counters. The [`Default`] value is what an
/// engine without a configured persist directory reports for a plain
/// status query (`configured == false`, everything zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStatus {
    /// Whether the engine was started with a persist directory.
    pub configured: bool,
    /// The current journal generation (the on-disk snapshot is one
    /// behind).
    pub generation: u64,
    /// Snapshots written since engine start (including the start-time
    /// self-compaction snapshot).
    pub snapshots_taken: u64,
    /// Sessions captured by the most recent snapshot.
    pub last_sessions: u64,
    /// Size in bytes of the most recent snapshot file.
    pub last_bytes: u64,
    /// Sessions recovered from disk at engine start, plus any brought
    /// back by explicit restore requests.
    pub restored_sessions: u64,
}

/// Bytes in a [`SnapshotStatus`] response body.
pub const SNAPSHOT_STATUS_WIRE_BYTES: usize = 1 + 5 * 8;

impl SnapshotStatus {
    /// Appends the full response frame (header + body) to `out`
    /// (protocol 6).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        push_header(
            out,
            tag::SNAPSHOT_STATUS_RESPONSE,
            SNAPSHOT_STATUS_WIRE_BYTES,
        );
        out.push(u8::from(self.configured));
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.snapshots_taken.to_le_bytes());
        out.extend_from_slice(&self.last_sessions.to_le_bytes());
        out.extend_from_slice(&self.last_bytes.to_le_bytes());
        out.extend_from_slice(&self.restored_sessions.to_le_bytes());
    }
}

fn decode_snapshot_status(body: &[u8]) -> Result<SnapshotStatus, WireError> {
    if body.len() != SNAPSHOT_STATUS_WIRE_BYTES {
        return Err(if body.len() < SNAPSHOT_STATUS_WIRE_BYTES {
            WireError::Truncated {
                needed: SNAPSHOT_STATUS_WIRE_BYTES,
                got: body.len(),
            }
        } else {
            WireError::BodyMismatch
        });
    }
    let configured = match body[0] {
        0 => false,
        1 => true,
        other => return Err(WireError::UnknownFlags(other)),
    };
    let word = |at: usize| u64::from_le_bytes(body[at..at + 8].try_into().expect("checked length"));
    Ok(SnapshotStatus {
        configured,
        generation: word(1),
        snapshots_taken: word(9),
        last_sessions: word(17),
        last_bytes: word(25),
        restored_sessions: word(33),
    })
}

/// Appends a snapshot-request frame (empty body) to `out`: the service
/// quiesces every shard at a pass boundary, writes a fresh snapshot and
/// rotates the journals, then answers with [`SnapshotStatus`]
/// (protocol 6).
pub fn encode_snapshot_request(out: &mut Vec<u8>) {
    push_header(out, tag::SNAPSHOT_REQUEST, 0);
}

/// Appends a snapshot-status request frame (empty body) to `out`: the
/// service answers with its current [`SnapshotStatus`] without touching
/// disk (protocol 6).
pub fn encode_snapshot_status_request(out: &mut Vec<u8>) {
    push_header(out, tag::SNAPSHOT_STATUS_REQUEST, 0);
}

/// Appends a restore-request frame (empty body) to `out`: the service
/// re-reads its persist directory and seeds every recovered session into
/// the live shards (replacing same-id entries), then answers with
/// [`SnapshotStatus`] (protocol 6).
pub fn encode_restore_request(out: &mut Vec<u8>) {
    push_header(out, tag::RESTORE_REQUEST, 0);
}

/// Appends a metrics-request frame (empty body) to `out`.
pub fn encode_metrics_request(out: &mut Vec<u8>) {
    push_header(out, tag::METRICS_REQUEST, 0);
}

/// Appends a metrics-response frame carrying a JSON snapshot to `out`.
pub fn encode_metrics_response(out: &mut Vec<u8>, json: &str) {
    push_header(out, tag::METRICS_RESPONSE, json.len());
    out.extend_from_slice(json.as_bytes());
}

/// Appends a trace-dump request to `out`: the service answers with up to
/// `max_events` of the most recent trace events per shard (protocol 4).
pub fn encode_trace_dump_request(out: &mut Vec<u8>, max_events: u32) {
    push_header(out, tag::TRACE_DUMP_REQUEST, 4);
    out.extend_from_slice(&max_events.to_le_bytes());
}

/// Appends a slowlog query to `out`: the service answers with up to
/// `max_entries` of the most recent slowlog captures (protocol 4).
pub fn encode_slowlog_request(out: &mut Vec<u8>, max_entries: u32) {
    push_header(out, tag::SLOWLOG_REQUEST, 4);
    out.extend_from_slice(&max_entries.to_le_bytes());
}

fn push_trace_records(out: &mut Vec<u8>, events: &[TraceEvent]) {
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for event in events {
        out.extend_from_slice(&event.to_le_bytes());
    }
}

/// Appends a trace-dump response carrying `events` to `out` (protocol 4).
pub fn encode_trace_dump_response(out: &mut Vec<u8>, events: &[TraceEvent]) {
    push_header(
        out,
        tag::TRACE_DUMP_RESPONSE,
        4 + events.len() * TraceEvent::WIRE_BYTES,
    );
    push_trace_records(out, events);
}

/// Appends a slowlog response carrying `entries` captured at
/// `threshold_ns` to `out` (protocol 4).
pub fn encode_slowlog_response(out: &mut Vec<u8>, threshold_ns: u64, entries: &[TraceEvent]) {
    push_header(
        out,
        tag::SLOWLOG_RESPONSE,
        8 + 4 + entries.len() * TraceEvent::WIRE_BYTES,
    );
    out.extend_from_slice(&threshold_ns.to_le_bytes());
    push_trace_records(out, entries);
}

/// Validates a `count`-prefixed run of fixed-width trace records and
/// returns the record bytes. The count must agree with the body length
/// and every record's outcome byte must be defined, so the views'
/// iterators decode infallibly.
fn check_trace_records(body: &[u8]) -> Result<&[u8], WireError> {
    if body.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            got: body.len(),
        });
    }
    let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
    let records = &body[4..];
    if count
        .checked_mul(TraceEvent::WIRE_BYTES)
        .ok_or(WireError::BodyMismatch)?
        != records.len()
    {
        return Err(WireError::BodyMismatch);
    }
    for record in records.chunks_exact(TraceEvent::WIRE_BYTES) {
        TraceOutcome::from_wire(record[TraceEvent::OUTCOME_BYTE_AT])?;
    }
    Ok(records)
}

/// Decodes one run of already-validated trace records.
fn trace_records(bytes: &[u8]) -> impl Iterator<Item = TraceEvent> + '_ {
    bytes.chunks_exact(TraceEvent::WIRE_BYTES).map(|chunk| {
        TraceEvent::from_le_bytes(chunk.try_into().expect("exact chunks"))
            .expect("records validated by the decoder")
    })
}

/// A decoded trace-dump response (protocol 4). The records stay in the
/// receive buffer and decode lazily; the decoder has already validated
/// the count field and every outcome byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDumpResponseView<'a> {
    record_bytes: &'a [u8],
}

impl<'a> TraceDumpResponseView<'a> {
    /// Number of trace events in the response.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.record_bytes.len() / TraceEvent::WIRE_BYTES
    }

    /// The trace events, decoded from the borrowed bytes.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + 'a {
        trace_records(self.record_bytes)
    }
}

/// A decoded slowlog response (protocol 4): the engine's capture
/// threshold plus the captured events, lazily decoded like
/// [`TraceDumpResponseView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowlogResponseView<'a> {
    /// The engine's slowlog capture threshold in nanoseconds.
    pub threshold_ns: u64,
    record_bytes: &'a [u8],
}

impl<'a> SlowlogResponseView<'a> {
    /// Number of slowlog entries in the response.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.record_bytes.len() / TraceEvent::WIRE_BYTES
    }

    /// The captured events, decoded from the borrowed bytes.
    pub fn entries(&self) -> impl Iterator<Item = TraceEvent> + 'a {
        trace_records(self.record_bytes)
    }
}

/// Decodes the `u32` bound carried by both telemetry request frames.
fn decode_telemetry_bound(body: &[u8]) -> Result<u32, WireError> {
    let bytes: [u8; 4] = body.try_into().map_err(|_| {
        if body.len() < 4 {
            WireError::Truncated {
                needed: 4,
                got: body.len(),
            }
        } else {
            WireError::BodyMismatch
        }
    })?;
    Ok(u32::from_le_bytes(bytes))
}

fn decode_slowlog_response(body: &[u8]) -> Result<SlowlogResponseView<'_>, WireError> {
    if body.len() < 8 {
        return Err(WireError::Truncated {
            needed: 8,
            got: body.len(),
        });
    }
    let threshold_ns = u64::from_le_bytes(body[..8].try_into().expect("checked length"));
    Ok(SlowlogResponseView {
        threshold_ns,
        record_bytes: check_trace_records(&body[8..])?,
    })
}

/// One decoded frame, borrowing the buffer it was decoded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Frame<'a> {
    /// A client encode request.
    EncodeRequest(EncodeRequestView<'a>),
    /// A service encode response.
    EncodeResponse(EncodeResponseView<'a>),
    /// A service error response.
    Error(ErrorView<'a>),
    /// A client metrics request.
    MetricsRequest,
    /// A service metrics response: the JSON snapshot text.
    MetricsResponse(&'a str),
    /// A client batch encode request (protocol 3).
    EncodeBatchRequest(EncodeBatchRequestView<'a>),
    /// A service batch encode response (protocol 3).
    EncodeBatchResponse(EncodeBatchResponseView<'a>),
    /// A client trace-dump request: the maximum events wanted per shard
    /// (protocol 4).
    TraceDumpRequest(u32),
    /// A service trace-dump response (protocol 4).
    TraceDumpResponse(TraceDumpResponseView<'a>),
    /// A client slowlog query: the maximum entries wanted (protocol 4).
    SlowlogRequest(u32),
    /// A service slowlog response (protocol 4).
    SlowlogResponse(SlowlogResponseView<'a>),
    /// A pipelined client encode request (protocol 5), matched to its
    /// response by `request_id` instead of arrival order.
    PipelinedRequest {
        /// The client-chosen request id.
        request_id: u64,
        /// The request body, unchanged from the non-pipelined form.
        request: EncodeRequestView<'a>,
    },
    /// A pipelined service encode response (protocol 5).
    PipelinedResponse {
        /// Echo of the request's id.
        request_id: u64,
        /// The response body, unchanged from the non-pipelined form.
        response: EncodeResponseView<'a>,
    },
    /// A pipelined client batch encode request (protocol 5).
    PipelinedBatchRequest {
        /// The client-chosen request id.
        request_id: u64,
        /// The batch request body, unchanged from the non-pipelined form.
        request: EncodeBatchRequestView<'a>,
    },
    /// A pipelined service batch encode response (protocol 5).
    PipelinedBatchResponse {
        /// Echo of the request's id.
        request_id: u64,
        /// The batch response body, unchanged from the non-pipelined
        /// form.
        response: EncodeBatchResponseView<'a>,
    },
    /// A pipelined service error response (protocol 5), attributed to
    /// one in-flight request by its echoed id.
    PipelinedError {
        /// Echo of the failed request's id.
        request_id: u64,
        /// The typed error body, unchanged from the non-pipelined form.
        error: ErrorView<'a>,
    },
    /// A client request to snapshot the durable session plane
    /// (protocol 6).
    SnapshotRequest,
    /// A client query of the durability status (protocol 6).
    SnapshotStatusRequest,
    /// A client request to restore sessions from disk (protocol 6).
    RestoreRequest,
    /// The service's answer to every durability admin request
    /// (protocol 6).
    SnapshotStatus(SnapshotStatus),
}

/// Decodes the frame starting at `bytes[0]` and returns it together with
/// its total encoded length (header + body), so a buffer holding several
/// back-to-back frames can be walked.
///
/// # Errors
///
/// Any [`WireError`]; in particular [`WireError::Truncated`] when `bytes`
/// ends mid-frame (the `needed` field tells the transport how many bytes
/// the whole frame requires).
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame<'_>, usize), WireError> {
    let header = parse_header(bytes)?;
    let total = HEADER_LEN + header.body_len;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    let body = &bytes[HEADER_LEN..total];
    let frame = match header.frame_type {
        tag::ENCODE_REQUEST => Frame::EncodeRequest(decode_request(body, header.version)?),
        tag::ENCODE_RESPONSE => Frame::EncodeResponse(decode_response(body)?),
        tag::ERROR => Frame::Error(decode_error(body)?),
        tag::METRICS_REQUEST => {
            if !body.is_empty() {
                return Err(WireError::BodyMismatch);
            }
            Frame::MetricsRequest
        }
        tag::METRICS_RESPONSE => {
            Frame::MetricsResponse(core::str::from_utf8(body).map_err(|_| WireError::BadUtf8)?)
        }
        // The batch tags exist only from protocol 3 on; under an older
        // version header they are exactly as unknown as they would be to
        // a genuine v1/v2 peer.
        tag::ENCODE_BATCH_REQUEST if header.version >= BATCH_MIN_VERSION => {
            Frame::EncodeBatchRequest(decode_batch_request(body, header.version)?)
        }
        tag::ENCODE_BATCH_RESPONSE if header.version >= BATCH_MIN_VERSION => {
            Frame::EncodeBatchResponse(decode_batch_response(body)?)
        }
        // The telemetry tags exist only from protocol 4 on, same rule.
        tag::TRACE_DUMP_REQUEST if header.version >= TELEMETRY_MIN_VERSION => {
            Frame::TraceDumpRequest(decode_telemetry_bound(body)?)
        }
        tag::TRACE_DUMP_RESPONSE if header.version >= TELEMETRY_MIN_VERSION => {
            Frame::TraceDumpResponse(TraceDumpResponseView {
                record_bytes: check_trace_records(body)?,
            })
        }
        tag::SLOWLOG_REQUEST if header.version >= TELEMETRY_MIN_VERSION => {
            Frame::SlowlogRequest(decode_telemetry_bound(body)?)
        }
        tag::SLOWLOG_RESPONSE if header.version >= TELEMETRY_MIN_VERSION => {
            Frame::SlowlogResponse(decode_slowlog_response(body)?)
        }
        // The pipelined tags exist only from protocol 5 on, same rule.
        tag::PIPELINED_REQUEST if header.version >= PIPELINE_MIN_VERSION => {
            let (request_id, rest) = split_request_id(body)?;
            Frame::PipelinedRequest {
                request_id,
                request: decode_request(rest, header.version)?,
            }
        }
        tag::PIPELINED_RESPONSE if header.version >= PIPELINE_MIN_VERSION => {
            let (request_id, rest) = split_request_id(body)?;
            Frame::PipelinedResponse {
                request_id,
                response: decode_response(rest)?,
            }
        }
        tag::PIPELINED_BATCH_REQUEST if header.version >= PIPELINE_MIN_VERSION => {
            let (request_id, rest) = split_request_id(body)?;
            Frame::PipelinedBatchRequest {
                request_id,
                request: decode_batch_request(rest, header.version)?,
            }
        }
        tag::PIPELINED_BATCH_RESPONSE if header.version >= PIPELINE_MIN_VERSION => {
            let (request_id, rest) = split_request_id(body)?;
            Frame::PipelinedBatchResponse {
                request_id,
                response: decode_batch_response(rest)?,
            }
        }
        tag::PIPELINED_ERROR if header.version >= PIPELINE_MIN_VERSION => {
            let (request_id, rest) = split_request_id(body)?;
            Frame::PipelinedError {
                request_id,
                error: decode_error(rest)?,
            }
        }
        // The durability admin tags exist only from protocol 6 on, same
        // rule.
        tag::SNAPSHOT_REQUEST if header.version >= DURABILITY_MIN_VERSION => {
            if !body.is_empty() {
                return Err(WireError::BodyMismatch);
            }
            Frame::SnapshotRequest
        }
        tag::SNAPSHOT_STATUS_REQUEST if header.version >= DURABILITY_MIN_VERSION => {
            if !body.is_empty() {
                return Err(WireError::BodyMismatch);
            }
            Frame::SnapshotStatusRequest
        }
        tag::RESTORE_REQUEST if header.version >= DURABILITY_MIN_VERSION => {
            if !body.is_empty() {
                return Err(WireError::BodyMismatch);
            }
            Frame::RestoreRequest
        }
        tag::SNAPSHOT_STATUS_RESPONSE if header.version >= DURABILITY_MIN_VERSION => {
            Frame::SnapshotStatus(decode_snapshot_status(body)?)
        }
        other => return Err(WireError::UnknownFrameType(other)),
    };
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_borrows_the_payload() {
        let payload = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let frame = EncodeRequestFrame {
            session_id: 0xAB,
            scheme: Scheme::Opt(CostWeights::new(2, 3).unwrap()),
            cost_model: CostModel::Inline,
            groups: 4,
            burst_len: 8,
            want_masks: true,
            verify: VerifyMode::Off,
            payload: &payload,
        };
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        let (decoded, consumed) = decode_frame(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        let Frame::EncodeRequest(view) = decoded else {
            panic!("wrong frame type");
        };
        assert_eq!(view.session_id, 0xAB);
        assert_eq!(view.scheme, frame.scheme);
        assert_eq!((view.groups, view.burst_len, view.want_masks), (4, 8, true));
        assert_eq!(view.payload, &payload);
        // Zero-copy: the payload view points into the frame buffer.
        assert!(core::ptr::eq(
            view.payload.as_ptr(),
            &buf[HEADER_LEN + REQUEST_HEAD_LEN]
        ));
    }

    #[test]
    fn response_roundtrip_decodes_records_lazily() {
        let per_group = [CostBreakdown::new(1, 2), CostBreakdown::new(3, 4)];
        let masks = [InversionMask::from_bits(0b1010), InversionMask::NONE];
        let frame = EncodeResponseFrame {
            session_id: 7,
            bursts: 16,
            per_group: &per_group,
            masks: &masks,
        };
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        let (Frame::EncodeResponse(view), _) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!((view.session_id, view.bursts), (7, 16));
        assert_eq!(view.group_count(), 2);
        assert_eq!(view.mask_count(), 2);
        assert_eq!(view.per_group().collect::<Vec<_>>(), per_group);
        assert_eq!(view.masks().collect::<Vec<_>>(), masks);
    }

    #[test]
    fn error_and_metrics_frames_roundtrip() {
        let mut buf = Vec::new();
        ErrorFrame {
            code: ErrorCode::Overloaded,
            message: "shard 3 is full",
        }
        .encode_into(&mut buf);
        encode_metrics_request(&mut buf);
        encode_metrics_response(&mut buf, "{\"requests\":1}");

        let (Frame::Error(err), n1) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert_eq!(err.message, "shard 3 is full");
        let (frame, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(frame, Frame::MetricsRequest);
        let (Frame::MetricsResponse(json), n3) = decode_frame(&buf[n1 + n2..]).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(json, "{\"requests\":1}");
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn every_scheme_survives_the_wire() {
        let mut all: Vec<Scheme> = Scheme::paper_set().to_vec();
        all.extend_from_slice(Scheme::conventional_set());
        all.push(Scheme::Greedy(CostWeights::new(3, 5).unwrap()));
        for scheme in all {
            let (tag, weights) = scheme_to_wire(scheme);
            assert_eq!(scheme_from_wire(tag, weights.to_le_bytes()), Ok(scheme));
        }
        assert_eq!(
            scheme_from_wire(99, CostWeights::FIXED.to_le_bytes()),
            Err(WireError::UnknownSchemeTag(99))
        );
        assert_eq!(
            scheme_from_wire(5, [0u8; CostWeights::WIRE_BYTES]),
            Err(WireError::BadWeights)
        );
    }

    #[test]
    fn header_violations_are_typed() {
        let mut buf = Vec::new();
        encode_metrics_request(&mut buf);

        assert_eq!(
            parse_header(&buf[..3]),
            Err(WireError::Truncated { needed: 8, got: 3 })
        );
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(parse_header(&bad), Err(WireError::BadMagic([b'X', b'B'])));
        let mut bad = buf.clone();
        bad[2] = 9;
        assert_eq!(parse_header(&bad), Err(WireError::UnsupportedVersion(9)));
        let mut bad = buf.clone();
        bad[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            parse_header(&bad),
            Err(WireError::Oversized {
                got: u32::MAX as usize,
                max: MAX_BODY_LEN
            })
        );
        let mut bad = buf;
        bad[3] = 42;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownFrameType(42)));
    }

    #[test]
    fn internal_length_fields_are_cross_checked() {
        let mut buf = Vec::new();
        EncodeRequestFrame {
            session_id: 1,
            scheme: Scheme::Raw,
            cost_model: CostModel::Inline,
            groups: 1,
            burst_len: 8,
            want_masks: false,
            verify: VerifyMode::Off,
            payload: &[0u8; 8],
        }
        .encode_into(&mut buf);
        // Corrupt the inner payload_len field.
        let payload_len_at = HEADER_LEN + REQUEST_HEAD_LEN - 4;
        buf[payload_len_at] ^= 1;
        assert_eq!(decode_frame(&buf), Err(WireError::BodyMismatch));

        let mut buf = Vec::new();
        EncodeResponseFrame {
            session_id: 1,
            bursts: 2,
            per_group: &[CostBreakdown::ZERO],
            masks: &[],
        }
        .encode_into(&mut buf);
        // Claim one more mask than the body holds.
        buf[HEADER_LEN + 18] = 1;
        assert_eq!(decode_frame(&buf), Err(WireError::BodyMismatch));
    }

    #[test]
    fn error_display_covers_every_variant() {
        let variants = [
            WireError::Truncated { needed: 8, got: 3 },
            WireError::BadMagic([0, 1]),
            WireError::UnsupportedVersion(2),
            WireError::UnknownFrameType(3),
            WireError::Oversized { got: 4, max: 5 },
            WireError::BodyMismatch,
            WireError::UnknownSchemeTag(6),
            WireError::BadWeights,
            WireError::UnknownErrorCode(7),
            WireError::BadUtf8,
            WireError::UnknownCostModelTag(8),
            WireError::UnknownInterfaceTag(9),
            WireError::BadDataRate,
            WireError::BadBatchCount { count: 4, got: 3 },
            WireError::VerifyUnsupported { version: 2 },
            WireError::UnknownFlags(0x80),
            WireError::UnknownTraceOutcome(9),
        ];
        for err in variants {
            assert!(!err.to_string().is_empty());
        }
    }

    /// Offset of the flags byte inside an encode-request frame (v2/v3
    /// layout).
    const FLAGS_AT: usize =
        HEADER_LEN + 8 + 1 + CostWeights::WIRE_BYTES + COST_MODEL_WIRE_BYTES + 3;

    #[test]
    fn verify_bit_roundtrips_on_v3_requests_and_batches() {
        let payload = [0u8; 16];
        let frame = EncodeRequestFrame {
            session_id: 5,
            scheme: Scheme::OptFixed,
            cost_model: CostModel::Inline,
            groups: 2,
            burst_len: 8,
            want_masks: false,
            verify: VerifyMode::RoundTrip,
            payload: &payload,
        };
        let mut buf = Vec::new();
        frame.encode_into(&mut buf);
        assert_eq!(buf[FLAGS_AT], 0b10, "verify alone sets only bit 1");
        let (Frame::EncodeRequest(view), _) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(view.verify, VerifyMode::RoundTrip);
        assert!(!view.want_masks);

        // Both bits together.
        let mut buf = Vec::new();
        EncodeRequestFrame {
            want_masks: true,
            ..frame
        }
        .encode_into(&mut buf);
        assert_eq!(buf[FLAGS_AT], 0b11);
        let (Frame::EncodeRequest(view), _) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert!(view.want_masks && view.verify.is_on());

        // The batch frame carries the same flags byte.
        let batch = EncodeBatchRequestFrame::from_request(&frame).unwrap();
        assert_eq!(batch.verify, VerifyMode::RoundTrip);
        let mut buf = Vec::new();
        batch.encode_into(&mut buf);
        let (Frame::EncodeBatchRequest(view), _) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(view.verify, VerifyMode::RoundTrip);
    }

    #[test]
    fn verify_bits_below_v3_are_rejected_typed() {
        // A v3 verify-mode request re-stamped as v1 or v2 must not decode
        // — those versions defined the byte as a bare boolean, so the set
        // bit is a corrupt or lying frame.
        let payload = [0u8; 8];
        let mut buf = Vec::new();
        EncodeRequestFrame {
            session_id: 1,
            scheme: Scheme::Raw,
            cost_model: CostModel::Inline,
            groups: 1,
            burst_len: 8,
            want_masks: true,
            verify: VerifyMode::RoundTrip,
            payload: &payload,
        }
        .encode_into(&mut buf);
        for version in [LEGACY_VERSION, V2_VERSION] {
            let mut old = buf.clone();
            old[2] = version;
            // The v1 body has no cost-model field; only test the verify
            // gate under v2 (same body layout as v3). For v1, assemble
            // the legacy layout below.
            if version == V2_VERSION {
                assert_eq!(
                    decode_frame(&old),
                    Err(WireError::VerifyUnsupported { version }),
                    "v{version} header must reject the verify bit"
                );
            }
        }
        // Hand-assembled v1 frame with the verify bit in its flags byte.
        let mut v1 = encode_v1_request(1, Scheme::Raw, 1, 8, false, &payload);
        let v1_flags_at = HEADER_LEN + 8 + 1 + CostWeights::WIRE_BYTES + 3;
        v1[v1_flags_at] = 0b10;
        assert_eq!(
            decode_frame(&v1),
            Err(WireError::VerifyUnsupported { version: 1 })
        );
        // A v1 want_masks byte of exactly 1 still decodes (bit 0 keeps
        // its meaning)...
        let mut v1 = encode_v1_request(1, Scheme::Raw, 1, 8, true, &payload);
        let (Frame::EncodeRequest(view), _) = decode_frame(&v1).unwrap() else {
            panic!("wrong frame type");
        };
        assert!(view.want_masks);
        assert_eq!(view.verify, VerifyMode::Off);
        // ...but undefined high bits never do, under any version.
        v1[v1_flags_at] = 0x81;
        assert_eq!(decode_frame(&v1), Err(WireError::UnknownFlags(0x81)));
        let mut v3 = buf;
        v3[FLAGS_AT] = 0b101;
        assert_eq!(decode_frame(&v3), Err(WireError::UnknownFlags(0b101)));
    }

    #[test]
    fn batch_frames_roundtrip_and_enforce_the_count_invariants() {
        let payload = [7u8; 64]; // 8 bursts of 8 bytes
        let request = EncodeRequestFrame {
            session_id: 0xBA7C,
            scheme: Scheme::Opt(CostWeights::new(2, 3).unwrap()),
            cost_model: CostModel::Weights(CostWeights::new(4, 1).unwrap()),
            groups: 4,
            burst_len: 8,
            want_masks: true,
            verify: VerifyMode::Off,
            payload: &payload,
        };
        let batch = EncodeBatchRequestFrame::from_request(&request).unwrap();
        assert_eq!(batch.count, 8);
        let mut buf = Vec::new();
        batch.encode_into(&mut buf);
        let (Frame::EncodeBatchRequest(view), consumed) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(consumed, buf.len());
        assert_eq!(view.session_id, batch.session_id);
        assert_eq!(view.scheme, batch.scheme);
        assert_eq!(view.cost_model, batch.cost_model);
        assert_eq!((view.groups, view.burst_len, view.count), (4, 8, 8));
        assert!(view.want_masks);
        assert_eq!(view.payload, &payload);

        // Count-field corruption is a typed error.
        let count_at = HEADER_LEN + BATCH_REQUEST_HEAD_LEN - 6;
        let mut bad = buf.clone();
        bad[count_at] = 9;
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::BadBatchCount { count: 9, got: 8 })
        );
        let mut bad = buf.clone();
        bad[count_at] = 0;
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::BadBatchCount { count: 0, got: 8 })
        );

        // Batch tags do not exist below protocol 3.
        let mut old = buf.clone();
        old[2] = V2_VERSION;
        assert_eq!(
            decode_frame(&old),
            Err(WireError::UnknownFrameType(6)),
            "a v2 header must treat the batch tag as unknown"
        );

        // The response echoes the count and decodes lazily.
        let per_group = [CostBreakdown::new(5, 6); 4];
        let masks = [InversionMask::from_bits(0b11); 8];
        let mut buf = Vec::new();
        EncodeBatchResponseFrame {
            session_id: 0xBA7C,
            bursts: 8,
            count: 8,
            per_group: &per_group,
            masks: &masks,
        }
        .encode_into(&mut buf);
        let (Frame::EncodeBatchResponse(view), consumed) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(consumed, buf.len());
        assert_eq!((view.session_id, view.bursts, view.count), (0xBA7C, 8, 8));
        assert_eq!(view.group_count(), 4);
        assert_eq!(view.mask_count(), 8);
        assert_eq!(view.per_group().collect::<Vec<_>>(), per_group);
        assert_eq!(view.masks().collect::<Vec<_>>(), masks);

        // Record-count corruption is still cross-checked.
        buf[HEADER_LEN + 20] ^= 1;
        assert_eq!(decode_frame(&buf), Err(WireError::BodyMismatch));
    }

    fn sample_trace_event(request_id: u64) -> TraceEvent {
        TraceEvent {
            request_id,
            session_id: 7,
            enqueue_ns: 1_000 + request_id,
            queue_wait_ns: 10,
            encode_ns: 20,
            verify_ns: 5,
            total_ns: 40,
            bursts: 4,
            scheme_tag: 6,
            outcome: TraceOutcome::Ok,
            shard: 1,
        }
    }

    #[test]
    fn telemetry_frames_roundtrip() {
        let events = [sample_trace_event(1), sample_trace_event(2)];
        let mut buf = Vec::new();
        encode_trace_dump_request(&mut buf, 128);
        encode_trace_dump_response(&mut buf, &events);
        encode_slowlog_request(&mut buf, 16);
        encode_slowlog_response(&mut buf, 1_000_000, &events[..1]);

        let (frame, n1) = decode_frame(&buf).unwrap();
        assert_eq!(frame, Frame::TraceDumpRequest(128));
        let (Frame::TraceDumpResponse(view), n2) = decode_frame(&buf[n1..]).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(view.event_count(), 2);
        assert_eq!(view.events().collect::<Vec<_>>(), events);
        let (frame, n3) = decode_frame(&buf[n1 + n2..]).unwrap();
        assert_eq!(frame, Frame::SlowlogRequest(16));
        let (Frame::SlowlogResponse(view), n4) = decode_frame(&buf[n1 + n2 + n3..]).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(view.threshold_ns, 1_000_000);
        assert_eq!(view.entry_count(), 1);
        assert_eq!(view.entries().collect::<Vec<_>>(), &events[..1]);
        assert_eq!(n1 + n2 + n3 + n4, buf.len());

        // Empty dumps decode cleanly too.
        let mut buf = Vec::new();
        encode_trace_dump_response(&mut buf, &[]);
        let (Frame::TraceDumpResponse(view), _) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(view.event_count(), 0);
    }

    #[test]
    fn telemetry_frames_reject_corruption_typed() {
        let events = [sample_trace_event(1)];
        let mut buf = Vec::new();
        encode_trace_dump_response(&mut buf, &events);

        // A count field disagreeing with the body length.
        let mut bad = buf.clone();
        bad[HEADER_LEN] = 2;
        assert_eq!(decode_frame(&bad), Err(WireError::BodyMismatch));

        // An undefined outcome byte is caught eagerly at decode.
        let mut bad = buf.clone();
        bad[HEADER_LEN + 4 + TraceEvent::OUTCOME_BYTE_AT] = 9;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownTraceOutcome(9)));

        // Same checks behind the slowlog's threshold prefix.
        let mut buf = Vec::new();
        encode_slowlog_response(&mut buf, 500, &events);
        let mut bad = buf.clone();
        bad[HEADER_LEN + 8 + 4 + TraceEvent::OUTCOME_BYTE_AT] = 7;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownTraceOutcome(7)));

        // Request bodies must be exactly the u32 bound.
        let mut bad = Vec::new();
        encode_trace_dump_request(&mut bad, 1);
        bad[4..8].copy_from_slice(&5u32.to_le_bytes());
        bad.push(0);
        assert_eq!(decode_frame(&bad), Err(WireError::BodyMismatch));
    }

    #[test]
    fn telemetry_tags_do_not_exist_below_v4() {
        let mut requests = Vec::new();
        encode_trace_dump_request(&mut requests, 8);
        encode_slowlog_request(&mut requests, 8);
        let mut offset = 0;
        while offset < requests.len() {
            let (_, len) = decode_frame(&requests[offset..]).unwrap();
            let mut old = requests[offset..offset + len].to_vec();
            old[2] = V3_VERSION;
            let tag = old[3];
            assert_eq!(
                decode_frame(&old),
                Err(WireError::UnknownFrameType(tag)),
                "a v3 header must treat telemetry tag {tag} as unknown"
            );
            offset += len;
        }
    }

    #[test]
    fn from_request_rejects_undividable_payloads() {
        let payload = [0u8; 12];
        let request = EncodeRequestFrame {
            session_id: 1,
            scheme: Scheme::Raw,
            cost_model: CostModel::Inline,
            groups: 1,
            burst_len: 8,
            want_masks: false,
            verify: VerifyMode::Off,
            payload: &payload,
        };
        assert!(EncodeBatchRequestFrame::from_request(&request).is_none());
        let ok = EncodeRequestFrame {
            payload: &payload[..8],
            ..request
        };
        assert_eq!(EncodeBatchRequestFrame::from_request(&ok).unwrap().count, 1);
    }

    #[test]
    fn cost_models_roundtrip_and_parse() {
        let named: OperatingPoint = "pod12@3.2".parse().unwrap();
        let models = [
            CostModel::Inline,
            CostModel::Weights(CostWeights::new(3, 1).unwrap()),
            CostModel::Named(named),
        ];
        let payload = [0u8; 8];
        for model in models {
            let mut buf = Vec::new();
            EncodeRequestFrame {
                session_id: 7,
                scheme: Scheme::OptFixed,
                cost_model: model,
                groups: 1,
                burst_len: 8,
                want_masks: false,
                verify: VerifyMode::Off,
                payload: &payload,
            }
            .encode_into(&mut buf);
            let (Frame::EncodeRequest(view), _) = decode_frame(&buf).unwrap() else {
                panic!("wrong frame type");
            };
            assert_eq!(view.cost_model, model);
            // The string form round-trips through FromStr as well.
            assert_eq!(model.to_string().parse::<CostModel>().unwrap(), model);
        }
        assert_eq!("inline".parse::<CostModel>().unwrap(), CostModel::Inline);
        assert_eq!(
            "sstl15@6.4".parse::<CostModel>().unwrap(),
            CostModel::Named("sstl15@6.4".parse().unwrap())
        );
        for bad in ["nope", "3", "0,0", "lvds@1", "pod12@0"] {
            assert!(bad.parse::<CostModel>().is_err(), "{bad:?}");
            assert!(!ParseCostModelError(bad.to_owned()).to_string().is_empty());
        }
    }

    #[test]
    fn malformed_cost_model_fields_are_typed_errors() {
        let payload = [0u8; 8];
        let mut buf = Vec::new();
        EncodeRequestFrame {
            session_id: 7,
            scheme: Scheme::OptFixed,
            cost_model: CostModel::Weights(CostWeights::FIXED),
            groups: 1,
            burst_len: 8,
            want_masks: false,
            verify: VerifyMode::Off,
            payload: &payload,
        }
        .encode_into(&mut buf);
        let field_at = HEADER_LEN + 8 + 1 + CostWeights::WIRE_BYTES;

        // Unknown cost-model tag.
        let mut bad = buf.clone();
        bad[field_at] = 9;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownCostModelTag(9)));

        // Weights model carrying an all-zero (invalid) pair.
        let mut bad = buf.clone();
        bad[field_at + 1..field_at + 1 + CostWeights::WIRE_BYTES].fill(0);
        assert_eq!(decode_frame(&bad), Err(WireError::BadWeights));

        // Named model with an unknown interface, then a zero rate.
        let mut bad = buf.clone();
        bad[field_at] = 2;
        bad[field_at + 1] = 77;
        assert_eq!(decode_frame(&bad), Err(WireError::UnknownInterfaceTag(77)));
        let mut bad = buf;
        bad[field_at] = 2;
        bad[field_at + 1] = NamedInterface::Pod12.wire_tag();
        bad[field_at + 5..field_at + 9].fill(0);
        assert_eq!(decode_frame(&bad), Err(WireError::BadDataRate));
    }

    /// Hand-assembles a version-1 encode-request frame (the layout this
    /// protocol shipped with before the cost-model field existed).
    fn encode_v1_request(
        session_id: u64,
        scheme: Scheme,
        groups: u16,
        burst_len: u8,
        want_masks: bool,
        payload: &[u8],
    ) -> Vec<u8> {
        let (scheme_tag, weights) = scheme_to_wire(scheme);
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(LEGACY_VERSION);
        out.push(tag::ENCODE_REQUEST);
        out.extend_from_slice(&((V1_REQUEST_HEAD_LEN + payload.len()) as u32).to_le_bytes());
        out.extend_from_slice(&session_id.to_le_bytes());
        out.push(scheme_tag);
        out.extend_from_slice(&weights.to_le_bytes());
        out.extend_from_slice(&groups.to_le_bytes());
        out.push(burst_len);
        out.push(u8::from(want_masks));
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn v1_frames_are_still_decoded() {
        // A v1 request decodes to the same view a v2 Inline request does.
        let payload = [9u8, 8, 7, 6, 5, 4, 3, 2];
        let scheme = Scheme::Opt(CostWeights::new(2, 5).unwrap());
        let v1 = encode_v1_request(0xC0DE, scheme, 4, 8, true, &payload);
        let (Frame::EncodeRequest(view), consumed) = decode_frame(&v1).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(consumed, v1.len());
        assert_eq!(view.session_id, 0xC0DE);
        assert_eq!(view.scheme, scheme);
        assert_eq!(view.cost_model, CostModel::Inline);
        assert_eq!(view.payload, &payload);

        // v1 response/error/metrics bodies are byte-identical to v2:
        // re-stamping a v2 frame's version byte must decode unchanged.
        let mut buf = Vec::new();
        EncodeResponseFrame {
            session_id: 3,
            bursts: 4,
            per_group: &[CostBreakdown::new(1, 2)],
            masks: &[InversionMask::from_bits(5)],
        }
        .encode_into(&mut buf);
        encode_metrics_request(&mut buf);
        encode_metrics_response(&mut buf, "{}");
        ErrorFrame {
            code: ErrorCode::Overloaded,
            message: "busy",
        }
        .encode_into(&mut buf);
        let mut offset = 0;
        while offset < buf.len() {
            let (v2_frame, len) = decode_frame(&buf[offset..]).unwrap();
            let mut v1_bytes = buf[offset..offset + len].to_vec();
            v1_bytes[2] = LEGACY_VERSION;
            let (v1_frame, v1_len) = decode_frame(&v1_bytes).unwrap();
            assert_eq!(v1_len, len);
            assert_eq!(v1_frame, v2_frame);
            offset += len;
        }

        // Anything beyond the two known versions stays rejected.
        let mut future = encode_v1_request(1, Scheme::Raw, 1, 8, false, &[0u8; 8]);
        future[2] = VERSION + 1;
        assert_eq!(
            decode_frame(&future),
            Err(WireError::UnsupportedVersion(VERSION + 1))
        );
    }

    #[test]
    fn durability_admin_frames_roundtrip() {
        let status = SnapshotStatus {
            configured: true,
            generation: 7,
            snapshots_taken: 3,
            last_sessions: 120,
            last_bytes: 4096,
            restored_sessions: 11,
        };
        let mut buf = Vec::new();
        encode_snapshot_request(&mut buf);
        encode_snapshot_status_request(&mut buf);
        encode_restore_request(&mut buf);
        status.encode_into(&mut buf);

        let (frame, n1) = decode_frame(&buf).unwrap();
        assert_eq!(frame, Frame::SnapshotRequest);
        let (frame, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(frame, Frame::SnapshotStatusRequest);
        let (frame, n3) = decode_frame(&buf[n1 + n2..]).unwrap();
        assert_eq!(frame, Frame::RestoreRequest);
        let (frame, n4) = decode_frame(&buf[n1 + n2 + n3..]).unwrap();
        assert_eq!(frame, Frame::SnapshotStatus(status));
        assert_eq!(n1 + n2 + n3 + n4, buf.len());

        // The default status (durability off) round-trips too.
        let mut buf = Vec::new();
        SnapshotStatus::default().encode_into(&mut buf);
        let (frame, _) = decode_frame(&buf).unwrap();
        assert_eq!(frame, Frame::SnapshotStatus(SnapshotStatus::default()));
    }

    #[test]
    fn durability_frames_reject_corruption_typed() {
        // Admin requests must carry empty bodies.
        let mut bad = Vec::new();
        encode_snapshot_request(&mut bad);
        bad[4..8].copy_from_slice(&1u32.to_le_bytes());
        bad.push(0);
        assert_eq!(decode_frame(&bad), Err(WireError::BodyMismatch));

        // The status body is fixed-width: short is truncated, long is a
        // mismatch, and the configured byte is two-valued.
        let mut buf = Vec::new();
        SnapshotStatus {
            configured: true,
            generation: 1,
            ..SnapshotStatus::default()
        }
        .encode_into(&mut buf);
        let mut short = buf.clone();
        short.truncate(buf.len() - 1);
        short[4..8].copy_from_slice(&((SNAPSHOT_STATUS_WIRE_BYTES - 1) as u32).to_le_bytes());
        assert!(matches!(
            decode_frame(&short),
            Err(WireError::Truncated { .. })
        ));
        let mut long = buf.clone();
        long.push(0);
        long[4..8].copy_from_slice(&((SNAPSHOT_STATUS_WIRE_BYTES + 1) as u32).to_le_bytes());
        assert_eq!(decode_frame(&long), Err(WireError::BodyMismatch));
        let mut bad_flag = buf;
        bad_flag[HEADER_LEN] = 2;
        assert_eq!(decode_frame(&bad_flag), Err(WireError::UnknownFlags(2)));
    }

    #[test]
    fn durability_tags_do_not_exist_below_v6() {
        let mut frames = Vec::new();
        encode_snapshot_request(&mut frames);
        encode_snapshot_status_request(&mut frames);
        encode_restore_request(&mut frames);
        SnapshotStatus::default().encode_into(&mut frames);
        let mut offset = 0;
        while offset < frames.len() {
            let (_, len) = decode_frame(&frames[offset..]).unwrap();
            let mut old = frames[offset..offset + len].to_vec();
            old[2] = V5_VERSION;
            let tag = old[3];
            assert_eq!(
                decode_frame(&old),
                Err(WireError::UnknownFrameType(tag)),
                "a v5 header must treat durability tag {tag} as unknown"
            );
            offset += len;
        }
    }

    #[test]
    fn session_limit_code_roundtrips_and_downgrades() {
        // The v6 code survives the wire…
        let mut buf = Vec::new();
        ErrorFrame {
            code: ErrorCode::SessionLimit,
            message: "shard 0 is at its session limit",
        }
        .encode_into(&mut buf);
        let (Frame::Error(view), _) = decode_frame(&buf).unwrap() else {
            panic!("wrong frame type");
        };
        assert_eq!(view.code, ErrorCode::SessionLimit);

        // …and the writer downgrades it for pre-v6 peers, leaving every
        // older code untouched under every version.
        for version in LEGACY_VERSION..DURABILITY_MIN_VERSION {
            assert_eq!(
                ErrorCode::SessionLimit.downgrade_for(version),
                ErrorCode::Overloaded
            );
            assert_eq!(
                ErrorCode::VerifyMismatch.downgrade_for(version),
                ErrorCode::VerifyMismatch
            );
        }
        assert_eq!(
            ErrorCode::SessionLimit.downgrade_for(DURABILITY_MIN_VERSION),
            ErrorCode::SessionLimit
        );
        assert_eq!(ErrorCode::from_u8(11), Ok(ErrorCode::SessionLimit));
        assert_eq!(ErrorCode::from_u8(12), Err(WireError::UnknownErrorCode(12)));
    }
}
