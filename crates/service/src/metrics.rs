//! Per-shard service metrics.
//!
//! Each shard owns one [`ShardMetrics`] of plain atomic counters — workers
//! and clients bump them lock-free and allocation-free on the hot path —
//! and [`MetricsRegistry::snapshot`] turns the whole registry into an
//! owned, serialisable [`MetricsSnapshot`]. The batched data plane adds a
//! `batch` block per shard: worker-pass count, coalesced-request count
//! and a power-of-two pass-size histogram from which the JSON reports the
//! p50/p99 pass size plus the mean bursts per request. The engine stamps the shared
//! plan-cache counters ([`dbi_core::PlanCacheStats`]: hits, misses,
//! evictions, resident plans) into the snapshot as well, and a `kernel`
//! block records which slab kernel tier the workers dispatch to
//! ([`dbi_core::simd::selected_kernel`]) together with the detected CPU
//! features — so a scraped metrics line names the hardware path behind
//! its throughput numbers. The snapshot's
//! [`to_json`](MetricsSnapshot::to_json) form is what the service answers
//! metrics requests with; it is handwritten JSON (no serialisation crate
//! exists offline) with a fixed key order, so it is easy to assert on in
//! tests and to scrape. [`to_prometheus`](MetricsSnapshot::to_prometheus)
//! renders the same snapshot in Prometheus text exposition format.
//!
//! The connection plane adds one engine-global `connections` block
//! ([`ConnectionMetrics`]): accepted/active/closed counts, the
//! slow-consumer drop count, and the largest read and write buffer any
//! connection has grown. The block is owned by the TCP server's I/O
//! threads, not the registry; an engine with no server attached reports
//! it zeroed.
//!
//! The telemetry plane adds three per-shard blocks (see
//! [`crate::telemetry`]): a `rate` block (requests/s and rejects/s over a
//! sliding [`RATE_WINDOW_SECONDS`]-second window), a `queue_depth_peak`
//! high-watermark next to the instantaneous depth, and a `latency` block
//! with p50/p90/p99/p999 for the queue-wait, encode, verify and
//! total-service stages — log-bucketed lock-free histograms, same pattern
//! as `batch_hist`.
//!
//! The durable session plane (see [`crate::persist`]) adds a per-shard
//! `sessions_evicted` counter and `journal` block (records and bytes the
//! shard's worker has appended), plus one engine-global `durability`
//! block mirroring the [`SnapshotStatus`] admin response: whether a
//! persist directory is configured, the journal generation, snapshots
//! taken, the last snapshot's session count and byte size, and sessions
//! restored from disk. An engine without persistence reports the block
//! with `configured: false` and zeros.

use crate::telemetry::{log2_percentile, LatencyHistogram, LatencyStats, RateWindow};
use crate::wire::SnapshotStatus;
use dbi_core::PlanCacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::telemetry::window::RATE_WINDOW_SECONDS;

/// Number of power-of-two histogram buckets tracking worker-pass sizes:
/// bucket *i* counts passes of `[2^i, 2^(i+1))` bursts, the last bucket
/// absorbing everything beyond.
pub const BATCH_BUCKETS: usize = 17;

/// Lock-free counters of one shard. All increments use relaxed ordering:
/// the counters are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    requests: AtomicU64,
    rejected: AtomicU64,
    bytes: AtomicU64,
    bursts: AtomicU64,
    transitions_saved: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    sessions: AtomicU64,
    sessions_evicted: AtomicU64,
    journal_records: AtomicU64,
    journal_bytes: AtomicU64,
    passes: AtomicU64,
    coalesced: AtomicU64,
    dispatches: AtomicU64,
    dispatch_chains: AtomicU64,
    full_dispatches: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    verified: AtomicU64,
    verify_failures: AtomicU64,
    request_rate: RateWindow,
    reject_rate: RateWindow,
    queue_wait_hist: LatencyHistogram,
    encode_hist: LatencyHistogram,
    verify_hist: LatencyHistogram,
    total_hist: LatencyHistogram,
}

/// The histogram bucket a pass of `bursts` bursts lands in.
fn batch_bucket(bursts: u64) -> usize {
    (bursts.max(1).ilog2() as usize).min(BATCH_BUCKETS - 1)
}

impl ShardMetrics {
    /// Records one successfully executed request.
    pub fn record_request(&self, payload_bytes: u64, bursts: u64, transitions_saved: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_bytes, Ordering::Relaxed);
        self.bursts.fetch_add(bursts, Ordering::Relaxed);
        self.transitions_saved
            .fetch_add(transitions_saved, Ordering::Relaxed);
        self.request_rate.record();
    }

    /// Records the stage breakdown of one worker-handled request into the
    /// shard's latency histograms. `encode_ns`/`verify_ns` are `None` for
    /// requests that never reached the respective stage (rejects never
    /// encode; only verify-mode requests verify) — a `None` stage is not
    /// recorded at all, so zeros never dilute its distribution.
    pub fn record_stage_sample(
        &self,
        queue_wait_ns: u64,
        encode_ns: Option<u64>,
        verify_ns: Option<u64>,
        total_ns: u64,
    ) {
        self.queue_wait_hist.record(queue_wait_ns);
        if let Some(nanos) = encode_ns {
            self.encode_hist.record(nanos);
        }
        if let Some(nanos) = verify_ns {
            self.verify_hist.record(nanos);
        }
        self.total_hist.record(total_ns);
    }

    /// Records one worker pass of `bursts` total bursts, `coalesced` of
    /// whose requests were drained from the queue behind the pass opener.
    pub fn record_pass(&self, bursts: u64, coalesced: u64) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(coalesced, Ordering::Relaxed);
        self.batch_hist[batch_bucket(bursts)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one packed kernel dispatch of `chains` lane-group chains;
    /// `full` marks a dispatch whose chain count reached the selected
    /// kernel's lane width — the lane-occupancy counters behind the
    /// `batch` block's `lane_occupancy` and `full_dispatch_fraction`.
    pub fn record_dispatch(&self, chains: u64, full: bool) {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatch_chains.fetch_add(chains, Ordering::Relaxed);
        if full {
            self.full_dispatches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one rejected request (validation failure or backpressure).
    pub fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.reject_rate.record();
    }

    /// Records one verify-mode round trip: the worker decoded its own
    /// output and compared it against the request. `ok` is `false` when
    /// the comparison found an encode/decode asymmetry (the request then
    /// fails with `VerifyMismatch`).
    pub fn record_verify(&self, ok: bool) {
        self.verified.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.verify_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a request entering the shard queue, updating the depth
    /// high-watermark (a scrape between passes reads an instantaneous
    /// depth of ~0; the peak is what exposes backpressure pressure).
    pub fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a request leaving the shard queue.
    pub fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a newly created encode session.
    pub fn session_created(&self) {
        self.sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an idle session evicted to make room for a fresh id on a
    /// full shard.
    pub fn session_evicted(&self) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one journal flush of `records` session records totalling
    /// `bytes` on-disk bytes.
    pub fn record_journal(&self, records: u64, bytes: u64) {
        self.journal_records.fetch_add(records, Ordering::Relaxed);
        self.journal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reads the counters into an owned snapshot.
    #[must_use]
    pub fn snapshot(&self) -> ShardSnapshot {
        let mut batch_hist = [0u64; BATCH_BUCKETS];
        for (slot, counter) in batch_hist.iter_mut().zip(&self.batch_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ShardSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            bursts: self.bursts.load(Ordering::Relaxed),
            transitions_saved: self.transitions_saved.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            journal_records: self.journal_records.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            passes: self.passes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            dispatch_chains: self.dispatch_chains.load(Ordering::Relaxed),
            full_dispatches: self.full_dispatches.load(Ordering::Relaxed),
            batch_hist,
            verified: self.verified.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            requests_per_s: self.request_rate.rate_per_second(),
            rejects_per_s: self.reject_rate.rate_per_second(),
            latency: StageLatency {
                queue_wait: self.queue_wait_hist.snapshot(),
                encode: self.encode_hist.snapshot(),
                verify: self.verify_hist.snapshot(),
                total: self.total_hist.snapshot(),
            },
        }
    }
}

/// Lock-free counters of the connection plane — one set per server, not
/// per shard, because connections are owned by the I/O threads, not the
/// encode workers. Same discipline as [`ShardMetrics`]: relaxed atomics,
/// bumped allocation-free from the event loop.
#[derive(Debug, Default)]
pub struct ConnectionMetrics {
    active: AtomicU64,
    accepted: AtomicU64,
    closed: AtomicU64,
    dropped_slow: AtomicU64,
    read_buf_high_watermark: AtomicU64,
    write_buf_high_watermark: AtomicU64,
}

impl ConnectionMetrics {
    /// Records an accepted connection entering the event loop.
    pub fn on_accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection leaving the event loop, however it ended
    /// (peer hang-up, protocol violation, slow-consumer drop, shutdown).
    pub fn on_close(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a connection dropped for falling behind its responses —
    /// its write buffer crossed the configured high-watermark. The drop
    /// still counts as a close via [`ConnectionMetrics::on_close`]; this
    /// counter attributes the cause.
    pub fn on_dropped_slow(&self) {
        self.dropped_slow.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one connection's observed read-buffer peak into the plane's
    /// high-watermark.
    pub fn record_read_buf(&self, bytes: u64) {
        self.read_buf_high_watermark
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// Folds one connection's observed write-buffer peak into the plane's
    /// high-watermark.
    pub fn record_write_buf(&self, bytes: u64) {
        self.write_buf_high_watermark
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// Reads the counters into an owned snapshot.
    #[must_use]
    pub fn snapshot(&self) -> ConnectionsSnapshot {
        ConnectionsSnapshot {
            active: self.active.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            dropped_slow: self.dropped_slow.load(Ordering::Relaxed),
            read_buf_high_watermark: self.read_buf_high_watermark.load(Ordering::Relaxed),
            write_buf_high_watermark: self.write_buf_high_watermark.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the connection-plane counters. All zeros for
/// an engine that is not fronted by a TCP server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectionsSnapshot {
    /// Connections currently multiplexed by the I/O threads.
    pub active: u64,
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections closed since startup, for any reason.
    pub closed: u64,
    /// Connections dropped because their write buffer crossed the
    /// slow-consumer high-watermark (a subset of `closed`).
    pub dropped_slow: u64,
    /// Largest read buffer any connection has grown, in bytes.
    pub read_buf_high_watermark: u64,
    /// Largest write buffer any connection has grown, in bytes.
    pub write_buf_high_watermark: u64,
}

impl ConnectionsSnapshot {
    /// Folds another connection-plane snapshot into this one: the
    /// counters (and `active`) sum; the buffer high-watermarks take the
    /// maximum, because a watermark aggregated across planes is still
    /// "the largest buffer any connection grew".
    fn add(&mut self, other: &ConnectionsSnapshot) {
        self.active += other.active;
        self.accepted += other.accepted;
        self.closed += other.closed;
        self.dropped_slow += other.dropped_slow;
        self.read_buf_high_watermark = self
            .read_buf_high_watermark
            .max(other.read_buf_high_watermark);
        self.write_buf_high_watermark = self
            .write_buf_high_watermark
            .max(other.write_buf_high_watermark);
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        write!(
            out,
            "{{\"active\":{},\"accepted\":{},\"closed\":{},\
             \"dropped_slow\":{},\"read_buf_high_watermark\":{},\
             \"write_buf_high_watermark\":{}}}",
            self.active,
            self.accepted,
            self.closed,
            self.dropped_slow,
            self.read_buf_high_watermark,
            self.write_buf_high_watermark,
        )
        .expect("writing to a String cannot fail");
    }
}

/// The four per-stage latency snapshots of one shard: where a request's
/// time goes, from queue admission to completion signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageLatency {
    /// Time between enqueue and a worker picking the request up.
    pub queue_wait: LatencyStats,
    /// Time in the encode kernel (executed requests only).
    pub encode: LatencyStats,
    /// Time in the verify round trip (verify-mode requests only).
    pub verify: LatencyStats,
    /// Total service time, enqueue to completion signal (every
    /// worker-handled request, including rejects).
    pub total: LatencyStats,
}

impl StageLatency {
    fn add(&mut self, other: &StageLatency) {
        self.queue_wait.add(&other.queue_wait);
        self.encode.add(&other.encode);
        self.verify.add(&other.verify);
        self.total.add(&other.total);
    }

    /// The stages as `(name, stats)` pairs, in reporting order.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, &LatencyStats); 4] {
        [
            ("queue_wait", &self.queue_wait),
            ("encode", &self.encode),
            ("verify", &self.verify),
            ("total", &self.total),
        ]
    }
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardSnapshot {
    /// Requests executed.
    pub requests: u64,
    /// Requests rejected (bad geometry/payload, backpressure, shutdown).
    pub rejected: u64,
    /// Payload bytes encoded.
    pub bytes: u64,
    /// Per-group bursts encoded.
    pub bursts: u64,
    /// Lane transitions avoided relative to sending the same stream raw.
    pub transitions_saved: u64,
    /// Requests currently sitting in the shard queue.
    pub queue_depth: u64,
    /// The deepest the shard queue has ever been — the high-watermark
    /// that exposes backpressure a between-passes scrape would miss.
    pub queue_depth_peak: u64,
    /// Encode sessions resident on the shard.
    pub sessions: u64,
    /// Idle sessions evicted to make room for fresh session ids once the
    /// shard hit its configured session bound.
    pub sessions_evicted: u64,
    /// Session records the shard's worker has appended to its journal.
    pub journal_records: u64,
    /// Bytes the shard's worker has flushed to its journal.
    pub journal_bytes: u64,
    /// Worker passes executed (each pass serves one or more coalesced
    /// requests of one session).
    pub passes: u64,
    /// Requests that were coalesced into another request's pass instead
    /// of opening their own.
    pub coalesced: u64,
    /// Packed kernel dispatches executed (one per round: a single
    /// `encode_lanes_into` sweep over every chain packed into the round).
    pub dispatches: u64,
    /// Lane-group chains encoded across all dispatches — `dispatch_chains
    /// / dispatches` is the average lane occupancy of a kernel sweep.
    pub dispatch_chains: u64,
    /// Dispatches whose chain count reached the selected kernel's lane
    /// width (a fully occupied SIMD sweep).
    pub full_dispatches: u64,
    /// Power-of-two histogram of pass sizes in bursts: bucket *i* counts
    /// passes of `[2^i, 2^(i+1))` bursts.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Verify-mode requests whose output was decoded and compared.
    pub verified: u64,
    /// Verify-mode requests whose round trip exposed an encode/decode
    /// asymmetry (answered with `VerifyMismatch`).
    pub verify_failures: u64,
    /// Executed requests per second over the sliding
    /// [`RATE_WINDOW_SECONDS`]-second window, as of the snapshot.
    pub requests_per_s: f64,
    /// Rejected requests per second over the same window.
    pub rejects_per_s: f64,
    /// Per-stage latency histograms: queue-wait, encode, verify, total.
    pub latency: StageLatency,
}

impl ShardSnapshot {
    fn add(&mut self, other: &ShardSnapshot) {
        self.requests += other.requests;
        self.rejected += other.rejected;
        self.bytes += other.bytes;
        self.bursts += other.bursts;
        self.transitions_saved += other.transitions_saved;
        self.queue_depth += other.queue_depth;
        self.sessions += other.sessions;
        self.sessions_evicted += other.sessions_evicted;
        self.journal_records += other.journal_records;
        self.journal_bytes += other.journal_bytes;
        self.passes += other.passes;
        self.coalesced += other.coalesced;
        self.dispatches += other.dispatches;
        self.dispatch_chains += other.dispatch_chains;
        self.full_dispatches += other.full_dispatches;
        for (mine, theirs) in self.batch_hist.iter_mut().zip(&other.batch_hist) {
            *mine += theirs;
        }
        self.verified += other.verified;
        self.verify_failures += other.verify_failures;
        // The peak is summed like the other counters: the result is the
        // (upper bound) high-watermark of total queued work, consistent
        // with `queue_depth` above.
        self.queue_depth_peak += other.queue_depth_peak;
        self.requests_per_s += other.requests_per_s;
        self.rejects_per_s += other.rejects_per_s;
        self.latency.add(&other.latency);
    }

    /// The histogram percentile of the pass-size distribution in bursts,
    /// interpolated within the winning power-of-two bucket (see
    /// [`log2_percentile`]); 0 when no pass has been recorded.
    #[must_use]
    pub fn batch_size_percentile(&self, percentile: f64) -> u64 {
        log2_percentile(&self.batch_hist, percentile)
    }

    /// Mean bursts per executed request (0 when no request has run).
    #[must_use]
    pub fn bursts_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.bursts as f64 / self.requests as f64
        }
    }

    /// Mean lane-group chains per packed kernel dispatch (0 before the
    /// first dispatch) — how full the cross-session packing keeps the
    /// kernel sweeps.
    #[must_use]
    pub fn lane_occupancy(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.dispatch_chains as f64 / self.dispatches as f64
        }
    }

    /// Fraction of dispatches whose chain count reached the selected
    /// kernel's lane width (0 before the first dispatch).
    #[must_use]
    pub fn full_dispatch_fraction(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.full_dispatches as f64 / self.dispatches as f64
        }
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        write!(
            out,
            "{{\"requests\":{},\"rejected\":{},\"bytes\":{},\"bursts\":{},\
             \"transitions_saved\":{},\"queue_depth\":{},\
             \"queue_depth_peak\":{},\"sessions\":{},\
             \"sessions_evicted\":{},\
             \"journal\":{{\"records\":{},\"bytes\":{}}},\
             \"rate\":{{\"requests_per_s\":{:.1},\"rejects_per_s\":{:.1},\
             \"window_s\":{}}},\
             \"batch\":{{\"passes\":{},\"coalesced\":{},\"dispatches\":{},\
             \"lane_occupancy\":{:.1},\"full_dispatch_fraction\":{:.2},\
             \"size_p50\":{},\"size_p99\":{},\"bursts_per_request\":{:.1}}},\
             \"verify\":{{\"requests\":{},\"failures\":{}}},\"latency\":{{",
            self.requests,
            self.rejected,
            self.bytes,
            self.bursts,
            self.transitions_saved,
            self.queue_depth,
            self.queue_depth_peak,
            self.sessions,
            self.sessions_evicted,
            self.journal_records,
            self.journal_bytes,
            self.requests_per_s,
            self.rejects_per_s,
            RATE_WINDOW_SECONDS,
            self.passes,
            self.coalesced,
            self.dispatches,
            self.lane_occupancy(),
            self.full_dispatch_fraction(),
            self.batch_size_percentile(0.50),
            self.batch_size_percentile(0.99),
            self.bursts_per_request(),
            self.verified,
            self.verify_failures,
        )
        .expect("writing to a String cannot fail");
        for (index, (name, stats)) in self.latency.stages().into_iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            write!(
                out,
                "\"{name}\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\
                 \"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
                stats.count,
                stats.mean_ns(),
                stats.percentile_ns(0.50),
                stats.percentile_ns(0.90),
                stats.percentile_ns(0.99),
                stats.percentile_ns(0.999),
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("}}");
    }
}

/// The counters of every shard of one engine.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<ShardMetrics>,
}

impl MetricsRegistry {
    /// Creates a registry with `shards` zeroed counter sets.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// The counters of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &ShardMetrics {
        &self.shards[shard]
    }

    /// Number of shards in the registry.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Copies every shard's counters into an owned snapshot. The
    /// plan-cache block starts zeroed; the engine overwrites it with the
    /// live [`PlanCacheStats`] when it snapshots.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            per_shard: self.shards.iter().map(ShardMetrics::snapshot).collect(),
            plan_cache: PlanCacheStats::default(),
            connections: ConnectionsSnapshot::default(),
            durability: SnapshotStatus::default(),
            kernel: dbi_core::simd::selected_kernel().name(),
            forced_scalar: dbi_core::simd::forced_scalar(),
            cpu_features: dbi_core::simd::cpu_features(),
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<ShardSnapshot>,
    /// Counters of the engine's shared plan cache.
    pub plan_cache: PlanCacheStats,
    /// Counters of the connection plane fronting the engine; all zeros
    /// when no TCP server is attached (the registry itself has no
    /// connection counters — the server stamps the live block in when it
    /// serves a metrics request).
    pub connections: ConnectionsSnapshot,
    /// State of the durable session plane, mirroring the
    /// [`SnapshotStatus`] admin response; all zeros with
    /// `configured: false` when the engine was started without a persist
    /// directory (the registry itself holds no durability state — the
    /// engine stamps the live block in when it snapshots).
    pub durability: SnapshotStatus,
    /// The slab kernel tier every worker's batched path dispatches to
    /// ([`dbi_core::simd::selected_kernel`]) — `"scalar"` when pinned by
    /// `DBI_FORCE_SCALAR`.
    pub kernel: &'static str,
    /// Whether `DBI_FORCE_SCALAR` pinned dispatch to the scalar tier.
    pub forced_scalar: bool,
    /// The CPU features detected at startup, comma-joined.
    pub cpu_features: &'static str,
}

impl MetricsSnapshot {
    /// The counters summed across all shards.
    #[must_use]
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.per_shard {
            total.add(shard);
        }
        total
    }

    /// Folds another snapshot into this one, shard by shard — shard *i*
    /// of `other` is added onto shard *i* of `self`, extra shards are
    /// appended, and the plan-cache counters sum. Useful for aggregating
    /// scrapes of several engines (or of one engine across restarts) into
    /// one view; the kernel and durability blocks keep `self`'s values,
    /// so merge same-hardware, same-store snapshots if those blocks
    /// matter.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.per_shard.len() < other.per_shard.len() {
            self.per_shard
                .resize(other.per_shard.len(), ShardSnapshot::default());
        }
        for (mine, theirs) in self.per_shard.iter_mut().zip(&other.per_shard) {
            mine.add(theirs);
        }
        self.plan_cache.hits += other.plan_cache.hits;
        self.plan_cache.misses += other.plan_cache.misses;
        self.plan_cache.evictions += other.plan_cache.evictions;
        self.plan_cache.entries += other.plan_cache.entries;
        self.connections.add(&other.connections);
    }

    /// Serialises the snapshot as a single-line JSON object:
    /// `{"shards":[{...},...],"totals":{...},"plan_cache":{...},"connections":{...},"durability":{...},"kernel":{...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(128 * (self.per_shard.len() + 2));
        out.push_str("{\"shards\":[");
        for (index, shard) in self.per_shard.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            shard.write_json(&mut out);
        }
        out.push_str("],\"totals\":");
        self.totals().write_json(&mut out);
        write!(
            out,
            ",\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}}",
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.evictions,
            self.plan_cache.entries
        )
        .expect("writing to a String cannot fail");
        out.push_str(",\"connections\":");
        self.connections.write_json(&mut out);
        write!(
            out,
            ",\"durability\":{{\"configured\":{},\"generation\":{},\
             \"snapshots_taken\":{},\"last_sessions\":{},\"last_bytes\":{},\
             \"restored_sessions\":{}}}",
            self.durability.configured,
            self.durability.generation,
            self.durability.snapshots_taken,
            self.durability.last_sessions,
            self.durability.last_bytes,
            self.durability.restored_sessions,
        )
        .expect("writing to a String cannot fail");
        write!(
            out,
            ",\"kernel\":{{\"selected\":\"{}\",\"forced_scalar\":{},\"cpu_features\":\"{}\"}}",
            self.kernel, self.forced_scalar, self.cpu_features
        )
        .expect("writing to a String cannot fail");
        out.push('}');
        out
    }

    /// Renders the snapshot in Prometheus text exposition format: one
    /// `{shard="i"}`-labelled series per counter (scrapers sum shards
    /// themselves), a `dbi_stage_latency_nanoseconds` summary with
    /// `{shard,stage,quantile}` labels plus `_sum`/`_count`, the
    /// plan-cache counters, the connection-plane counters and buffer
    /// high-watermarks, and a `dbi_kernel_info` gauge carrying the
    /// dispatch tier and CPU features as labels.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        type Field = fn(&ShardSnapshot) -> u64;
        const COUNTERS: [(&str, &str, Field); 16] = [
            ("dbi_requests_total", "Requests executed.", |s| s.requests),
            ("dbi_rejected_total", "Requests rejected.", |s| s.rejected),
            ("dbi_bytes_total", "Payload bytes encoded.", |s| s.bytes),
            ("dbi_bursts_total", "Per-group bursts encoded.", |s| {
                s.bursts
            }),
            (
                "dbi_transitions_saved_total",
                "Lane transitions avoided versus sending the stream raw.",
                |s| s.transitions_saved,
            ),
            ("dbi_batch_passes_total", "Worker passes executed.", |s| {
                s.passes
            }),
            (
                "dbi_batch_coalesced_total",
                "Requests coalesced into another request's pass.",
                |s| s.coalesced,
            ),
            (
                "dbi_batch_dispatches_total",
                "Packed kernel dispatches executed.",
                |s| s.dispatches,
            ),
            (
                "dbi_batch_dispatch_chains_total",
                "Lane-group chains encoded across all packed dispatches.",
                |s| s.dispatch_chains,
            ),
            (
                "dbi_batch_full_dispatches_total",
                "Dispatches that filled the selected kernel's lane width.",
                |s| s.full_dispatches,
            ),
            (
                "dbi_verify_requests_total",
                "Verify-mode requests round-tripped.",
                |s| s.verified,
            ),
            (
                "dbi_verify_failures_total",
                "Verify round trips that exposed an encode/decode asymmetry.",
                |s| s.verify_failures,
            ),
            ("dbi_sessions_total", "Encode sessions created.", |s| {
                s.sessions
            }),
            (
                "dbi_sessions_evicted_total",
                "Idle sessions evicted to admit fresh session ids on a full shard.",
                |s| s.sessions_evicted,
            ),
            (
                "dbi_journal_records_total",
                "Session records appended to the shard's journal.",
                |s| s.journal_records,
            ),
            (
                "dbi_journal_bytes_total",
                "Bytes flushed to the shard's journal.",
                |s| s.journal_bytes,
            ),
        ];
        const GAUGES: [(&str, &str, Field); 2] = [
            ("dbi_queue_depth", "Requests currently queued.", |s| {
                s.queue_depth
            }),
            (
                "dbi_queue_depth_peak",
                "Queue-depth high-watermark since startup.",
                |s| s.queue_depth_peak,
            ),
        ];
        let mut out = String::with_capacity(1024 + 2048 * self.per_shard.len());
        for (name, help, field) in COUNTERS {
            writeln!(out, "# HELP {name} {help}").expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} counter").expect("writing to a String cannot fail");
            for (shard, snapshot) in self.per_shard.iter().enumerate() {
                writeln!(out, "{name}{{shard=\"{shard}\"}} {}", field(snapshot))
                    .expect("writing to a String cannot fail");
            }
        }
        for (name, help, field) in GAUGES {
            writeln!(out, "# HELP {name} {help}").expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} gauge").expect("writing to a String cannot fail");
            for (shard, snapshot) in self.per_shard.iter().enumerate() {
                writeln!(out, "{name}{{shard=\"{shard}\"}} {}", field(snapshot))
                    .expect("writing to a String cannot fail");
            }
        }
        for (name, help, field) in [
            (
                "dbi_requests_per_second",
                "Executed requests per second over the sliding window.",
                (|s| s.requests_per_s) as fn(&ShardSnapshot) -> f64,
            ),
            (
                "dbi_rejects_per_second",
                "Rejected requests per second over the sliding window.",
                |s| s.rejects_per_s,
            ),
            (
                "dbi_batch_lane_occupancy",
                "Mean lane-group chains per packed kernel dispatch.",
                |s| s.lane_occupancy(),
            ),
            (
                "dbi_batch_full_dispatch_fraction",
                "Fraction of dispatches that filled the kernel's lane width.",
                |s| s.full_dispatch_fraction(),
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} gauge").expect("writing to a String cannot fail");
            for (shard, snapshot) in self.per_shard.iter().enumerate() {
                writeln!(out, "{name}{{shard=\"{shard}\"}} {:.1}", field(snapshot))
                    .expect("writing to a String cannot fail");
            }
        }
        let name = "dbi_stage_latency_nanoseconds";
        writeln!(out, "# HELP {name} Per-stage request latency.")
            .expect("writing to a String cannot fail");
        writeln!(out, "# TYPE {name} summary").expect("writing to a String cannot fail");
        for (shard, snapshot) in self.per_shard.iter().enumerate() {
            for (stage, stats) in snapshot.latency.stages() {
                for (quantile, value) in [
                    ("0.5", stats.percentile_ns(0.50)),
                    ("0.9", stats.percentile_ns(0.90)),
                    ("0.99", stats.percentile_ns(0.99)),
                    ("0.999", stats.percentile_ns(0.999)),
                ] {
                    writeln!(
                        out,
                        "{name}{{shard=\"{shard}\",stage=\"{stage}\",quantile=\"{quantile}\"}} {value}"
                    )
                    .expect("writing to a String cannot fail");
                }
                writeln!(
                    out,
                    "{name}_sum{{shard=\"{shard}\",stage=\"{stage}\"}} {}",
                    stats.sum_ns
                )
                .expect("writing to a String cannot fail");
                writeln!(
                    out,
                    "{name}_count{{shard=\"{shard}\",stage=\"{stage}\"}} {}",
                    stats.count
                )
                .expect("writing to a String cannot fail");
            }
        }
        for (name, kind, help, value) in [
            (
                "dbi_plan_cache_hits_total",
                "counter",
                "Plan-cache hits.",
                self.plan_cache.hits,
            ),
            (
                "dbi_plan_cache_misses_total",
                "counter",
                "Plan-cache misses.",
                self.plan_cache.misses,
            ),
            (
                "dbi_plan_cache_evictions_total",
                "counter",
                "Plan-cache evictions.",
                self.plan_cache.evictions,
            ),
            (
                "dbi_plan_cache_entries",
                "gauge",
                "Plans resident in the cache.",
                self.plan_cache.entries as u64,
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} {kind}").expect("writing to a String cannot fail");
            writeln!(out, "{name} {value}").expect("writing to a String cannot fail");
        }
        for (name, kind, help, value) in [
            (
                "dbi_connections_active",
                "gauge",
                "Connections currently multiplexed by the I/O threads.",
                self.connections.active,
            ),
            (
                "dbi_connections_accepted_total",
                "counter",
                "Connections accepted.",
                self.connections.accepted,
            ),
            (
                "dbi_connections_closed_total",
                "counter",
                "Connections closed, for any reason.",
                self.connections.closed,
            ),
            (
                "dbi_connections_dropped_slow_total",
                "counter",
                "Connections dropped for crossing the slow-consumer write high-watermark.",
                self.connections.dropped_slow,
            ),
            (
                "dbi_connection_read_buf_high_watermark_bytes",
                "gauge",
                "Largest read buffer any connection has grown.",
                self.connections.read_buf_high_watermark,
            ),
            (
                "dbi_connection_write_buf_high_watermark_bytes",
                "gauge",
                "Largest write buffer any connection has grown.",
                self.connections.write_buf_high_watermark,
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} {kind}").expect("writing to a String cannot fail");
            writeln!(out, "{name} {value}").expect("writing to a String cannot fail");
        }
        for (name, kind, help, value) in [
            (
                "dbi_durability_configured",
                "gauge",
                "Whether a persist directory is configured (1) or not (0).",
                u64::from(self.durability.configured),
            ),
            (
                "dbi_durability_generation",
                "gauge",
                "Generation the shard journals are currently writing at.",
                self.durability.generation,
            ),
            (
                "dbi_snapshots_taken_total",
                "counter",
                "Engine snapshots written since startup (including the self-compacting recovery snapshot).",
                self.durability.snapshots_taken,
            ),
            (
                "dbi_snapshot_last_sessions",
                "gauge",
                "Sessions captured by the most recent snapshot.",
                self.durability.last_sessions,
            ),
            (
                "dbi_snapshot_last_bytes",
                "gauge",
                "On-disk size of the most recent snapshot in bytes.",
                self.durability.last_bytes,
            ),
            (
                "dbi_sessions_restored_total",
                "counter",
                "Sessions restored from disk (at startup or via the restore admin frame).",
                self.durability.restored_sessions,
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").expect("writing to a String cannot fail");
            writeln!(out, "# TYPE {name} {kind}").expect("writing to a String cannot fail");
            writeln!(out, "{name} {value}").expect("writing to a String cannot fail");
        }
        writeln!(
            out,
            "# HELP dbi_kernel_info Selected slab kernel tier and detected CPU features."
        )
        .expect("writing to a String cannot fail");
        writeln!(out, "# TYPE dbi_kernel_info gauge").expect("writing to a String cannot fail");
        writeln!(
            out,
            "dbi_kernel_info{{selected=\"{}\",forced_scalar=\"{}\",cpu_features=\"{}\"}} 1",
            self.kernel, self.forced_scalar, self.cpu_features
        )
        .expect("writing to a String cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_total() {
        let registry = MetricsRegistry::new(2);
        registry.shard(0).record_request(32, 4, 10);
        registry.shard(0).record_request(32, 4, 6);
        registry.shard(1).record_reject();
        registry.shard(1).session_created();
        registry.shard(1).enqueue();

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.per_shard[0].requests, 2);
        assert_eq!(snapshot.per_shard[0].bytes, 64);
        assert_eq!(snapshot.per_shard[0].transitions_saved, 16);
        assert_eq!(snapshot.per_shard[1].rejected, 1);
        assert_eq!(snapshot.per_shard[1].queue_depth, 1);
        registry.shard(1).dequeue();
        assert_eq!(registry.snapshot().per_shard[1].queue_depth, 0);

        let totals = snapshot.totals();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.rejected, 1);
        assert_eq!(totals.sessions, 1);
    }

    #[test]
    fn batch_counters_histogram_and_percentiles() {
        let metrics = ShardMetrics::default();
        metrics.record_pass(0, 0); // all-error pass lands in bucket 0
        for _ in 0..98 {
            metrics.record_pass(64, 1); // bucket 6
        }
        metrics.record_pass(70_000, 3); // beyond the last bucket boundary
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.passes, 100);
        assert_eq!(snapshot.coalesced, 101);
        assert_eq!(snapshot.batch_hist[0], 1);
        assert_eq!(snapshot.batch_hist[6], 98);
        assert_eq!(snapshot.batch_hist[BATCH_BUCKETS - 1], 1);
        // Interpolated within the [64, 128) bucket: p50's rank 50 sits
        // halfway through its 98 samples (after the 1 fast pass), p99's
        // rank 99 right at its end.
        assert_eq!(snapshot.batch_size_percentile(0.50), 96);
        assert_eq!(snapshot.batch_size_percentile(0.99), 128);
        assert_eq!(
            snapshot.batch_size_percentile(1.0),
            1 << (BATCH_BUCKETS - 1)
        );
        assert_eq!(ShardSnapshot::default().batch_size_percentile(0.5), 0);
        assert_eq!(ShardSnapshot::default().bursts_per_request(), 0.0);

        // Totals fold the histograms elementwise.
        let registry = MetricsRegistry::new(2);
        registry.shard(0).record_pass(8, 0);
        registry.shard(1).record_pass(8, 2);
        let totals = registry.snapshot().totals();
        assert_eq!(totals.passes, 2);
        assert_eq!(totals.coalesced, 2);
        assert_eq!(totals.batch_hist[3], 2);
    }

    #[test]
    fn batch_percentiles_interpolate_at_bucket_boundaries() {
        // One pass of 255 bursts lands in [128, 256): its p50 is the
        // bucket midpoint 192, not the old lower-bound answer of 128.
        let metrics = ShardMetrics::default();
        metrics.record_pass(255, 0);
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.batch_size_percentile(0.50), 192);
        // p0 reports the bucket floor, p100 its upper bound.
        assert_eq!(snapshot.batch_size_percentile(0.0), 128);
        assert_eq!(snapshot.batch_size_percentile(1.0), 256);

        // 256 crosses into the next bucket.
        let metrics = ShardMetrics::default();
        metrics.record_pass(256, 0);
        assert_eq!(metrics.snapshot().batch_size_percentile(0.50), 384);
    }

    #[test]
    fn verify_counters_accumulate_and_serialise() {
        let registry = MetricsRegistry::new(2);
        registry.shard(0).record_verify(true);
        registry.shard(0).record_verify(true);
        registry.shard(1).record_verify(false);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.per_shard[0].verified, 2);
        assert_eq!(snapshot.per_shard[0].verify_failures, 0);
        assert_eq!(snapshot.per_shard[1].verified, 1);
        assert_eq!(snapshot.per_shard[1].verify_failures, 1);
        let totals = snapshot.totals();
        assert_eq!((totals.verified, totals.verify_failures), (3, 1));
        assert!(snapshot
            .to_json()
            .contains("\"verify\":{\"requests\":1,\"failures\":1}"));
    }

    #[test]
    fn json_snapshot_has_the_documented_shape() {
        let registry = MetricsRegistry::new(1);
        registry.shard(0).record_request(8, 1, 2);
        let mut snapshot = registry.snapshot();
        snapshot.plan_cache = PlanCacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            entries: 2,
        };
        let json = snapshot.to_json();
        assert!(json.starts_with("{\"shards\":[{"));
        assert!(json.contains("\"requests\":1"));
        assert!(json.contains("\"transitions_saved\":2"));
        assert!(json.contains("\"batch\":{\"passes\":0,\"coalesced\":0"));
        assert!(json.contains("\"bursts_per_request\":1.0"));
        assert!(json.contains("\"verify\":{\"requests\":0,\"failures\":0}"));
        assert!(json.contains("\"queue_depth_peak\":0"));
        assert!(json.contains("\"rate\":{\"requests_per_s\":"));
        assert!(json.contains("\"window_s\":8}"));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"totals\":{"));
        assert!(
            json.contains("\"plan_cache\":{\"hits\":5,\"misses\":2,\"evictions\":1,\"entries\":2}")
        );
        // A registry snapshot has no connection plane or persist plane
        // attached, so both blocks are present but zeroed, sitting between
        // plan_cache and kernel.
        assert!(json.contains(
            ",\"connections\":{\"active\":0,\"accepted\":0,\"closed\":0,\
             \"dropped_slow\":0,\"read_buf_high_watermark\":0,\
             \"write_buf_high_watermark\":0},\
             \"durability\":{\"configured\":false,\"generation\":0,\
             \"snapshots_taken\":0,\"last_sessions\":0,\"last_bytes\":0,\
             \"restored_sessions\":0},\"kernel\":{"
        ));
        assert!(json.contains("\"sessions_evicted\":0"));
        assert!(json.contains("\"journal\":{\"records\":0,\"bytes\":0}"));
        // Exactly one shard object plus the totals object, each with a
        // top-level and a verify-block "requests" key.
        assert_eq!(json.matches("\"requests\":").count(), 4);
        // Per object: the verify counter block plus the verify latency
        // stage.
        assert_eq!(json.matches("\"verify\":").count(), 4);
        assert_eq!(json.matches("\"latency\":{\"queue_wait\":{").count(), 2);
    }

    /// Builds a fully hand-specified snapshot so the golden strings below
    /// are deterministic (live snapshots carry wall-clock rates).
    fn golden_snapshot() -> MetricsSnapshot {
        let mut total_buckets = [0u64; crate::telemetry::LATENCY_BUCKETS];
        total_buckets[9] = 1; // one 700 ns sample in [512, 1024)
        let total = LatencyStats {
            buckets: total_buckets,
            count: 1,
            sum_ns: 700,
        };
        let mut batch_hist = [0u64; BATCH_BUCKETS];
        batch_hist[1] = 2; // two passes in [2, 4) bursts
        let shard = ShardSnapshot {
            requests: 3,
            rejected: 1,
            bytes: 96,
            bursts: 6,
            transitions_saved: 12,
            queue_depth: 1,
            queue_depth_peak: 4,
            sessions: 2,
            sessions_evicted: 1,
            journal_records: 5,
            journal_bytes: 240,
            passes: 2,
            coalesced: 1,
            dispatches: 2,
            dispatch_chains: 7,
            full_dispatches: 1,
            batch_hist,
            verified: 1,
            verify_failures: 0,
            requests_per_s: 2.5,
            rejects_per_s: 0.5,
            latency: StageLatency {
                total,
                ..StageLatency::default()
            },
        };
        MetricsSnapshot {
            per_shard: vec![shard],
            plan_cache: PlanCacheStats {
                hits: 4,
                misses: 2,
                evictions: 1,
                entries: 1,
            },
            connections: ConnectionsSnapshot {
                active: 1,
                accepted: 3,
                closed: 2,
                dropped_slow: 1,
                read_buf_high_watermark: 4096,
                write_buf_high_watermark: 65536,
            },
            durability: SnapshotStatus {
                configured: true,
                generation: 3,
                snapshots_taken: 2,
                last_sessions: 2,
                last_bytes: 120,
                restored_sessions: 1,
            },
            kernel: "scalar",
            forced_scalar: false,
            cpu_features: "none",
        }
    }

    #[test]
    fn json_golden_string_pins_the_full_key_order() {
        let empty_stage = "{\"count\":0,\"mean_ns\":0,\"p50_ns\":0,\
                           \"p90_ns\":0,\"p99_ns\":0,\"p999_ns\":0}";
        let shard_json = format!(
            "{{\"requests\":3,\"rejected\":1,\"bytes\":96,\"bursts\":6,\
             \"transitions_saved\":12,\"queue_depth\":1,\
             \"queue_depth_peak\":4,\"sessions\":2,\
             \"sessions_evicted\":1,\
             \"journal\":{{\"records\":5,\"bytes\":240}},\
             \"rate\":{{\"requests_per_s\":2.5,\"rejects_per_s\":0.5,\
             \"window_s\":8}},\
             \"batch\":{{\"passes\":2,\"coalesced\":1,\"dispatches\":2,\
             \"lane_occupancy\":3.5,\"full_dispatch_fraction\":0.50,\
             \"size_p50\":3,\"size_p99\":4,\"bursts_per_request\":2.0}},\
             \"verify\":{{\"requests\":1,\"failures\":0}},\
             \"latency\":{{\"queue_wait\":{empty_stage},\
             \"encode\":{empty_stage},\"verify\":{empty_stage},\
             \"total\":{{\"count\":1,\"mean_ns\":700,\"p50_ns\":768,\
             \"p90_ns\":973,\"p99_ns\":1019,\"p999_ns\":1023}}}}}}"
        );
        // One shard, so the totals object equals the shard object.
        let expected = format!(
            "{{\"shards\":[{shard_json}],\"totals\":{shard_json},\
             \"plan_cache\":{{\"hits\":4,\"misses\":2,\"evictions\":1,\
             \"entries\":1}},\
             \"connections\":{{\"active\":1,\"accepted\":3,\"closed\":2,\
             \"dropped_slow\":1,\"read_buf_high_watermark\":4096,\
             \"write_buf_high_watermark\":65536}},\
             \"durability\":{{\"configured\":true,\"generation\":3,\
             \"snapshots_taken\":2,\"last_sessions\":2,\"last_bytes\":120,\
             \"restored_sessions\":1}},\
             \"kernel\":{{\"selected\":\"scalar\",\"forced_scalar\":false,\
             \"cpu_features\":\"none\"}}}}"
        );
        assert_eq!(golden_snapshot().to_json(), expected);
    }

    #[test]
    fn prometheus_exposition_reports_every_block() {
        let text = golden_snapshot().to_prometheus();
        assert!(text.contains("# TYPE dbi_requests_total counter\n"));
        assert!(text.contains("dbi_requests_total{shard=\"0\"} 3\n"));
        assert!(text.contains("dbi_rejected_total{shard=\"0\"} 1\n"));
        assert!(text.contains("# TYPE dbi_queue_depth_peak gauge\n"));
        assert!(text.contains("dbi_queue_depth_peak{shard=\"0\"} 4\n"));
        assert!(text.contains("dbi_requests_per_second{shard=\"0\"} 2.5\n"));
        assert!(text.contains("dbi_rejects_per_second{shard=\"0\"} 0.5\n"));
        assert!(text.contains("# TYPE dbi_stage_latency_nanoseconds summary\n"));
        assert!(text.contains(
            "dbi_stage_latency_nanoseconds{shard=\"0\",stage=\"total\",quantile=\"0.5\"} 768\n"
        ));
        assert!(text.contains(
            "dbi_stage_latency_nanoseconds{shard=\"0\",stage=\"total\",quantile=\"0.999\"} 1023\n"
        ));
        assert!(
            text.contains("dbi_stage_latency_nanoseconds_sum{shard=\"0\",stage=\"total\"} 700\n")
        );
        assert!(
            text.contains("dbi_stage_latency_nanoseconds_count{shard=\"0\",stage=\"total\"} 1\n")
        );
        assert!(text.contains(
            "dbi_stage_latency_nanoseconds{shard=\"0\",stage=\"queue_wait\",quantile=\"0.99\"} 0\n"
        ));
        assert!(text.contains("dbi_plan_cache_hits_total 4\n"));
        assert!(text.contains("dbi_plan_cache_entries 1\n"));
        assert!(text.contains("# TYPE dbi_connections_active gauge\n"));
        assert!(text.contains("dbi_connections_active 1\n"));
        assert!(text.contains("# TYPE dbi_connections_accepted_total counter\n"));
        assert!(text.contains("dbi_connections_accepted_total 3\n"));
        assert!(text.contains("dbi_connections_closed_total 2\n"));
        assert!(text.contains("dbi_connections_dropped_slow_total 1\n"));
        assert!(text.contains("dbi_connection_read_buf_high_watermark_bytes 4096\n"));
        assert!(text.contains("dbi_connection_write_buf_high_watermark_bytes 65536\n"));
        assert!(text.contains(
            "dbi_kernel_info{selected=\"scalar\",forced_scalar=\"false\",cpu_features=\"none\"} 1\n"
        ));
        assert!(text.contains("# TYPE dbi_batch_dispatches_total counter\n"));
        assert!(text.contains("dbi_batch_dispatches_total{shard=\"0\"} 2\n"));
        assert!(text.contains("dbi_batch_dispatch_chains_total{shard=\"0\"} 7\n"));
        assert!(text.contains("dbi_batch_full_dispatches_total{shard=\"0\"} 1\n"));
        assert!(text.contains("# TYPE dbi_batch_lane_occupancy gauge\n"));
        assert!(text.contains("dbi_batch_lane_occupancy{shard=\"0\"} 3.5\n"));
        assert!(text.contains("dbi_batch_full_dispatch_fraction{shard=\"0\"} 0.5\n"));
        assert!(text.contains("# TYPE dbi_sessions_evicted_total counter\n"));
        assert!(text.contains("dbi_sessions_evicted_total{shard=\"0\"} 1\n"));
        assert!(text.contains("dbi_journal_records_total{shard=\"0\"} 5\n"));
        assert!(text.contains("dbi_journal_bytes_total{shard=\"0\"} 240\n"));
        assert!(text.contains("# TYPE dbi_durability_configured gauge\n"));
        assert!(text.contains("dbi_durability_configured 1\n"));
        assert!(text.contains("dbi_durability_generation 3\n"));
        assert!(text.contains("# TYPE dbi_snapshots_taken_total counter\n"));
        assert!(text.contains("dbi_snapshots_taken_total 2\n"));
        assert!(text.contains("dbi_snapshot_last_sessions 2\n"));
        assert!(text.contains("dbi_snapshot_last_bytes 120\n"));
        assert!(text.contains("dbi_sessions_restored_total 1\n"));
        // Every series of a shard-labelled family appears once per shard.
        assert_eq!(text.matches("dbi_batch_passes_total{shard=").count(), 1);
    }

    #[test]
    fn merge_folds_snapshots_shard_by_shard() {
        let mut left = golden_snapshot();
        let mut right = golden_snapshot();
        // Give the right side a second shard so merge has to extend.
        right.per_shard.push(ShardSnapshot {
            requests: 7,
            queue_depth_peak: 9,
            ..ShardSnapshot::default()
        });

        left.merge(&right);
        assert_eq!(left.per_shard.len(), 2);
        assert_eq!(left.per_shard[0].requests, 6);
        assert_eq!(left.per_shard[0].bytes, 192);
        assert_eq!(left.per_shard[0].queue_depth_peak, 8);
        assert_eq!(left.per_shard[0].requests_per_s, 5.0);
        assert_eq!(left.per_shard[0].latency.total.count, 2);
        assert_eq!(left.per_shard[0].latency.total.sum_ns, 1400);
        assert_eq!(left.per_shard[1].requests, 7);
        assert_eq!(left.per_shard[1].queue_depth_peak, 9);
        assert_eq!(left.plan_cache.hits, 8);
        assert_eq!(left.plan_cache.entries, 2);
        // Connection counters sum; the buffer high-watermarks take the
        // maximum (both sides peaked at the same size here).
        assert_eq!(left.connections.active, 2);
        assert_eq!(left.connections.accepted, 6);
        assert_eq!(left.connections.closed, 4);
        assert_eq!(left.connections.dropped_slow, 2);
        assert_eq!(left.connections.read_buf_high_watermark, 4096);
        assert_eq!(left.connections.write_buf_high_watermark, 65536);
        // Per-shard durability counters fold like any other counter; the
        // engine-level durability block keeps the left side's values,
        // like the kernel block.
        assert_eq!(left.per_shard[0].sessions_evicted, 2);
        assert_eq!(left.per_shard[0].journal_records, 10);
        assert_eq!(left.per_shard[0].journal_bytes, 480);
        assert_eq!(left.durability.snapshots_taken, 2);
        // The kernel block keeps the left side's values.
        assert_eq!(left.kernel, "scalar");
        let totals = left.totals();
        assert_eq!(totals.requests, 13);
        assert_eq!(totals.latency.total.count, 2);
    }
}
