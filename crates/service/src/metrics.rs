//! Per-shard service metrics.
//!
//! Each shard owns one [`ShardMetrics`] of plain atomic counters — workers
//! and clients bump them lock-free and allocation-free on the hot path —
//! and [`MetricsRegistry::snapshot`] turns the whole registry into an
//! owned, serialisable [`MetricsSnapshot`]. The batched data plane adds a
//! `batch` block per shard: worker-pass count, coalesced-request count
//! and a power-of-two pass-size histogram from which the JSON reports the
//! p50/p99 pass size plus the mean bursts per request. The engine stamps the shared
//! plan-cache counters ([`dbi_core::PlanCacheStats`]: hits, misses,
//! evictions, resident plans) into the snapshot as well, and a `kernel`
//! block records which slab kernel tier the workers dispatch to
//! ([`dbi_core::simd::selected_kernel`]) together with the detected CPU
//! features — so a scraped metrics line names the hardware path behind
//! its throughput numbers. The snapshot's
//! [`to_json`](MetricsSnapshot::to_json) form is what the service answers
//! metrics requests with; it is handwritten JSON (no serialisation crate
//! exists offline) with a fixed key order, so it is easy to assert on in
//! tests and to scrape.

use dbi_core::PlanCacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two histogram buckets tracking worker-pass sizes:
/// bucket *i* counts passes of `[2^i, 2^(i+1))` bursts, the last bucket
/// absorbing everything beyond.
pub const BATCH_BUCKETS: usize = 17;

/// Lock-free counters of one shard. All increments use relaxed ordering:
/// the counters are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    requests: AtomicU64,
    rejected: AtomicU64,
    bytes: AtomicU64,
    bursts: AtomicU64,
    transitions_saved: AtomicU64,
    queue_depth: AtomicU64,
    sessions: AtomicU64,
    passes: AtomicU64,
    coalesced: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    verified: AtomicU64,
    verify_failures: AtomicU64,
}

/// The histogram bucket a pass of `bursts` bursts lands in.
fn batch_bucket(bursts: u64) -> usize {
    (bursts.max(1).ilog2() as usize).min(BATCH_BUCKETS - 1)
}

impl ShardMetrics {
    /// Records one successfully executed request.
    pub fn record_request(&self, payload_bytes: u64, bursts: u64, transitions_saved: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_bytes, Ordering::Relaxed);
        self.bursts.fetch_add(bursts, Ordering::Relaxed);
        self.transitions_saved
            .fetch_add(transitions_saved, Ordering::Relaxed);
    }

    /// Records one worker pass of `bursts` total bursts, `coalesced` of
    /// whose requests were drained from the queue behind the pass opener.
    pub fn record_pass(&self, bursts: u64, coalesced: u64) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(coalesced, Ordering::Relaxed);
        self.batch_hist[batch_bucket(bursts)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rejected request (validation failure or backpressure).
    pub fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one verify-mode round trip: the worker decoded its own
    /// output and compared it against the request. `ok` is `false` when
    /// the comparison found an encode/decode asymmetry (the request then
    /// fails with `VerifyMismatch`).
    pub fn record_verify(&self, ok: bool) {
        self.verified.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.verify_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a request entering the shard queue.
    pub fn enqueue(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request leaving the shard queue.
    pub fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a newly created encode session.
    pub fn session_created(&self) {
        self.sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the counters into an owned snapshot.
    #[must_use]
    pub fn snapshot(&self) -> ShardSnapshot {
        let mut batch_hist = [0u64; BATCH_BUCKETS];
        for (slot, counter) in batch_hist.iter_mut().zip(&self.batch_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ShardSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            bursts: self.bursts.load(Ordering::Relaxed),
            transitions_saved: self.transitions_saved.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            passes: self.passes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batch_hist,
            verified: self.verified.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one shard's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// Requests executed.
    pub requests: u64,
    /// Requests rejected (bad geometry/payload, backpressure, shutdown).
    pub rejected: u64,
    /// Payload bytes encoded.
    pub bytes: u64,
    /// Per-group bursts encoded.
    pub bursts: u64,
    /// Lane transitions avoided relative to sending the same stream raw.
    pub transitions_saved: u64,
    /// Requests currently sitting in the shard queue.
    pub queue_depth: u64,
    /// Encode sessions resident on the shard.
    pub sessions: u64,
    /// Worker passes executed (each pass serves one or more coalesced
    /// requests of one session).
    pub passes: u64,
    /// Requests that were coalesced into another request's pass instead
    /// of opening their own.
    pub coalesced: u64,
    /// Power-of-two histogram of pass sizes in bursts: bucket *i* counts
    /// passes of `[2^i, 2^(i+1))` bursts.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Verify-mode requests whose output was decoded and compared.
    pub verified: u64,
    /// Verify-mode requests whose round trip exposed an encode/decode
    /// asymmetry (answered with `VerifyMismatch`).
    pub verify_failures: u64,
}

impl ShardSnapshot {
    fn add(&mut self, other: &ShardSnapshot) {
        self.requests += other.requests;
        self.rejected += other.rejected;
        self.bytes += other.bytes;
        self.bursts += other.bursts;
        self.transitions_saved += other.transitions_saved;
        self.queue_depth += other.queue_depth;
        self.sessions += other.sessions;
        self.passes += other.passes;
        self.coalesced += other.coalesced;
        for (mine, theirs) in self.batch_hist.iter_mut().zip(&other.batch_hist) {
            *mine += theirs;
        }
        self.verified += other.verified;
        self.verify_failures += other.verify_failures;
    }

    /// The histogram percentile of the pass-size distribution, reported
    /// as the lower bound of the bucket the percentile falls in (0 when
    /// no pass has been recorded).
    #[must_use]
    pub fn batch_size_percentile(&self, percentile: f64) -> u64 {
        let total: u64 = self.batch_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (percentile * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.batch_hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << bucket;
            }
        }
        1u64 << (BATCH_BUCKETS - 1)
    }

    /// Mean bursts per executed request (0 when no request has run).
    #[must_use]
    pub fn bursts_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.bursts as f64 / self.requests as f64
        }
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        write!(
            out,
            "{{\"requests\":{},\"rejected\":{},\"bytes\":{},\"bursts\":{},\
             \"transitions_saved\":{},\"queue_depth\":{},\"sessions\":{},\
             \"batch\":{{\"passes\":{},\"coalesced\":{},\"size_p50\":{},\
             \"size_p99\":{},\"bursts_per_request\":{:.1}}},\
             \"verify\":{{\"requests\":{},\"failures\":{}}}}}",
            self.requests,
            self.rejected,
            self.bytes,
            self.bursts,
            self.transitions_saved,
            self.queue_depth,
            self.sessions,
            self.passes,
            self.coalesced,
            self.batch_size_percentile(0.50),
            self.batch_size_percentile(0.99),
            self.bursts_per_request(),
            self.verified,
            self.verify_failures,
        )
        .expect("writing to a String cannot fail");
    }
}

/// The counters of every shard of one engine.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<ShardMetrics>,
}

impl MetricsRegistry {
    /// Creates a registry with `shards` zeroed counter sets.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// The counters of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &ShardMetrics {
        &self.shards[shard]
    }

    /// Number of shards in the registry.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Copies every shard's counters into an owned snapshot. The
    /// plan-cache block starts zeroed; the engine overwrites it with the
    /// live [`PlanCacheStats`] when it snapshots.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            per_shard: self.shards.iter().map(ShardMetrics::snapshot).collect(),
            plan_cache: PlanCacheStats::default(),
            kernel: dbi_core::simd::selected_kernel().name(),
            forced_scalar: dbi_core::simd::forced_scalar(),
            cpu_features: dbi_core::simd::cpu_features(),
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// One snapshot per shard, in shard order.
    pub per_shard: Vec<ShardSnapshot>,
    /// Counters of the engine's shared plan cache.
    pub plan_cache: PlanCacheStats,
    /// The slab kernel tier every worker's batched path dispatches to
    /// ([`dbi_core::simd::selected_kernel`]) — `"scalar"` when pinned by
    /// `DBI_FORCE_SCALAR`.
    pub kernel: &'static str,
    /// Whether `DBI_FORCE_SCALAR` pinned dispatch to the scalar tier.
    pub forced_scalar: bool,
    /// The CPU features detected at startup, comma-joined.
    pub cpu_features: &'static str,
}

impl MetricsSnapshot {
    /// The counters summed across all shards.
    #[must_use]
    pub fn totals(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::default();
        for shard in &self.per_shard {
            total.add(shard);
        }
        total
    }

    /// Serialises the snapshot as a single-line JSON object:
    /// `{"shards":[{...},...],"totals":{...},"plan_cache":{...},"kernel":{...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(128 * (self.per_shard.len() + 2));
        out.push_str("{\"shards\":[");
        for (index, shard) in self.per_shard.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            shard.write_json(&mut out);
        }
        out.push_str("],\"totals\":");
        self.totals().write_json(&mut out);
        write!(
            out,
            ",\"plan_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{}}}",
            self.plan_cache.hits,
            self.plan_cache.misses,
            self.plan_cache.evictions,
            self.plan_cache.entries
        )
        .expect("writing to a String cannot fail");
        write!(
            out,
            ",\"kernel\":{{\"selected\":\"{}\",\"forced_scalar\":{},\"cpu_features\":\"{}\"}}",
            self.kernel, self.forced_scalar, self.cpu_features
        )
        .expect("writing to a String cannot fail");
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_total() {
        let registry = MetricsRegistry::new(2);
        registry.shard(0).record_request(32, 4, 10);
        registry.shard(0).record_request(32, 4, 6);
        registry.shard(1).record_reject();
        registry.shard(1).session_created();
        registry.shard(1).enqueue();

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.per_shard[0].requests, 2);
        assert_eq!(snapshot.per_shard[0].bytes, 64);
        assert_eq!(snapshot.per_shard[0].transitions_saved, 16);
        assert_eq!(snapshot.per_shard[1].rejected, 1);
        assert_eq!(snapshot.per_shard[1].queue_depth, 1);
        registry.shard(1).dequeue();
        assert_eq!(registry.snapshot().per_shard[1].queue_depth, 0);

        let totals = snapshot.totals();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.rejected, 1);
        assert_eq!(totals.sessions, 1);
    }

    #[test]
    fn batch_counters_histogram_and_percentiles() {
        let metrics = ShardMetrics::default();
        metrics.record_pass(0, 0); // all-error pass lands in bucket 0
        for _ in 0..98 {
            metrics.record_pass(64, 1); // bucket 6
        }
        metrics.record_pass(70_000, 3); // beyond the last bucket boundary
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.passes, 100);
        assert_eq!(snapshot.coalesced, 101);
        assert_eq!(snapshot.batch_hist[0], 1);
        assert_eq!(snapshot.batch_hist[6], 98);
        assert_eq!(snapshot.batch_hist[BATCH_BUCKETS - 1], 1);
        assert_eq!(snapshot.batch_size_percentile(0.50), 64);
        assert_eq!(snapshot.batch_size_percentile(0.99), 64);
        assert_eq!(
            snapshot.batch_size_percentile(1.0),
            1 << (BATCH_BUCKETS - 1)
        );
        assert_eq!(ShardSnapshot::default().batch_size_percentile(0.5), 0);
        assert_eq!(ShardSnapshot::default().bursts_per_request(), 0.0);

        // Totals fold the histograms elementwise.
        let registry = MetricsRegistry::new(2);
        registry.shard(0).record_pass(8, 0);
        registry.shard(1).record_pass(8, 2);
        let totals = registry.snapshot().totals();
        assert_eq!(totals.passes, 2);
        assert_eq!(totals.coalesced, 2);
        assert_eq!(totals.batch_hist[3], 2);
    }

    #[test]
    fn verify_counters_accumulate_and_serialise() {
        let registry = MetricsRegistry::new(2);
        registry.shard(0).record_verify(true);
        registry.shard(0).record_verify(true);
        registry.shard(1).record_verify(false);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.per_shard[0].verified, 2);
        assert_eq!(snapshot.per_shard[0].verify_failures, 0);
        assert_eq!(snapshot.per_shard[1].verified, 1);
        assert_eq!(snapshot.per_shard[1].verify_failures, 1);
        let totals = snapshot.totals();
        assert_eq!((totals.verified, totals.verify_failures), (3, 1));
        assert!(snapshot
            .to_json()
            .contains("\"verify\":{\"requests\":1,\"failures\":1}"));
    }

    #[test]
    fn json_snapshot_has_the_documented_shape() {
        let registry = MetricsRegistry::new(1);
        registry.shard(0).record_request(8, 1, 2);
        let mut snapshot = registry.snapshot();
        snapshot.plan_cache = PlanCacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            entries: 2,
        };
        let json = snapshot.to_json();
        assert!(json.starts_with("{\"shards\":[{"));
        assert!(json.contains("\"requests\":1"));
        assert!(json.contains("\"transitions_saved\":2"));
        assert!(json.contains("\"batch\":{\"passes\":0,\"coalesced\":0"));
        assert!(json.contains("\"bursts_per_request\":1.0"));
        assert!(json.contains("\"verify\":{\"requests\":0,\"failures\":0}"));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"totals\":{"));
        assert!(
            json.contains("\"plan_cache\":{\"hits\":5,\"misses\":2,\"evictions\":1,\"entries\":2}")
        );
        // Exactly one shard object plus the totals object, each with a
        // top-level and a verify-block "requests" key.
        assert_eq!(json.matches("\"requests\":").count(), 4);
        assert_eq!(json.matches("\"verify\":").count(), 2);
    }
}
