//! Sliding-window rate tracking.
//!
//! Lifetime counters answer "how much ever", never "how fast right now".
//! [`RateWindow`] closes that gap with a ring of per-second slots: each
//! slot holds `(epoch_second, count)`, recording bumps the slot keyed by
//! the current second (resetting it with a CAS when the second has moved
//! on), and the rate is the sum of the still-fresh slots divided by the
//! window length. Everything is relaxed atomics — lock-free and
//! allocation-free on the hot path, like every other telemetry primitive.
//!
//! The estimate deliberately trades a little precision for zero
//! coordination: a slot that loses the reset race double-counts at most
//! one increment, and a scrape mid-second sees a partially filled current
//! slot. Both are invisible at service request rates.

use dbi_core::clock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Seconds of history a [`RateWindow`] averages over.
pub const RATE_WINDOW_SECONDS: usize = 8;

/// One per-second slot: which epoch second it counts, and the count.
#[derive(Debug, Default)]
struct Slot {
    epoch_s: AtomicU64,
    count: AtomicU64,
}

/// A lock-free events-per-second estimator over the last
/// [`RATE_WINDOW_SECONDS`] seconds.
#[derive(Debug, Default)]
pub struct RateWindow {
    slots: [Slot; RATE_WINDOW_SECONDS],
}

impl RateWindow {
    /// Counts one event at the current monotonic second.
    #[inline]
    pub fn record(&self) {
        self.record_at(clock::now_seconds());
    }

    /// Counts one event at an explicit second (the testable core of
    /// [`RateWindow::record`]).
    pub fn record_at(&self, now_s: u64) {
        let slot = &self.slots[(now_s as usize) % RATE_WINDOW_SECONDS];
        let stamped = slot.epoch_s.load(Ordering::Relaxed);
        if stamped != now_s {
            // The slot still counts a lapsed second: claim it for the
            // current one. Exactly one racer wins the CAS and zeroes the
            // count; the losers just bump the fresh slot below.
            if slot
                .epoch_s
                .compare_exchange(stamped, now_s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.count.store(0, Ordering::Relaxed);
            }
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Events per second averaged over the window, reading only slots
    /// whose stamped second is still inside it.
    #[must_use]
    pub fn rate_per_second(&self) -> f64 {
        self.rate_at(clock::now_seconds())
    }

    /// The rate as seen at an explicit second (the testable core of
    /// [`RateWindow::rate_per_second`]).
    #[must_use]
    pub fn rate_at(&self, now_s: u64) -> f64 {
        let window = RATE_WINDOW_SECONDS as u64;
        let oldest = now_s.saturating_sub(window - 1);
        let mut total = 0u64;
        for slot in &self.slots {
            let stamped = slot.epoch_s.load(Ordering::Relaxed);
            if (oldest..=now_s).contains(&stamped) {
                total += slot.count.load(Ordering::Relaxed);
            }
        }
        total as f64 / window as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_averages_the_window() {
        let window = RateWindow::default();
        // 16 events per second for 4 seconds, starting at second 100.
        for second in 100..104 {
            for _ in 0..16 {
                window.record_at(second);
            }
        }
        let rate = window.rate_at(103);
        // 64 events over an 8-second window.
        assert!((rate - 8.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn stale_slots_age_out() {
        let window = RateWindow::default();
        for _ in 0..80 {
            window.record_at(200);
        }
        assert!(window.rate_at(200) > 0.0);
        // Nine seconds later the slot's second is outside the window.
        assert_eq!(window.rate_at(209), 0.0);
        // A new burst reclaims the slot (same index, new second).
        window.record_at(208); // 208 % 8 == 200 % 8
        let rate = window.rate_at(208);
        assert!((rate - 1.0 / 8.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn live_clock_path_works() {
        let window = RateWindow::default();
        for _ in 0..8 {
            window.record();
        }
        assert!(window.rate_per_second() >= 1.0);
    }
}
