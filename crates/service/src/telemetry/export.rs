//! Trace export: rendering captured [`TraceEvent`]s as
//! chrome://tracing-compatible JSON.
//!
//! The [Trace Event Format] is the JSON-array dialect both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: drop the output of [`chrome_trace_json`] into a `.json` file
//! and the captured ring renders as a timeline — one track per shard
//! (`pid`), one row per session (`tid`), one complete-span (`"ph":"X"`)
//! box per stage of every request, with the outcome, scheme tag and burst
//! count attached as arguments.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Timestamps: the format wants microseconds. Events carry nanoseconds
//! from the [`dbi_core::clock`] anchor, so `ts = enqueue_ns / 1000` with
//! fractional microseconds preserved — the viewer handles floats fine and
//! sub-microsecond encode stages would otherwise collapse to zero width.

use super::trace::TraceEvent;
use std::fmt::Write;

/// The stages of one request, in timeline order: name plus a closure
/// picking the stage's duration and its offset from enqueue.
fn stages(event: &TraceEvent) -> [(&'static str, u64, u64); 3] {
    // queue_wait starts at enqueue; encode follows it; verify follows
    // encode. (The service stamps stage *durations*; offsets re-derive
    // the timeline. Gaps — e.g. response signalling — show up as the
    // remainder of the total span.)
    let queue_end = u64::from(event.queue_wait_ns);
    let encode_end = queue_end + u64::from(event.encode_ns);
    [
        ("queue-wait", 0, u64::from(event.queue_wait_ns)),
        ("encode", queue_end, u64::from(event.encode_ns)),
        ("verify", encode_end, u64::from(event.verify_ns)),
    ]
}

fn push_span(
    out: &mut String,
    first: &mut bool,
    event: &TraceEvent,
    name: &str,
    start_ns: u64,
    duration_ns: u64,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"request_id\":{},\
         \"outcome\":\"{}\",\"scheme_tag\":{},\"bursts\":{}}}}}",
        event.shard,
        event.session_id,
        (event.enqueue_ns + start_ns) as f64 / 1_000.0,
        duration_ns as f64 / 1_000.0,
        event.request_id,
        event.outcome.name(),
        event.scheme_tag,
        event.bursts,
    )
    .expect("writing to a String cannot fail");
}

/// Renders captured events as a chrome://tracing JSON document (the
/// `{"traceEvents":[...]}` object form): per request, one span for the
/// total service time and one per non-empty stage. Shards map to `pid`
/// rows and sessions to `tid` rows, so the timeline groups the way the
/// engine actually parallelises.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 360);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for event in events {
        push_span(
            &mut out,
            &mut first,
            event,
            "request",
            0,
            u64::from(event.total_ns),
        );
        for (name, start_ns, duration_ns) in stages(event) {
            if duration_ns > 0 {
                push_span(&mut out, &mut first, event, name, start_ns, duration_ns);
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::super::trace::TraceOutcome;
    use super::*;

    #[test]
    fn spans_carry_the_stage_timeline() {
        let event = TraceEvent {
            request_id: 42,
            session_id: 9,
            enqueue_ns: 10_000,
            queue_wait_ns: 1_000,
            encode_ns: 2_000,
            verify_ns: 500,
            total_ns: 4_000,
            bursts: 32,
            scheme_tag: 6,
            outcome: TraceOutcome::Ok,
            shard: 1,
        };
        let json = chrome_trace_json(&[event]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // The total span opens at enqueue (10 µs) and runs 4 µs.
        assert!(json.contains(
            "\"name\":\"request\",\"ph\":\"X\",\"pid\":1,\"tid\":9,\"ts\":10.000,\"dur\":4.000"
        ));
        // Encode starts after the queue wait: 10 + 1 = 11 µs.
        assert!(json.contains(
            "\"name\":\"encode\",\"ph\":\"X\",\"pid\":1,\"tid\":9,\"ts\":11.000,\"dur\":2.000"
        ));
        // Verify follows encode: 13 µs, half a microsecond long.
        assert!(json.contains(
            "\"name\":\"verify\",\"ph\":\"X\",\"pid\":1,\"tid\":9,\"ts\":13.000,\"dur\":0.500"
        ));
        assert!(json.contains("\"outcome\":\"ok\""));
        assert!(json.contains("\"request_id\":42"));
    }

    #[test]
    fn empty_stages_and_empty_input_render_cleanly() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
        // A rejected request has no encode/verify stages: only the total
        // and the queue wait appear.
        let event = TraceEvent {
            request_id: 1,
            session_id: 2,
            enqueue_ns: 0,
            queue_wait_ns: 300,
            encode_ns: 0,
            verify_ns: 0,
            total_ns: 900,
            bursts: 0,
            scheme_tag: 0,
            outcome: TraceOutcome::Rejected,
            shard: 0,
        };
        let json = chrome_trace_json(&[event]);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"outcome\":\"rejected\""));
        assert!(!json.contains("\"name\":\"encode\""));
    }
}
