//! The always-on, lock-free per-shard trace ring.
//!
//! Every request a shard worker finishes — served, rejected, or failed
//! verification — leaves one compact [`TraceEvent`] in the shard's
//! [`TraceRing`]: a fixed-capacity ring of slots written allocation-free
//! on the hot path and drained on demand (the `TraceDump` admin frame).
//! When the ring wraps, the oldest events are overwritten; tracing is a
//! flight recorder, not a log.
//!
//! ## Concurrency
//!
//! Each ring has exactly **one producer** — the owning shard worker — so
//! writes need no CAS loops. Readers may race a wrapping writer, so every
//! slot is a tiny seqlock: a sequence word that goes *odd* while the six
//! data words are being stored and *even* (generation) when they are
//! stable. A reader retries a slot whose sequence is odd or changed
//! mid-read and otherwise gets a consistent event — all with plain
//! atomics, no `unsafe`, no locks. Client-side rejections (validation,
//! backpressure) never reach a worker and are therefore not traced; they
//! are visible in the metrics counters instead.

use crate::wire::WireError;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a traced request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceOutcome {
    /// Served successfully.
    Ok = 0,
    /// Rejected at the worker (session limit, mismatch, internal error).
    Rejected = 1,
    /// Executed, but the verify-mode round trip found an asymmetry.
    VerifyFailed = 2,
}

impl TraceOutcome {
    /// Decodes the wire byte; unknown values are a typed
    /// [`WireError::UnknownTraceOutcome`].
    pub fn from_wire(byte: u8) -> Result<Self, WireError> {
        match byte {
            0 => Ok(TraceOutcome::Ok),
            1 => Ok(TraceOutcome::Rejected),
            2 => Ok(TraceOutcome::VerifyFailed),
            other => Err(WireError::UnknownTraceOutcome(other)),
        }
    }

    /// The outcome's name, as used by the chrome-trace export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Rejected => "rejected",
            TraceOutcome::VerifyFailed => "verify-failed",
        }
    }
}

impl core::fmt::Display for TraceOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One traced request: identity, stage breakdown, and outcome. Packs into
/// six 64-bit words ([`TraceEvent::WIRE_BYTES`] on the wire), so a ring
/// slot is one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Engine-wide request id, stamped at submission in admission order.
    pub request_id: u64,
    /// The session the request executed against.
    pub session_id: u64,
    /// When the request entered the shard queue, in
    /// [`dbi_core::clock::now_nanos`] units.
    pub enqueue_ns: u64,
    /// Nanoseconds spent queued before a worker picked the request up.
    pub queue_wait_ns: u32,
    /// Nanoseconds spent in the encode kernel (0 for rejected requests).
    pub encode_ns: u32,
    /// Nanoseconds spent in the verify round trip (0 unless verify mode).
    pub verify_ns: u32,
    /// Total nanoseconds from enqueue to completion signal.
    pub total_ns: u32,
    /// Per-group bursts the request encoded (0 for rejected requests).
    pub bursts: u32,
    /// The wire tag of the scheme the request ran under.
    pub scheme_tag: u8,
    /// How the request ended.
    pub outcome: TraceOutcome,
    /// The shard that executed the request.
    pub shard: u16,
}

impl TraceEvent {
    /// Bytes of one event on the wire (six little-endian `u64` words).
    pub const WIRE_BYTES: usize = 48;

    /// Offset of the outcome byte inside the wire form — what
    /// `decode_frame` validates per record before handing out views.
    pub(crate) const OUTCOME_BYTE_AT: usize = 45;

    /// Packs the event into its six-word memory/wire representation.
    #[must_use]
    pub(crate) fn pack(&self) -> [u64; 6] {
        [
            self.request_id,
            self.session_id,
            self.enqueue_ns,
            u64::from(self.queue_wait_ns) | (u64::from(self.encode_ns) << 32),
            u64::from(self.verify_ns) | (u64::from(self.total_ns) << 32),
            u64::from(self.bursts)
                | (u64::from(self.scheme_tag) << 32)
                | ((self.outcome as u64) << 40)
                | (u64::from(self.shard) << 48),
        ]
    }

    /// Inverse of [`TraceEvent::pack`].
    pub(crate) fn unpack(words: [u64; 6]) -> Result<Self, WireError> {
        Ok(TraceEvent {
            request_id: words[0],
            session_id: words[1],
            enqueue_ns: words[2],
            queue_wait_ns: words[3] as u32,
            encode_ns: (words[3] >> 32) as u32,
            verify_ns: words[4] as u32,
            total_ns: (words[4] >> 32) as u32,
            bursts: words[5] as u32,
            scheme_tag: (words[5] >> 32) as u8,
            outcome: TraceOutcome::from_wire((words[5] >> 40) as u8)?,
            shard: (words[5] >> 48) as u16,
        })
    }

    /// The event in its 48-byte little-endian wire form.
    #[must_use]
    pub fn to_le_bytes(&self) -> [u8; Self::WIRE_BYTES] {
        let mut bytes = [0u8; Self::WIRE_BYTES];
        for (chunk, word) in bytes.chunks_exact_mut(8).zip(self.pack()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        bytes
    }

    /// Inverse of [`TraceEvent::to_le_bytes`].
    pub fn from_le_bytes(bytes: &[u8; Self::WIRE_BYTES]) -> Result<Self, WireError> {
        let mut words = [0u64; 6];
        for (word, chunk) in words.iter_mut().zip(bytes.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("exact chunks"));
        }
        Self::unpack(words)
    }
}

/// One ring slot: a seqlock sequence word plus the six packed event
/// words. Odd sequence = a write is in progress.
#[derive(Debug, Default)]
struct TraceSlot {
    seq: AtomicU64,
    words: [AtomicU64; 6],
}

/// A single-producer, multi-reader ring of the most recent [`TraceEvent`]s
/// of one shard.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<TraceSlot>,
    /// Events ever pushed; `head % capacity` is the next slot to write.
    head: AtomicU64,
}

impl TraceRing {
    /// Creates a ring holding the most recent `capacity` events
    /// (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| TraceSlot::default()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Events the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever pushed (not capped by capacity).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records one event. **Single producer**: only the owning shard
    /// worker may call this. Allocation-free.
    pub fn push(&self, event: &TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        // Seqlock write: go odd, store the words, go even. The release
        // fence orders the odd store before the data stores (a plain
        // release store would not constrain *later* stores), so a reader
        // that observes any new word is guaranteed to observe the bumped
        // sequence too; the final release store publishes the words to
        // any reader that sees the even sequence.
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        for (word_slot, word) in slot.words.iter().zip(event.pack()) {
            word_slot.store(word, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copies the most recent `max_events` events — oldest first — into
    /// `out` (cleared first). Non-destructive: the ring keeps recording.
    /// A slot being overwritten mid-read is retried a few times and
    /// skipped if the writer keeps lapping it; readers never block the
    /// producer.
    pub fn read_recent(&self, max_events: usize, out: &mut Vec<TraceEvent>) {
        out.clear();
        let head = self.head.load(Ordering::Acquire);
        let available = head.min(self.slots.len() as u64);
        let wanted = (max_events as u64).min(available);
        // Oldest requested event first.
        for index in (head - wanted)..head {
            let slot = &self.slots[(index % self.slots.len() as u64) as usize];
            for _attempt in 0..4 {
                let before = slot.seq.load(Ordering::Acquire);
                if before % 2 == 1 {
                    continue; // write in progress
                }
                let mut words = [0u64; 6];
                for (word, word_slot) in words.iter_mut().zip(&slot.words) {
                    *word = word_slot.load(Ordering::Relaxed);
                }
                // The acquire fence pairs with the writer's release fence:
                // if any word above came from a newer write, the reload
                // below is guaranteed to see that write's odd sequence.
                std::sync::atomic::fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != before {
                    continue; // overwritten mid-read
                }
                // A torn read is excluded by the sequence check; a bad
                // outcome byte therefore cannot occur, but stay typed
                // rather than panicking if it ever did.
                if let Ok(event) = TraceEvent::unpack(words) {
                    out.push(event);
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(request_id: u64) -> TraceEvent {
        TraceEvent {
            request_id,
            session_id: 7,
            enqueue_ns: 1_000 + request_id,
            queue_wait_ns: 10,
            encode_ns: 20,
            verify_ns: 5,
            total_ns: 40,
            bursts: 16,
            scheme_tag: 6,
            outcome: TraceOutcome::Ok,
            shard: 3,
        }
    }

    #[test]
    fn events_roundtrip_through_the_wire_form() {
        let original = TraceEvent {
            request_id: u64::MAX,
            session_id: 0xDEAD_BEEF,
            enqueue_ns: 123_456_789,
            queue_wait_ns: u32::MAX,
            encode_ns: 1,
            verify_ns: 2,
            total_ns: u32::MAX - 1,
            bursts: 999,
            scheme_tag: 255,
            outcome: TraceOutcome::VerifyFailed,
            shard: u16::MAX,
        };
        let bytes = original.to_le_bytes();
        assert_eq!(bytes.len(), TraceEvent::WIRE_BYTES);
        assert_eq!(TraceEvent::from_le_bytes(&bytes).unwrap(), original);
        // The outcome byte sits where the frame decoder validates it.
        assert_eq!(bytes[TraceEvent::OUTCOME_BYTE_AT], 2);

        let mut bad = bytes;
        bad[TraceEvent::OUTCOME_BYTE_AT] = 9;
        assert_eq!(
            TraceEvent::from_le_bytes(&bad),
            Err(WireError::UnknownTraceOutcome(9))
        );
    }

    #[test]
    fn outcomes_decode_and_name() {
        for (byte, outcome) in [
            (0, TraceOutcome::Ok),
            (1, TraceOutcome::Rejected),
            (2, TraceOutcome::VerifyFailed),
        ] {
            assert_eq!(TraceOutcome::from_wire(byte), Ok(outcome));
            assert!(!outcome.to_string().is_empty());
        }
        assert!(TraceOutcome::from_wire(3).is_err());
    }

    #[test]
    fn ring_keeps_the_most_recent_events_in_order() {
        let ring = TraceRing::new(4);
        let mut out = Vec::new();
        ring.read_recent(10, &mut out);
        assert!(out.is_empty());

        for id in 0..6 {
            ring.push(&event(id));
        }
        assert_eq!(ring.pushed(), 6);
        assert_eq!(ring.capacity(), 4);
        // Capacity 4: events 2..6 survive; ask for the last 3.
        ring.read_recent(3, &mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [3, 4, 5]);
        // Asking for more than capacity yields everything still held.
        ring.read_recent(100, &mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [2, 3, 4, 5]);
    }

    #[test]
    fn readers_survive_a_concurrent_writer() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(8));
        let writer_ring = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for id in 0..20_000u64 {
                writer_ring.push(&event(id));
            }
        });
        let mut out = Vec::new();
        for _ in 0..200 {
            ring.read_recent(8, &mut out);
            for e in &out {
                // Every surviving read is an untorn event: its fields
                // are internally consistent, never a mix of two events.
                assert_eq!(e.enqueue_ns, 1_000 + e.request_id);
            }
        }
        writer.join().unwrap();
        ring.read_recent(8, &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out.last().unwrap().request_id, 19_999);
    }
}
