//! Log-bucketed latency histograms.
//!
//! [`LatencyHistogram`] is the nanosecond sibling of the pass-size
//! histogram in [`crate::metrics`]: a fixed array of atomic buckets where
//! bucket *i* counts samples of `[2^i, 2^(i+1))` nanoseconds, the last
//! bucket absorbing everything beyond. Recording is one `ilog2`, one
//! relaxed `fetch_add` on the bucket, and two more on the sample count and
//! running sum — lock-free, allocation-free, and cheap enough for every
//! request on the hot path.
//!
//! Percentiles are estimated from a snapshot by walking the buckets and
//! **interpolating linearly within the winning bucket** (see
//! [`log2_percentile`]): a single 700 ns sample reports p50 ≈ 768 rather
//! than the bucket floor of 512. With 40 buckets the histogram resolves
//! 1 ns through ~18 minutes, far beyond any service timeout.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two nanosecond buckets: bucket *i* counts samples
/// of `[2^i, 2^(i+1))` ns; bucket 39 absorbs everything from ~9.2 minutes
/// up.
pub const LATENCY_BUCKETS: usize = 40;

/// The bucket a sample of `nanos` nanoseconds lands in.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    (nanos.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1)
}

/// Interpolated percentile over a power-of-two bucket histogram: bucket
/// *i* covers `[2^i, 2^(i+1))`. `percentile` is a fraction in `[0, 1]`.
///
/// The estimate walks to the bucket containing the percentile's rank and
/// interpolates linearly between the bucket's bounds by the rank's
/// position among the bucket's samples — so a single sample reports its
/// bucket midpoint at p50, not the bucket floor. The last bucket has no
/// upper bound and reports its floor. Returns 0 for an empty histogram.
#[must_use]
pub fn log2_percentile(buckets: &[u64], percentile: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (percentile.clamp(0.0, 1.0) * total as f64).max(f64::MIN_POSITIVE);
    let mut seen = 0u64;
    for (bucket, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let upto = seen + count;
        if (upto as f64) >= rank {
            let lower = (1u64 << bucket) as f64;
            if bucket == buckets.len() - 1 {
                // The overflow bucket is unbounded above; its floor is
                // the only honest answer.
                return lower as u64;
            }
            let fraction = ((rank - seen as f64) / count as f64).clamp(0.0, 1.0);
            let estimate = lower + fraction * lower; // upper bound = 2·lower
            return (estimate + 0.5) as u64;
        }
        seen = upto;
    }
    1u64 << (buckets.len() - 1)
}

/// A lock-free nanosecond histogram: [`LATENCY_BUCKETS`] power-of-two
/// buckets plus a sample count and running sum, all relaxed atomics.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    // Derived `Default` stops at 32-element arrays.
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample of `nanos` nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Reads the buckets into an owned snapshot.
    #[must_use]
    pub fn snapshot(&self) -> LatencyStats {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (slot, counter) in buckets.iter_mut().zip(&self.buckets) {
            *slot = counter.load(Ordering::Relaxed);
        }
        LatencyStats {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    /// Power-of-two nanosecond buckets: bucket *i* counts samples of
    /// `[2^i, 2^(i+1))` ns.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded samples, in nanoseconds.
    pub sum_ns: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            buckets: [0u64; LATENCY_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl LatencyStats {
    /// Folds another snapshot into this one, bucket by bucket.
    pub fn add(&mut self, other: &LatencyStats) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The interpolated percentile in nanoseconds (0 when empty); see
    /// [`log2_percentile`].
    #[must_use]
    pub fn percentile_ns(&self, percentile: f64) -> u64 {
        log2_percentile(&self.buckets, percentile)
    }

    /// Mean sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_power_of_two_buckets() {
        let hist = LatencyHistogram::default();
        hist.record(0); // clamps to bucket 0
        hist.record(1);
        hist.record(2);
        hist.record(3);
        hist.record(1024);
        hist.record(u64::MAX); // clamps to the overflow bucket
        let stats = hist.snapshot();
        assert_eq!(stats.buckets[0], 2);
        assert_eq!(stats.buckets[1], 2);
        assert_eq!(stats.buckets[10], 1);
        assert_eq!(stats.buckets[LATENCY_BUCKETS - 1], 1);
        assert_eq!(stats.count, 6);
        assert_eq!(stats.sum_ns, 1030u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn percentiles_interpolate_within_the_winning_bucket() {
        // One sample in bucket 9 ([512, 1024)): p50 sits halfway through
        // the bucket's single sample, i.e. at the midpoint 768.
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[9] = 1;
        assert_eq!(log2_percentile(&buckets, 0.50), 768);
        // p100 of the same sample reaches the bucket's upper bound.
        assert_eq!(log2_percentile(&buckets, 1.0), 1024);

        // Two buckets: 3 fast samples in [8,16), 1 slow in [1024,2048).
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[3] = 3;
        buckets[10] = 1;
        // p50 → rank 2 of 4 → 2/3 through the fast bucket: 8 + 8·(2/3).
        assert_eq!(log2_percentile(&buckets, 0.50), 13);
        // p99 → rank 3.96 → deep in the slow bucket.
        assert!(log2_percentile(&buckets, 0.99) >= 1024);
    }

    #[test]
    fn edge_percentiles_are_defined() {
        let empty = [0u64; LATENCY_BUCKETS];
        assert_eq!(log2_percentile(&empty, 0.5), 0);

        // p0 of any distribution is the floor of its lowest bucket.
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[4] = 10;
        assert_eq!(log2_percentile(&buckets, 0.0), 16);

        // The overflow bucket reports its floor — there is no upper
        // bound to interpolate toward.
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[LATENCY_BUCKETS - 1] = 5;
        assert_eq!(
            log2_percentile(&buckets, 0.999),
            1u64 << (LATENCY_BUCKETS - 1)
        );

        // Out-of-range percentiles clamp instead of panicking.
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[2] = 1;
        assert_eq!(log2_percentile(&buckets, -1.0), 4);
        assert_eq!(log2_percentile(&buckets, 2.0), 8);
    }

    #[test]
    fn stats_fold_and_summarise() {
        let a = LatencyHistogram::default();
        a.record(100);
        a.record(200);
        let b = LatencyHistogram::default();
        b.record(400);
        let mut total = a.snapshot();
        total.add(&b.snapshot());
        assert_eq!(total.count, 3);
        assert_eq!(total.sum_ns, 700);
        assert_eq!(total.mean_ns(), 233);
        assert_eq!(LatencyStats::default().mean_ns(), 0);
        assert_eq!(LatencyStats::default().percentile_ns(0.99), 0);
        assert!(total.percentile_ns(0.999) >= 256);
    }
}
