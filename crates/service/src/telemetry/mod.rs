//! The telemetry plane: where a request's time goes, not just how many
//! there were.
//!
//! The [`metrics`](crate::metrics) counters say *how much* the service has
//! done; this module says *where the time went* and *what just happened*,
//! with four cooperating pieces — every one of them lock-free or
//! preallocated on the hot path, timestamped by [`dbi_core::clock`]:
//!
//! | Piece | Question it answers | Surface |
//! |-------|---------------------|---------|
//! | [`LatencyHistogram`] | where does a request's time go? | p50/p90/p99/p999 per stage in the metrics snapshot (JSON + Prometheus) |
//! | [`RateWindow`] | how fast *right now*? | `rate` block of the metrics snapshot |
//! | [`TraceRing`] | what were the last N requests? | `TraceDump` wire frame, [`chrome_trace_json`] export |
//! | [`Slowlog`] | which recent requests were slow? | `SlowlogQuery` wire frame |
//!
//! Workers stamp four timestamps per request (enqueue, dequeue, encode
//! done, verify done) and from them record four stage histograms
//! (queue-wait, encode, verify, total), one [`TraceEvent`] in the shard's
//! ring, and — when the total crosses the configured threshold — one
//! slowlog entry. The cost is a handful of relaxed atomic adds and
//! `clock_gettime` calls per request; the counting-allocator test in
//! `tests/local_alloc.rs` pins the whole instrumented path at zero heap
//! allocations once warm, and the bench smoke job bounds the throughput
//! overhead.
//!
//! [`TelemetryRegistry`] owns the per-shard rings and slowlogs (the
//! histograms and rate windows live inside
//! [`ShardMetrics`](crate::metrics::ShardMetrics), next to the counters
//! they extend); the engine drains it on demand for the admin frames.

pub mod export;
pub mod histogram;
pub mod slowlog;
pub mod trace;
pub mod window;

pub use export::chrome_trace_json;
pub use histogram::{log2_percentile, LatencyHistogram, LatencyStats, LATENCY_BUCKETS};
pub use slowlog::Slowlog;
pub use trace::{TraceEvent, TraceOutcome, TraceRing};
pub use window::{RateWindow, RATE_WINDOW_SECONDS};

/// The per-shard trace rings and slowlogs of one engine. Histograms and
/// rate windows live in the metrics registry; this holds the event-shaped
/// telemetry.
#[derive(Debug)]
pub struct TelemetryRegistry {
    rings: Vec<TraceRing>,
    slowlogs: Vec<Slowlog>,
}

impl TelemetryRegistry {
    /// Creates rings of `trace_capacity` events and slowlogs of
    /// `slowlog_capacity` entries at `slowlog_threshold_ns`, one pair per
    /// shard.
    #[must_use]
    pub fn new(
        shards: usize,
        trace_capacity: usize,
        slowlog_capacity: usize,
        slowlog_threshold_ns: u64,
    ) -> Self {
        TelemetryRegistry {
            rings: (0..shards)
                .map(|_| TraceRing::new(trace_capacity))
                .collect(),
            slowlogs: (0..shards)
                .map(|_| Slowlog::new(slowlog_capacity, slowlog_threshold_ns))
                .collect(),
        }
    }

    /// The trace ring of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn ring(&self, shard: usize) -> &TraceRing {
        &self.rings[shard]
    }

    /// The slowlog of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn slowlog(&self, shard: usize) -> &Slowlog {
        &self.slowlogs[shard]
    }

    /// Records one finished request: pushes the event into the shard's
    /// ring and offers it to the shard's slowlog. Single producer per
    /// shard (the owning worker); allocation-free.
    pub fn record(&self, event: &TraceEvent) {
        let shard = usize::from(event.shard);
        self.rings[shard].push(event);
        self.slowlogs[shard].offer(event);
    }

    /// Drains up to `max_events` of the most recent events *per shard*
    /// into one engine-wide view, merged and sorted by enqueue timestamp
    /// (ties by request id, which is engine-global and monotone).
    #[must_use]
    pub fn trace_dump(&self, max_events: usize) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        for ring in &self.rings {
            ring.read_recent(max_events, &mut scratch);
            all.extend_from_slice(&scratch);
        }
        all.sort_by_key(|event| (event.enqueue_ns, event.request_id));
        all
    }

    /// The most recent `max_entries` slowlog captures across all shards,
    /// merged and sorted like [`TelemetryRegistry::trace_dump`], capped
    /// at `max_entries` total (keeping the newest).
    #[must_use]
    pub fn slowlog_dump(&self, max_entries: usize) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        let mut scratch = Vec::new();
        for slowlog in &self.slowlogs {
            slowlog.read_recent(max_entries, &mut scratch);
            all.extend_from_slice(&scratch);
        }
        all.sort_by_key(|event| (event.enqueue_ns, event.request_id));
        if all.len() > max_entries {
            all.drain(..all.len() - max_entries);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(shard: u16, request_id: u64, total_ns: u32) -> TraceEvent {
        TraceEvent {
            request_id,
            session_id: 5,
            enqueue_ns: request_id * 100,
            queue_wait_ns: 1,
            encode_ns: 2,
            verify_ns: 0,
            total_ns,
            bursts: 8,
            scheme_tag: 6,
            outcome: TraceOutcome::Ok,
            shard,
        }
    }

    #[test]
    fn dumps_merge_shards_in_timeline_order() {
        let registry = TelemetryRegistry::new(2, 8, 8, 50);
        // Interleave enqueue order across shards.
        registry.record(&event(0, 1, 10));
        registry.record(&event(1, 2, 100));
        registry.record(&event(0, 3, 10));
        registry.record(&event(1, 4, 100));

        let dump = registry.trace_dump(10);
        let ids: Vec<u64> = dump.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [1, 2, 3, 4]);

        // Only the slow ones (total ≥ 50) were captured.
        let slow = registry.slowlog_dump(10);
        let ids: Vec<u64> = slow.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [2, 4]);
        // The total cap keeps the newest entries.
        let slow = registry.slowlog_dump(1);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].request_id, 4);

        assert_eq!(registry.ring(0).pushed(), 2);
        assert_eq!(registry.slowlog(1).threshold_ns(), 50);
    }
}
