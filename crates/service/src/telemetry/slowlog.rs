//! The slowlog: full stage breakdowns of the slowest recent requests.
//!
//! The trace ring answers "what just happened"; the slowlog answers "what
//! was *slow* lately" — and survives much longer, because only requests
//! whose total service time meets the configured threshold enter it.
//! Entries are the same compact [`TraceEvent`]s the ring records, kept in
//! a bounded most-recent-N buffer behind a mutex. The lock is fine here:
//! the hot path only takes it for requests already slower than the
//! threshold (milliseconds against a ~20 ns lock), and the buffer is
//! preallocated so capture stays allocation-free.

use super::trace::TraceEvent;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded most-recent-N buffer of requests that exceeded the slowlog
/// threshold.
#[derive(Debug)]
pub struct Slowlog {
    entries: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    threshold_ns: u64,
}

impl Slowlog {
    /// Creates a slowlog keeping the most recent `capacity` requests
    /// (minimum 1) whose total service time is at least `threshold_ns`.
    #[must_use]
    pub fn new(capacity: usize, threshold_ns: u64) -> Self {
        let capacity = capacity.max(1);
        Slowlog {
            // One slot of headroom: push-then-pop at the boundary never
            // grows past the preallocated capacity.
            entries: Mutex::new(VecDeque::with_capacity(capacity + 1)),
            capacity,
            threshold_ns,
        }
    }

    /// The configured capture threshold in nanoseconds.
    #[must_use]
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Entries the slowlog can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers one finished request: captured only if its total service
    /// time meets the threshold, evicting the oldest entry when full.
    /// Allocation-free (the buffer is preallocated).
    pub fn offer(&self, event: &TraceEvent) {
        if u64::from(event.total_ns) < self.threshold_ns {
            return;
        }
        let mut entries = self.entries.lock().expect("slowlog mutex poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(*event);
    }

    /// Copies the most recent `max_entries` captured requests — oldest
    /// first — into `out` (cleared first). Non-destructive.
    pub fn read_recent(&self, max_entries: usize, out: &mut Vec<TraceEvent>) {
        out.clear();
        let entries = self.entries.lock().expect("slowlog mutex poisoned");
        let skip = entries.len().saturating_sub(max_entries);
        out.extend(entries.iter().skip(skip).copied());
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::TraceOutcome;
    use super::*;

    fn event(request_id: u64, total_ns: u32) -> TraceEvent {
        TraceEvent {
            request_id,
            session_id: 1,
            enqueue_ns: 0,
            queue_wait_ns: 1,
            encode_ns: 2,
            verify_ns: 0,
            total_ns,
            bursts: 4,
            scheme_tag: 0,
            outcome: TraceOutcome::Ok,
            shard: 0,
        }
    }

    #[test]
    fn only_requests_at_or_over_the_threshold_are_captured() {
        let log = Slowlog::new(8, 1_000);
        log.offer(&event(1, 999));
        log.offer(&event(2, 1_000));
        log.offer(&event(3, 5_000));
        let mut out = Vec::new();
        log.read_recent(10, &mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [2, 3]);
        assert_eq!(log.threshold_ns(), 1_000);
    }

    #[test]
    fn the_buffer_keeps_the_most_recent_entries() {
        let log = Slowlog::new(3, 0);
        for id in 0..10 {
            log.offer(&event(id, 100));
        }
        let mut out = Vec::new();
        log.read_recent(10, &mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [7, 8, 9]);
        // A bounded read returns the *newest* slice of what is held.
        log.read_recent(2, &mut out);
        let ids: Vec<u64> = out.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, [8, 9]);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn capture_does_not_reallocate_the_buffer() {
        let log = Slowlog::new(4, 0);
        let before = log.entries.lock().unwrap().capacity();
        for id in 0..100 {
            log.offer(&event(id, 1));
        }
        assert_eq!(log.entries.lock().unwrap().capacity(), before);
    }
}
